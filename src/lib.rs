//! # corba-ldft — CORBA-based runtime support for load distribution and fault tolerance
//!
//! A full Rust reproduction of Barth, Flender, Freisleben, Grauer & Thilo,
//! *"CORBA Based Runtime Support for Load Distribution and Fault
//! Tolerance"* (IPPS/SPDP Workshops 2000), including every substrate the
//! paper depends on. This crate re-exports the workspace members; see the
//! README for the architecture and `EXPERIMENTS.md` for the reproduced
//! figures and tables.
//!
//! * [`simnet`] — deterministic simulated network of workstations.
//! * [`cdr`] — CORBA Common Data Representation marshalling.
//! * [`orb`] — the mini-ORB (GIOP-lite, POA, DII, COMM_FAILURE semantics).
//! * [`idlc`] — the IDL compiler (stubs, skeletons, FT proxies).
//! * [`winner`] — the Winner resource management system.
//! * [`cosnaming`] — COS Naming with integrated load distribution.
//! * [`ftproxy`] — checkpointing proxies, factories, detector, migration.
//! * [`optim`] — Complex Box optimization and the manager/worker layer.
//! * [`corba_runtime`] — the assembled cluster and experiment scenarios.

pub use cdr;
pub use corba_runtime;
pub use cosnaming;
pub use ftproxy;
pub use idlc;
pub use optim;
pub use orb;
pub use simnet;
pub use winner;

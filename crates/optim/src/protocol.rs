//! Wire protocol between the optimization manager and its workers.
//!
//! Corresponding IDL (kept compilable with `idlc`; see the test):
//!
//! ```idl
//! module Optim {
//!   typedef sequence<double> DoubleSeq;
//!   struct SolveSpec {
//!     unsigned long problem_id;
//!     unsigned long dim;
//!     boolean has_left;   double left;
//!     boolean has_right;  double right;
//!     unsigned long long iters;
//!     unsigned long long seed;
//!     boolean reset;
//!   };
//!   struct SolveResult {
//!     double best_value;
//!     DoubleSeq best_point;
//!     unsigned long long iterations;
//!     unsigned long long evals;
//!   };
//!   typedef sequence<octet> OctetSeq;
//!   interface Worker {
//!     readonly attribute unsigned long solve_count;
//!     SolveResult solve(in SolveSpec spec);
//!     OctetSeq get_checkpoint();
//!     void restore_checkpoint(in OctetSeq state);
//!   };
//! };
//! ```

use cdr::cdr_struct;
use cosnaming::Name;

/// Repository id of the worker interface.
pub const WORKER_TYPE: &str = "IDL:Optim/Worker:1.0";

/// Service-type string factories use to instantiate workers.
pub const WORKER_SERVICE_TYPE: &str = "OptimWorker";

/// The group name workers register under.
pub fn worker_group() -> Name {
    Name::simple("Workers")
}

/// Operation names.
pub mod ops {
    /// `SolveResult solve(in SolveSpec spec)`.
    pub const SOLVE: &str = "solve";
    /// `OctetSeq get_checkpoint()` — the FT proxy's state fetch.
    pub const GET_CHECKPOINT: &str = "get_checkpoint";
    /// `void restore_checkpoint(in OctetSeq state)`.
    pub const RESTORE_CHECKPOINT: &str = "restore_checkpoint";
    /// `readonly attribute unsigned long solve_count`.
    pub const GET_SOLVE_COUNT: &str = "_get_solve_count";
}

cdr_struct!(
    /// One subproblem-solving assignment.
    SolveSpec {
        /// Block index (also the worker's state key for this subproblem).
        problem_id: u32,
        /// Block dimension.
        dim: u32,
        /// Fixed left coordination value, if any.
        left: Option<f64>,
        /// Fixed right coordination value, if any.
        right: Option<f64>,
        /// Complex Box iterations to run — the paper's stopping criterion
        /// and Table 1's sweep variable.
        iters: u64,
        /// Seed for a fresh population.
        seed: u64,
        /// Ignore any cached population and start fresh.
        reset: bool,
    }
);

cdr_struct!(
    /// A worker's answer.
    SolveResult {
        /// Best objective value found.
        best_value: f64,
        /// Best point found (block variables).
        best_point: Vec<f64>,
        /// Total iterations this worker has run on this subproblem.
        iterations: u64,
        /// Total objective evaluations on this subproblem.
        evals: u64,
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trip() {
        let s = SolveSpec {
            problem_id: 2,
            dim: 9,
            left: Some(0.5),
            right: None,
            iters: 10_000,
            seed: 7,
            reset: false,
        };
        let back: SolveSpec = cdr::from_bytes(&cdr::to_bytes(&s)).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn result_round_trip() {
        let r = SolveResult {
            best_value: 1.25,
            best_point: vec![0.1, 0.2],
            iterations: 100,
            evals: 140,
        };
        let back: SolveResult = cdr::from_bytes(&cdr::to_bytes(&r)).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn worker_idl_compiles_with_idlc() {
        let idl = r#"
            module Optim {
              typedef sequence<double> DoubleSeq;
              struct SolveSpec {
                unsigned long problem_id; unsigned long dim;
                boolean has_left; double left;
                boolean has_right; double right;
                unsigned long long iters; unsigned long long seed;
                boolean reset;
              };
              struct SolveResult {
                double best_value; DoubleSeq best_point;
                unsigned long long iterations; unsigned long long evals;
              };
              typedef sequence<octet> OctetSeq;
              interface Worker {
                readonly attribute unsigned long solve_count;
                SolveResult solve(in SolveSpec spec);
                OctetSeq get_checkpoint();
                void restore_checkpoint(in OctetSeq state);
              };
            };
        "#;
        let code = idlc::compile(idl, &idlc::GenOptions::default()).unwrap();
        assert!(code.contains("pub struct WorkerStub"));
        assert!(code.contains("pub struct WorkerFtProxy"));
    }
}

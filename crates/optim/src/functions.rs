//! Benchmark objective functions, headed by the "well known Rosenbrock
//! test function widely used for benchmarking optimization algorithms" the
//! paper's §4 evaluates on.

use crate::problem::{Bounds, Problem};

/// The n-dimensional Rosenbrock function
/// `f(x) = Σ_{i<n-1} 100 (x_{i+1} − x_i²)² + (1 − x_i)²`,
/// minimum 0 at `x = (1, …, 1)`.
#[derive(Clone, Debug)]
pub struct Rosenbrock {
    dim: usize,
    bounds: Bounds,
}

impl Rosenbrock {
    /// Standard search box `[-2.048, 2.048]^n`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "Rosenbrock needs at least 2 dimensions");
        Rosenbrock {
            dim,
            bounds: Bounds::uniform(dim, -2.048, 2.048),
        }
    }

    /// One chain term `100 (b − a²)² + (1 − a)²`.
    #[inline]
    pub fn term(a: f64, b: f64) -> f64 {
        let q = b - a * a;
        100.0 * q * q + (1.0 - a) * (1.0 - a)
    }
}

impl Problem for Rosenbrock {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bounds(&self) -> Bounds {
        self.bounds.clone()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        x.windows(2).map(|w| Rosenbrock::term(w[0], w[1])).sum()
    }
}

/// The sphere function `Σ x_i²` (sanity baseline).
#[derive(Clone, Debug)]
pub struct Sphere {
    dim: usize,
}

impl Sphere {
    /// `dim`-dimensional sphere on `[-5, 5]^n`.
    pub fn new(dim: usize) -> Self {
        Sphere { dim }
    }
}

impl Problem for Sphere {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bounds(&self) -> Bounds {
        Bounds::uniform(self.dim, -5.0, 5.0)
    }

    fn eval(&self, x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }
}

/// The Rastrigin function `10n + Σ (x_i² − 10 cos 2πx_i)` — highly
/// multimodal.
#[derive(Clone, Debug)]
pub struct Rastrigin {
    dim: usize,
}

impl Rastrigin {
    /// `dim`-dimensional Rastrigin on `[-5.12, 5.12]^n`.
    pub fn new(dim: usize) -> Self {
        Rastrigin { dim }
    }
}

impl Problem for Rastrigin {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bounds(&self) -> Bounds {
        Bounds::uniform(self.dim, -5.12, 5.12)
    }

    fn eval(&self, x: &[f64]) -> f64 {
        10.0 * self.dim as f64
            + x.iter()
                .map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
                .sum::<f64>()
    }
}

/// The Griewank function — many regularly-spaced local minima.
#[derive(Clone, Debug)]
pub struct Griewank {
    dim: usize,
}

impl Griewank {
    /// `dim`-dimensional Griewank on `[-600, 600]^n`.
    pub fn new(dim: usize) -> Self {
        Griewank { dim }
    }
}

impl Problem for Griewank {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bounds(&self) -> Bounds {
        Bounds::uniform(self.dim, -600.0, 600.0)
    }

    fn eval(&self, x: &[f64]) -> f64 {
        let sum: f64 = x.iter().map(|v| v * v).sum::<f64>() / 4000.0;
        let prod: f64 = x
            .iter()
            .enumerate()
            .map(|(i, v)| (v / ((i + 1) as f64).sqrt()).cos())
            .product();
        1.0 + sum - prod
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosenbrock_minimum_is_zero_at_ones() {
        let f = Rosenbrock::new(10);
        assert_eq!(f.eval(&[1.0; 10]), 0.0);
        assert!(f.eval(&[0.0; 10]) > 0.0);
    }

    #[test]
    fn rosenbrock_matches_term_sum() {
        let f = Rosenbrock::new(3);
        let x = [0.5, -0.25, 1.5];
        let expected = Rosenbrock::term(0.5, -0.25) + Rosenbrock::term(-0.25, 1.5);
        assert!((f.eval(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn sphere_minimum_at_origin() {
        let f = Sphere::new(4);
        assert_eq!(f.eval(&[0.0; 4]), 0.0);
        assert_eq!(f.eval(&[1.0, 0.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn rastrigin_minimum_at_origin() {
        let f = Rastrigin::new(3);
        assert!(f.eval(&[0.0; 3]).abs() < 1e-9);
        assert!(f.eval(&[1.0, 1.0, 1.0]) > 0.0);
    }

    #[test]
    fn griewank_minimum_at_origin() {
        let f = Griewank::new(3);
        assert!(f.eval(&[0.0; 3]).abs() < 1e-12);
        assert!(f.eval(&[10.0, -10.0, 10.0]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_rosenbrock_rejected() {
        let _ = Rosenbrock::new(1);
    }
}

//! The optimization **worker** servant: a stateful CORBA service running
//! the sequential Complex Box algorithm on assigned subproblems.
//!
//! State (the per-subproblem populations) persists across `solve` calls —
//! the manager's successive calls warm-start from the previous population
//! — which is exactly why the paper needs checkpointing proxies: losing a
//! worker loses accumulated optimization progress unless its state was
//! saved. The servant therefore implements the checkpoint convention
//! (`get_checkpoint` / `restore_checkpoint`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use cosnaming::NamingClient;
use orb::{reply, CallCtx, Exception, Orb, Poa, Servant, SystemException};
use simnet::{Ctx, HostId, SimResult};

use crate::complex_box::{ComplexBox, ComplexBoxConfig, ComplexState};
use crate::decompose::SubRosenbrock;
use crate::protocol::{ops, worker_group, SolveResult, SolveSpec, WORKER_TYPE};

/// CPU cost model of a worker (translates algorithm work into simulated
/// time; the algorithm itself runs for real).
#[derive(Clone, Copy, Debug)]
pub struct WorkerCosts {
    /// CPU work units per Complex Box iteration per problem dimension.
    /// Default calibrated so a 14-dim subproblem runs ≈10 ms of CPU per
    /// 1000 iterations — the right order for a late-90s workstation
    /// evaluating an O(dim) objective a couple of times per iteration.
    pub per_iter_per_dim: f64,
}

impl Default for WorkerCosts {
    fn default() -> Self {
        WorkerCosts {
            per_iter_per_dim: 7.0e-7,
        }
    }
}

/// The worker servant.
pub struct WorkerServant {
    costs: WorkerCosts,
    /// Cached optimizer state per subproblem id.
    state: BTreeMap<u32, ComplexState>,
    solve_count: u32,
}

impl WorkerServant {
    /// A fresh worker.
    pub fn new(costs: WorkerCosts) -> Self {
        WorkerServant {
            costs,
            state: BTreeMap::new(),
            solve_count: 0,
        }
    }

    fn solve(
        &mut self,
        call: &mut CallCtx<'_>,
        spec: &SolveSpec,
    ) -> Result<SolveResult, Exception> {
        if spec.dim == 0 {
            return Err(SystemException::new(
                orb::SysKind::BadParam,
                orb::Completion::No,
                "zero-dimensional subproblem",
            )
            .into());
        }
        let problem = SubRosenbrock::new(spec.dim as usize, spec.left, spec.right);
        let cfg = ComplexBoxConfig {
            seed: spec.seed ^ u64::from(spec.problem_id).wrapping_mul(0x9E37_79B9),
            ..ComplexBoxConfig::default()
        };
        // Model the CPU cost of the whole solve (iterations × dimension).
        let work = spec.iters as f64 * spec.dim as f64 * self.costs.per_iter_per_dim;
        call.ctx
            .compute(work)
            .map_err(|_| SystemException::comm_failure("killed mid-solve"))?;

        let cached = (!spec.reset)
            .then(|| self.state.get(&spec.problem_id))
            .flatten()
            .filter(|s| s.points.len() % spec.dim as usize == 0 && !s.points.is_empty());
        let mut opt = match cached {
            Some(s) => {
                // Warm start: keep the population, re-evaluate under the
                // new coordination values.
                let points: Vec<Vec<f64>> = s
                    .points
                    .chunks(spec.dim as usize)
                    .map(|c| c.to_vec())
                    .collect();
                ComplexBox::from_points(&problem, cfg, points, s.iterations, s.evals)
            }
            None => ComplexBox::new(&problem, cfg),
        };
        let best_value = opt.run(spec.iters);
        let (best_point, _) = opt.best();
        let result = SolveResult {
            best_value,
            best_point: best_point.to_vec(),
            iterations: opt.iterations(),
            evals: opt.evals(),
        };
        self.state.insert(spec.problem_id, opt.state());
        self.solve_count += 1;
        Ok(result)
    }

    /// Serialize the full worker state (checkpoint payload).
    fn checkpoint(&self) -> Vec<u8> {
        // BTreeMap iteration is already key-ordered, so the payload bytes
        // are deterministic without an explicit sort.
        let entries: Vec<(u32, ComplexState)> =
            self.state.iter().map(|(k, v)| (*k, v.clone())).collect();
        cdr::to_bytes(&(self.solve_count, entries))
    }

    /// Replace the whole worker state from a checkpoint. Note: if several
    /// logical services were recovered into one physical instance, the last
    /// restore wins; a clobbered subproblem merely loses its warm-start
    /// population (correctness is unaffected — the next `solve` starts
    /// fresh).
    fn restore(&mut self, bytes: &[u8]) -> Result<(), Exception> {
        let (solve_count, entries): (u32, Vec<(u32, ComplexState)>) =
            cdr::from_bytes(bytes).map_err(SystemException::marshal)?;
        self.solve_count = solve_count;
        self.state = entries.into_iter().collect();
        Ok(())
    }
}

impl Servant for WorkerServant {
    fn dispatch(
        &mut self,
        call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, Exception> {
        match op {
            ops::SOLVE => {
                let (spec,): (SolveSpec,) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let r = self.solve(call, &spec)?;
                reply(&r)
            }
            ops::GET_CHECKPOINT => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                reply(&self.checkpoint())
            }
            ops::RESTORE_CHECKPOINT => {
                let (state,): (Vec<u8>,) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.restore(&state)?;
                reply(&())
            }
            ops::GET_SOLVE_COUNT => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                reply(&self.solve_count)
            }
            other => Err(SystemException::bad_operation(other).into()),
        }
    }
}

/// Typed client stub for a worker (what `idlc` generates).
#[derive(Clone, Debug)]
pub struct WorkerStub {
    /// The worker reference.
    pub obj: orb::ObjectRef,
}

impl WorkerStub {
    /// Wrap a reference.
    pub fn new(obj: orb::ObjectRef) -> Self {
        WorkerStub { obj }
    }

    /// `SolveResult solve(in SolveSpec spec)`.
    pub fn solve(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        spec: &SolveSpec,
    ) -> SimResult<Result<SolveResult, Exception>> {
        self.obj.call(orb, ctx, ops::SOLVE, &(spec,))
    }

    /// `unsigned long solve_count()`.
    pub fn solve_count(&self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Result<u32, Exception>> {
        self.obj.call(orb, ctx, ops::GET_SOLVE_COUNT, &())
    }
}

/// A factory builder that can instantiate workers (register under the
/// service type [`WORKER_SERVICE_TYPE`](crate::protocol::WORKER_SERVICE_TYPE)).
pub fn worker_builder(costs: WorkerCosts) -> ftproxy::ServantBuilder {
    Box::new(move |_call, ty| {
        (ty == crate::protocol::WORKER_SERVICE_TYPE).then(|| {
            (
                Rc::new(RefCell::new(WorkerServant::new(costs))) as Rc<RefCell<dyn Servant>>,
                WORKER_TYPE.to_string(),
            )
        })
    })
}

/// The body of a standalone worker server process: activate one worker,
/// register it in the `Workers` group, serve forever.
pub fn run_worker_server(ctx: &mut Ctx, naming_host: HostId, costs: WorkerCosts) -> SimResult<()> {
    run_worker_server_obs(ctx, naming_host, costs, None)
}

/// [`run_worker_server`] with an observability sink attached: serve spans
/// are recorded into `obs` when present.
pub fn run_worker_server_obs(
    ctx: &mut Ctx,
    naming_host: HostId,
    costs: WorkerCosts,
    obs: Option<obs::Obs>,
) -> SimResult<()> {
    let mut orb = Orb::init(ctx);
    if let Some(sink) = obs {
        orb.set_obs(obs::ProcessObs::new(sink, ctx));
    }
    orb.listen(ctx)?;
    let poa = Poa::new();
    let servant = Rc::new(RefCell::new(WorkerServant::new(costs)));
    let key = poa.activate(WORKER_TYPE, servant);
    let ior = orb.ior(WORKER_TYPE, key);
    let ns = NamingClient::root(naming_host);
    // Bounded boot registration; see `NamingClient::bind_group_member_retry`.
    if ns
        .bind_group_member_retry(&mut orb, ctx, &worker_group(), &ior)?
        .is_err()
    {
        // Registration budget exhausted: an unregistered worker never
        // receives work — die instead of spinning.
        return Err(simnet::Killed);
    }
    orb.serve_forever(ctx, &poa)
}

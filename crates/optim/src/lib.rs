//! # optim — parallel nonlinear optimization on the CORBA runtime
//!
//! The paper's application layer (§4): minimization of the decomposed
//! Rosenbrock function with "multiple instances of a sequential
//! implementation of the Complex Box algorithm" coordinated by a manager.
//!
//! * [`ComplexBox`] — the sequential Complex method (Box 1965), with a
//!   checkpointable [`ComplexState`] and an ask/tell variant
//!   ([`AskTellComplex`]) for remote objective evaluations.
//! * [`Rosenbrock`] and friends — the benchmark functions.
//! * [`DecomposedRosenbrock`] — the manager/worker split: `W` blocks plus
//!   `W−1` coordination variables (30 → 10/9/9 + 2, exactly the paper).
//! * [`WorkerServant`] / [`run_worker_server`] — the stateful CORBA worker
//!   with the `get_checkpoint`/`restore_checkpoint` convention the FT
//!   proxies rely on.
//! * [`run_manager`] — the distributed manager: resolves workers through
//!   the (load-distributing) naming service, fans out parallel DII
//!   `solve` calls, optionally through fault-tolerant proxies.

pub mod complex_box;
pub mod decompose;
pub mod functions;
pub mod manager;
pub mod problem;
pub mod protocol;
pub mod worker;

pub use complex_box::{AskTellComplex, ComplexBox, ComplexBoxConfig, ComplexState};
pub use decompose::{DecomposedRosenbrock, Partition, SubRosenbrock};
pub use functions::{Griewank, Rastrigin, Rosenbrock, Sphere};
pub use manager::{run_manager, FtSettings, ManagerConfig, RunReport};
pub use problem::{Bounds, Problem};
pub use protocol::{ops, worker_group, SolveResult, SolveSpec, WORKER_SERVICE_TYPE, WORKER_TYPE};
pub use worker::{
    run_worker_server, run_worker_server_obs, worker_builder, WorkerCosts, WorkerServant,
    WorkerStub,
};

#[cfg(test)]
mod optim_tests;

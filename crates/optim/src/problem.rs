//! Optimization problem abstractions.

/// Box constraints: per-dimension lower and upper bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct Bounds {
    /// Lower bounds.
    pub lower: Vec<f64>,
    /// Upper bounds.
    pub upper: Vec<f64>,
}

impl Bounds {
    /// Uniform bounds `[lo, hi]^dim`.
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "lower bound must be below upper bound");
        Bounds {
            lower: vec![lo; dim],
            upper: vec![hi; dim],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Clip a point into the box (the Complex method's constraint
    /// handling).
    pub fn clip(&self, x: &mut [f64]) {
        for (i, v) in x.iter_mut().enumerate() {
            *v = v.clamp(self.lower[i], self.upper[i]);
        }
    }

    /// Whether a point lies inside the box.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.iter()
            .enumerate()
            .all(|(i, &v)| v >= self.lower[i] && v <= self.upper[i])
    }
}

/// A bound-constrained minimization problem.
pub trait Problem {
    /// Dimension of the search space.
    fn dim(&self) -> usize;
    /// The box constraints.
    fn bounds(&self) -> Bounds;
    /// Objective value at `x` (lower is better).
    fn eval(&self, x: &[f64]) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bounds() {
        let b = Bounds::uniform(3, -2.0, 2.0);
        assert_eq!(b.dim(), 3);
        assert!(b.contains(&[0.0, 1.0, -1.0]));
        assert!(!b.contains(&[0.0, 3.0, 0.0]));
    }

    #[test]
    fn clip_projects_into_box() {
        let b = Bounds::uniform(2, -1.0, 1.0);
        let mut x = [5.0, -3.0];
        b.clip(&mut x);
        assert_eq!(x, [1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn degenerate_bounds_rejected() {
        let _ = Bounds::uniform(2, 1.0, 1.0);
    }
}

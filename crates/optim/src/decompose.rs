//! The decomposed formulation of the Rosenbrock function (§4): "several
//! (sub-)problems with a smaller dimension than the original n-dimensional
//! problem are solved by workers, and the subproblems are then combined
//! for the solution of the original problem in a manager."
//!
//! The variable chain is split into `W` blocks separated by `W−1`
//! **coordination variables** owned by the manager. For the paper's 30-dim
//! case with 3 workers this yields sub-dimensions 10, 9 and 9 plus a
//! 2-dimensional manager problem — exactly the paper's configuration. Each
//! Rosenbrock chain term is assigned to exactly one block (terms touching
//! a coordination variable go to the adjacent block, with the coordination
//! value passed as a fixed parameter), so the sum of block objectives at
//! the block optima equals the original objective at the combined point.

use crate::functions::Rosenbrock;
use crate::problem::{Bounds, Problem};

/// How an `n`-dimensional chain splits into worker blocks and manager
/// variables.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// Total dimension.
    pub n: usize,
    /// Block index ranges (disjoint, in order).
    pub blocks: Vec<std::ops::Range<usize>>,
    /// Indices of the coordination variables (between the blocks).
    pub coordinators: Vec<usize>,
}

impl Partition {
    /// Split `n` variables into `workers` blocks with `workers − 1`
    /// coordination variables between them, blocks as even as possible
    /// with earlier blocks one larger — reproducing the paper's
    /// `30 = 10 + 1 + 9 + 1 + 9` split for 3 workers.
    pub fn even(n: usize, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let coord = workers - 1;
        assert!(
            n >= workers * 2 + coord,
            "dimension {n} too small for {workers} workers"
        );
        let var_total = n - coord;
        let base = var_total / workers;
        let extra = var_total % workers;
        let mut blocks = Vec::with_capacity(workers);
        let mut coordinators = Vec::with_capacity(coord);
        let mut at = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            blocks.push(at..at + len);
            at += len;
            if w + 1 < workers {
                coordinators.push(at);
                at += 1;
            }
        }
        debug_assert_eq!(at, n);
        Partition {
            n,
            blocks,
            coordinators,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.blocks.len()
    }

    /// Dimension of the manager problem.
    pub fn manager_dim(&self) -> usize {
        self.coordinators.len()
    }

    /// Sub-dimensions, e.g. `[10, 9, 9]` for `even(30, 3)`.
    pub fn sub_dims(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.len()).collect()
    }
}

/// One worker's subproblem: minimize the block's share of the Rosenbrock
/// chain with the adjacent coordination values fixed.
///
/// Term assignment for block `[s, e)`:
/// * interior terms `i ∈ [s, e−1)` (couple `x_i`, `x_{i+1}`),
/// * the left coordination terms, if a coordinator `c = s−1` exists:
///   term `c` (couples `x_c`, `x_s`) — and term `c−1` belongs to the
///   *previous* block,
/// * the right coordination term `e−1 → e` if `x_e` is a coordinator
///   (couples the block's last variable to the fixed right value).
#[derive(Clone, Debug, PartialEq)]
pub struct SubRosenbrock {
    /// Block dimension.
    pub dim: usize,
    /// Fixed left coordination value (`x_{s−1}`), if the block has one.
    pub left: Option<f64>,
    /// Fixed right coordination value (`x_e`), if the block has one.
    pub right: Option<f64>,
    bounds: Bounds,
}

impl SubRosenbrock {
    /// A block subproblem on the standard Rosenbrock box.
    pub fn new(dim: usize, left: Option<f64>, right: Option<f64>) -> Self {
        assert!(dim >= 1);
        SubRosenbrock {
            dim,
            left,
            right,
            bounds: Bounds::uniform(dim, -2.048, 2.048),
        }
    }
}

impl Problem for SubRosenbrock {
    fn dim(&self) -> usize {
        self.dim
    }

    fn bounds(&self) -> Bounds {
        self.bounds.clone()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        let mut sum = 0.0;
        if let Some(l) = self.left {
            sum += Rosenbrock::term(l, x[0]);
        }
        sum += x
            .windows(2)
            .map(|w| Rosenbrock::term(w[0], w[1]))
            .sum::<f64>();
        if let Some(r) = self.right {
            sum += Rosenbrock::term(x[self.dim - 1], r);
        }
        sum
    }
}

/// The manager-side view: given coordination values, build each worker's
/// subproblem, and recombine results.
#[derive(Clone, Debug)]
pub struct DecomposedRosenbrock {
    /// The partition in use.
    pub partition: Partition,
}

impl DecomposedRosenbrock {
    /// Decompose `n` variables across `workers` blocks.
    pub fn new(n: usize, workers: usize) -> Self {
        DecomposedRosenbrock {
            partition: Partition::even(n, workers),
        }
    }

    /// Bounds of the manager problem (the coordination variables).
    pub fn manager_bounds(&self) -> Bounds {
        Bounds::uniform(self.partition.manager_dim(), -2.048, 2.048)
    }

    /// The subproblem of worker `w` under coordination values `coords`.
    pub fn subproblem(&self, w: usize, coords: &[f64]) -> SubRosenbrock {
        assert_eq!(coords.len(), self.partition.manager_dim());
        let left = (w > 0).then(|| coords[w - 1]);
        let right = (w < self.partition.workers() - 1).then(|| coords[w]);
        SubRosenbrock::new(self.partition.blocks[w].len(), left, right)
    }

    /// Assemble a full `n`-dimensional point from block solutions and
    /// coordination values.
    pub fn assemble(&self, coords: &[f64], block_points: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(block_points.len(), self.partition.workers());
        let mut x = vec![0.0; self.partition.n];
        for (w, range) in self.partition.blocks.iter().enumerate() {
            x[range.clone()].copy_from_slice(&block_points[w]);
        }
        for (c, &idx) in self.partition.coordinators.iter().enumerate() {
            x[idx] = coords[c];
        }
        x
    }

    /// The combined objective: the sum of block objectives equals the full
    /// Rosenbrock value of the assembled point (validated in tests).
    pub fn combine(&self, block_values: &[f64]) -> f64 {
        block_values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_30_dim_partition() {
        let p = Partition::even(30, 3);
        assert_eq!(p.sub_dims(), vec![10, 9, 9]);
        assert_eq!(p.manager_dim(), 2);
        assert_eq!(p.coordinators, vec![10, 20]);
    }

    #[test]
    fn paper_100_dim_partition() {
        let p = Partition::even(100, 7);
        assert_eq!(p.manager_dim(), 6);
        assert_eq!(p.sub_dims().iter().sum::<usize>(), 94);
        // Blocks are balanced within one variable.
        let dims = p.sub_dims();
        let min = dims.iter().min().unwrap();
        let max = dims.iter().max().unwrap();
        assert!(max - min <= 1, "{dims:?}");
    }

    #[test]
    fn single_worker_degenerates_to_full_problem() {
        let p = Partition::even(12, 1);
        assert_eq!(p.sub_dims(), vec![12]);
        assert_eq!(p.manager_dim(), 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn overdecomposition_rejected() {
        let _ = Partition::even(5, 3);
    }

    /// The load-bearing identity: block objectives sum to the original
    /// Rosenbrock objective of the assembled point, for any point.
    #[test]
    fn decomposition_preserves_objective() {
        use crate::functions::Rosenbrock;
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for &(n, w) in &[(30usize, 3usize), (100, 7), (12, 2), (9, 1)] {
            let d = DecomposedRosenbrock::new(n, w);
            let full = Rosenbrock::new(n);
            for _ in 0..10 {
                let x: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..2.0)).collect();
                let coords: Vec<f64> = d.partition.coordinators.iter().map(|&i| x[i]).collect();
                let blocks: Vec<Vec<f64>> = d
                    .partition
                    .blocks
                    .iter()
                    .map(|r| x[r.clone()].to_vec())
                    .collect();
                let parts: Vec<f64> = (0..w)
                    .map(|wi| d.subproblem(wi, &coords).eval(&blocks[wi]))
                    .collect();
                let combined = d.combine(&parts);
                let assembled = d.assemble(&coords, &blocks);
                assert_eq!(assembled, x);
                let direct = full.eval(&x);
                assert!(
                    (combined - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                    "n={n} w={w}: {combined} vs {direct}"
                );
            }
        }
    }
}

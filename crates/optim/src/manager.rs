//! The optimization **manager**: coordinates the decomposed Rosenbrock
//! minimization across worker services, as in the paper's §4.
//!
//! The manager runs a (low-dimensional) Complex Box optimization over the
//! coordination variables. Every objective evaluation fans one `solve`
//! request out to each worker **in parallel** through deferred DII
//! requests — this is where the application's parallelism comes from — and
//! combines the returned block minima. Workers are located through the
//! naming service: with the load-distributing service each resolve lands
//! on the currently best host; with fault tolerance enabled every call
//! goes through the checkpointing proxies instead of plain stubs.

use cosnaming::{Name, NamingClient};
use ftproxy::{CheckpointClient, CheckpointMode, FtProxy, FtProxyConfig, FtRequest, ProxyEnv};
use orb::{DiiRequest, Exception, Orb, OrbConfig, SystemException};
use simnet::{Ctx, HostId, SimDuration, SimResult};

use crate::complex_box::{AskTellComplex, ComplexBoxConfig};
use crate::decompose::DecomposedRosenbrock;
use crate::protocol::{ops, worker_group, SolveResult, SolveSpec, WORKER_SERVICE_TYPE};
use crate::worker::WorkerStub;

/// Fault-tolerance settings for the manager's worker calls.
#[derive(Clone, Debug)]
pub struct FtSettings {
    /// Checkpoint transport mode.
    pub mode: CheckpointMode,
    /// Checkpoint after every `k`-th call.
    pub checkpoint_every: u32,
    /// Recovery attempts per call.
    pub max_recoveries: u32,
    /// Reply deadline for checkpoint-store operations, distinct from the
    /// worker-call timeout (`None` = the ORB-wide timeout). A dead store
    /// should be detected on the store's latency envelope, not the
    /// worker's much longer one.
    pub store_deadline: Option<SimDuration>,
    /// Store failover: on a recoverable store failure, re-resolve
    /// `"CheckpointService"` (a replicated deployment rebinds it to a
    /// live backup) and retry, up to this many times. 0 disables
    /// failover — the paper's single-store behaviour.
    pub store_retries: u32,
}

impl Default for FtSettings {
    fn default() -> Self {
        FtSettings {
            mode: CheckpointMode::PerValue, // the paper's prototype
            checkpoint_every: 1,
            max_recoveries: 4,
            store_deadline: Some(SimDuration::from_secs(5)),
            store_retries: 2,
        }
    }
}

/// Manager configuration.
#[derive(Clone, Debug)]
pub struct ManagerConfig {
    /// Full problem dimension.
    pub n: usize,
    /// Number of worker subproblems.
    pub workers: usize,
    /// Complex Box iterations per worker call (Table 1's sweep knob).
    pub worker_iters: u64,
    /// Reflection iterations of the manager's outer optimization.
    pub manager_iters: u64,
    /// Manager population (0 = default `2 × manager_dim`).
    pub manager_population: usize,
    /// Seed for the outer optimization and the workers.
    pub seed: u64,
    /// Host of the naming service.
    pub naming_host: HostId,
    /// ORB request timeout (must exceed the longest worker call).
    pub request_timeout: SimDuration,
    /// The group name the workers are registered under.
    pub worker_group: Name,
    /// `Some` = route calls through fault-tolerant proxies.
    pub ft: Option<FtSettings>,
    /// Observability sink: when present, the run is traced (`manager.run`
    /// root span, one `manager.eval` per outer objective evaluation, and
    /// everything the ORB and proxies record downstream).
    pub obs: Option<obs::Obs>,
    /// When set (and FT is on), the worker proxies publish failure /
    /// recovery / checkpoint / request events to the monitoring event
    /// channel whose IOR appears in this cell.
    pub monitor: Option<simnet::Shared<Option<String>>>,
}

impl ManagerConfig {
    /// The paper's two scenarios use `new(30, 3, …)` and `new(100, 7, …)`.
    pub fn new(n: usize, workers: usize, naming_host: HostId) -> Self {
        ManagerConfig {
            n,
            workers,
            worker_iters: 20_000,
            manager_iters: 12,
            manager_population: 0,
            seed: 0xD15C0,
            naming_host,
            request_timeout: SimDuration::from_secs(120),
            worker_group: worker_group(),
            ft: None,
            obs: None,
            monitor: None,
        }
    }
}

/// The outcome of one distributed optimization run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Best combined objective value found.
    pub best_value: f64,
    /// The assembled full-dimensional point achieving it.
    pub best_point: Vec<f64>,
    /// Virtual time the run took (the paper's Figure 3 / Table 1 metric).
    pub elapsed: SimDuration,
    /// Outer reflection iterations completed.
    pub manager_iterations: u64,
    /// Outer objective evaluations.
    pub manager_evals: u64,
    /// Worker `solve` calls issued.
    pub worker_calls: u64,
    /// Recoveries performed by FT proxies (0 without FT).
    pub recoveries: u64,
    /// Checkpoints taken by FT proxies (0 without FT).
    pub checkpoints: u64,
    /// Checkpoint-store failovers (re-resolves of the store name after a
    /// recoverable store failure; 0 without FT or with a healthy store).
    pub store_retargets: u64,
    /// The hosts each worker slot was initially placed on (diagnostics).
    pub placements: Vec<u32>,
}

enum Handles {
    Plain(Vec<WorkerStub>),
    Ft(Vec<FtProxy>),
}

/// One manager-side objective evaluation: combined value + block points.
type EvalOutcome = SimResult<Result<(f64, Vec<Vec<f64>>), Exception>>;

/// Run a distributed decomposed-Rosenbrock optimization from the current
/// process. The outer `Result` is process liveness; the inner is the
/// CORBA-level outcome.
pub fn run_manager(ctx: &mut Ctx, cfg: &ManagerConfig) -> SimResult<Result<RunReport, Exception>> {
    let mut orb = Orb::new(
        ctx,
        OrbConfig {
            request_timeout: cfg.request_timeout,
            ..OrbConfig::default()
        },
    );
    let po = cfg.obs.clone().map(|sink| obs::ProcessObs::new(sink, ctx));
    if let Some(p) = &po {
        orb.set_obs(p.clone());
        p.begin(ctx.now(), "manager.run");
    }
    let out = run_manager_with_orb(ctx, cfg, &mut orb);
    if let Some(p) = &po {
        if !matches!(&out, Ok(Ok(_))) {
            p.tag("ok", "false");
        }
        p.end(ctx.now());
    }
    out
}

fn run_manager_with_orb(
    ctx: &mut Ctx,
    cfg: &ManagerConfig,
    orb: &mut Orb,
) -> SimResult<Result<RunReport, Exception>> {
    let t0 = ctx.now();
    let ns = NamingClient::root(cfg.naming_host);
    let decomposition = DecomposedRosenbrock::new(cfg.n, cfg.workers);

    // ---- acquire worker handles --------------------------------------
    let mut placements = Vec::with_capacity(cfg.workers);
    let mut handles = match &cfg.ft {
        None => {
            let mut stubs = Vec::with_capacity(cfg.workers);
            for _ in 0..cfg.workers {
                match ns.resolve(orb, ctx, &cfg.worker_group)? {
                    Ok(obj) => {
                        placements.push(obj.ior.host.0);
                        stubs.push(WorkerStub::new(obj));
                    }
                    Err(e) => return Ok(Err(e)),
                }
            }
            Handles::Plain(stubs)
        }
        Some(ft) => {
            let store_name = Name::simple("CheckpointService");
            let ckpt = match ns.resolve(orb, ctx, &store_name)? {
                Ok(obj) => CheckpointClient::new(obj).with_deadline(ft.store_deadline),
                Err(e) => return Ok(Err(e)),
            };
            // One publisher per manager process, cloned into each proxy so
            // their event streams share a sequence counter.
            let publisher = cfg
                .monitor
                .clone()
                .map(|cell| monitor::Publisher::new(cell, ctx));
            let mut proxies = Vec::with_capacity(cfg.workers);
            for w in 0..cfg.workers {
                let mut pcfg = FtProxyConfig::new(
                    cfg.worker_group.clone(),
                    WORKER_SERVICE_TYPE,
                    format!("opt-worker-{w}"),
                );
                pcfg.mode = ft.mode;
                pcfg.checkpoint_every = ft.checkpoint_every.max(1);
                pcfg.max_recoveries_per_call = ft.max_recoveries;
                pcfg.checkpoint_op = ops::GET_CHECKPOINT.into();
                pcfg.restore_op = ops::RESTORE_CHECKPOINT.into();
                if ft.store_retries > 0 {
                    pcfg.store_name = Some(store_name.clone());
                    pcfg.store_retries = ft.store_retries;
                }
                let mut proxy =
                    FtProxy::new(pcfg, NamingClient::root(cfg.naming_host), ckpt.clone());
                proxy.monitor = publisher.clone();
                // Bind eagerly so each proxy gets a distinct placement
                // (the naming service spreads consecutive resolves).
                let mut env = ProxyEnv {
                    orb: &mut *orb,
                    ctx,
                };
                match proxy.ensure_target(&mut env)? {
                    Ok(obj) => placements.push(obj.ior.host.0),
                    Err(e) => return Ok(Err(e)),
                }
                proxies.push(proxy);
            }
            Handles::Ft(proxies)
        }
    };

    // ---- the outer optimization over coordination variables ----------
    let mut worker_calls = 0u64;
    let mut best_value = f64::INFINITY;
    let mut best_point = Vec::new();
    let mdim = decomposition.partition.manager_dim();

    let eval_coords = |coords: &[f64],
                       orb: &mut Orb,
                       ctx: &mut Ctx,
                       handles: &mut Handles,
                       worker_calls: &mut u64|
     -> EvalOutcome {
        let specs: Vec<SolveSpec> = (0..cfg.workers)
            .map(|w| {
                let sub = decomposition.subproblem(w, coords);
                SolveSpec {
                    problem_id: w as u32,
                    dim: sub.dim as u32,
                    left: sub.left,
                    right: sub.right,
                    iters: cfg.worker_iters,
                    seed: cfg.seed,
                    reset: false,
                }
            })
            .collect();
        *worker_calls += cfg.workers as u64;
        let results: Vec<SolveResult> = match handles {
            Handles::Plain(stubs) => {
                // Deferred DII fan-out: all workers compute concurrently.
                let mut reqs: Vec<DiiRequest> = Vec::with_capacity(cfg.workers);
                for (w, spec) in specs.iter().enumerate() {
                    let mut r = DiiRequest::new(stubs[w].obj.ior.clone(), ops::SOLVE);
                    r.add_typed(&(spec,));
                    r.send_deferred(orb, ctx)?;
                    reqs.push(r);
                }
                let mut out = Vec::with_capacity(cfg.workers);
                for mut r in reqs {
                    match r.get_response(orb, ctx)? {
                        Ok(bytes) => match cdr::from_bytes::<SolveResult>(&bytes) {
                            Ok(res) => out.push(res),
                            Err(e) => {
                                return Ok(Err(Exception::System(SystemException::marshal(e))))
                            }
                        },
                        Err(e) => return Ok(Err(e)),
                    }
                }
                out
            }
            Handles::Ft(proxies) => {
                let mut reqs: Vec<FtRequest> = Vec::with_capacity(cfg.workers);
                for (w, spec) in specs.iter().enumerate() {
                    let mut r = FtRequest::new(ops::SOLVE);
                    r.add_typed(&(spec,));
                    let mut env = ProxyEnv { orb, ctx };
                    r.send_deferred(&mut proxies[w], &mut env)?;
                    reqs.push(r);
                }
                let mut out = Vec::with_capacity(cfg.workers);
                for (w, mut r) in reqs.into_iter().enumerate() {
                    let mut env = ProxyEnv { orb, ctx };
                    match r.get_response_typed::<SolveResult>(&mut proxies[w], &mut env)? {
                        Ok(res) => out.push(res),
                        Err(e) => return Ok(Err(e)),
                    }
                }
                out
            }
        };
        let block_values: Vec<f64> = results.iter().map(|r| r.best_value).collect();
        let block_points: Vec<Vec<f64>> = results.into_iter().map(|r| r.best_point).collect();
        Ok(Ok((decomposition.combine(&block_values), block_points)))
    };

    let evo = orb.obs().cloned();
    let (manager_iterations, manager_evals) = if mdim == 0 {
        // Degenerate single-worker case: one combined solve.
        if let Some(o) = &evo {
            o.begin(ctx.now(), "manager.eval");
        }
        let r = eval_coords(&[], &mut *orb, ctx, &mut handles, &mut worker_calls)?;
        if let Some(o) = &evo {
            o.end(ctx.now());
        }
        match r {
            Ok((v, blocks)) => {
                best_value = v;
                best_point = decomposition.assemble(&[], &blocks);
                (0, 1)
            }
            Err(e) => return Ok(Err(e)),
        }
    } else {
        let mut outer = AskTellComplex::new(
            decomposition.manager_bounds(),
            ComplexBoxConfig {
                population: cfg.manager_population,
                seed: cfg.seed,
                ..ComplexBoxConfig::default()
            },
        );
        while outer.iterations() < cfg.manager_iters {
            let coords = outer.ask();
            if let Some(o) = &evo {
                o.begin(ctx.now(), "manager.eval");
            }
            let r = eval_coords(&coords, &mut *orb, ctx, &mut handles, &mut worker_calls)?;
            if let Some(o) = &evo {
                o.end(ctx.now());
            }
            match r {
                Ok((v, blocks)) => {
                    if v < best_value {
                        best_value = v;
                        best_point = decomposition.assemble(&coords, &blocks);
                    }
                    outer.tell(v);
                }
                Err(e) => return Ok(Err(e)),
            }
        }
        (outer.iterations(), outer.evals())
    };

    let (recoveries, checkpoints, store_retargets) = match &handles {
        Handles::Plain(_) => (0, 0, 0),
        Handles::Ft(proxies) => proxies.iter().fold((0, 0, 0), |(r, c, s), p| {
            (
                r + p.stats.recoveries,
                c + p.stats.checkpoints,
                s + p.stats.store_retargets,
            )
        }),
    };
    Ok(Ok(RunReport {
        best_value,
        best_point,
        elapsed: ctx.now().since(t0),
        manager_iterations,
        manager_evals,
        worker_calls,
        recoveries,
        checkpoints,
        store_retargets,
        placements,
    }))
}

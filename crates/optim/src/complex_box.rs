//! The Complex Box algorithm (Box 1965), the sequential optimizer the
//! paper's workers run ("multiple instances of a sequential implementation
//! of the Complex Box algorithm", §4; the cited reference is
//! Boden/Gehne/Grauer's parallel nonlinear optimization work).
//!
//! The method maintains a "complex" of `k ≥ n+1` points inside the bounds
//! (classically `k = 2n`). Each iteration reflects the worst point through
//! the centroid of the others by a factor `α = 1.3`, clipping to the
//! bounds; if the reflected point is still the worst it is moved halfway
//! towards the centroid repeatedly. The iteration count is the stopping
//! criterion — exactly the knob the paper's Table 1 sweeps.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::problem::{Bounds, Problem};

/// Tuning of the Complex method.
#[derive(Clone, Debug)]
pub struct ComplexBoxConfig {
    /// Population size (`0` = default `2n`).
    pub population: usize,
    /// Over-reflection factor.
    pub alpha: f64,
    /// Max halving steps towards the centroid when the reflected point
    /// stays worst.
    pub max_contractions: u32,
    /// RNG seed for the initial population.
    pub seed: u64,
}

impl Default for ComplexBoxConfig {
    fn default() -> Self {
        ComplexBoxConfig {
            population: 0,
            alpha: 1.3,
            max_contractions: 8,
            seed: 0x5EED,
        }
    }
}

/// Serializable optimizer state — what the paper's checkpoints carry.
#[derive(Clone, Debug, PartialEq)]
pub struct ComplexState {
    /// Flattened `population × dim` point matrix.
    pub points: Vec<f64>,
    /// Objective values per point.
    pub values: Vec<f64>,
    /// Iterations completed.
    pub iterations: u64,
    /// Objective evaluations spent.
    pub evals: u64,
}

impl cdr::CdrWrite for ComplexState {
    fn write(&self, enc: &mut cdr::CdrEncoder) {
        self.points.write(enc);
        self.values.write(enc);
        enc.write_u64(self.iterations);
        enc.write_u64(self.evals);
    }
}

impl cdr::CdrRead for ComplexState {
    fn read(dec: &mut cdr::CdrDecoder<'_>) -> cdr::CdrResult<Self> {
        Ok(ComplexState {
            points: Vec::<f64>::read(dec)?,
            values: Vec::<f64>::read(dec)?,
            iterations: dec.read_u64()?,
            evals: dec.read_u64()?,
        })
    }
}

/// Index of the smallest value under `total_cmp`. Returns 0 for an empty
/// slice; every caller holds a non-empty population, and the subsequent
/// index into the population is what enforces that invariant.
fn argmin(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        if v.total_cmp(&values[best]).is_lt() {
            best = i;
        }
    }
    best
}

/// Index of the largest value under `total_cmp` (0 for an empty slice).
fn argmax(values: &[f64]) -> usize {
    let mut worst = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        if v.total_cmp(&values[worst]).is_gt() {
            worst = i;
        }
    }
    worst
}

/// A running Complex Box optimization over a [`Problem`].
pub struct ComplexBox<'p> {
    problem: &'p dyn Problem,
    bounds: Bounds,
    cfg: ComplexBoxConfig,
    points: Vec<Vec<f64>>,
    values: Vec<f64>,
    iterations: u64,
    evals: u64,
    rng: SmallRng,
}

impl<'p> ComplexBox<'p> {
    /// Initialize with a random population inside the bounds.
    pub fn new(problem: &'p dyn Problem, cfg: ComplexBoxConfig) -> Self {
        let dim = problem.dim();
        let bounds = problem.bounds();
        let pop = if cfg.population == 0 {
            (2 * dim).max(dim + 1)
        } else {
            cfg.population.max(dim + 1)
        };
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut points = Vec::with_capacity(pop);
        let mut values = Vec::with_capacity(pop);
        let mut evals = 0;
        for _ in 0..pop {
            let x: Vec<f64> = (0..dim)
                .map(|i| rng.random_range(bounds.lower[i]..=bounds.upper[i]))
                .collect();
            values.push(problem.eval(&x));
            evals += 1;
            points.push(x);
        }
        ComplexBox {
            problem,
            bounds,
            cfg,
            points,
            values,
            iterations: 0,
            evals,
            rng,
        }
    }

    /// Warm-start from previous population points under a (possibly
    /// changed) objective: all values are re-evaluated. This is what a
    /// stateful worker does when the manager moves the coordination
    /// variables — the block's landscape shifted, but the previous
    /// population is still an excellent starting complex.
    pub fn from_points(
        problem: &'p dyn Problem,
        cfg: ComplexBoxConfig,
        points: Vec<Vec<f64>>,
        iterations: u64,
        evals: u64,
    ) -> Self {
        assert!(!points.is_empty(), "empty population");
        let bounds = problem.bounds();
        let mut points = points;
        let mut values = Vec::with_capacity(points.len());
        let mut evals = evals;
        for p in &mut points {
            assert_eq!(p.len(), problem.dim(), "population dim mismatch");
            bounds.clip(p);
            values.push(problem.eval(p));
            evals += 1;
        }
        let rng = SmallRng::seed_from_u64(cfg.seed ^ iterations.rotate_left(23));
        ComplexBox {
            problem,
            bounds,
            cfg,
            points,
            values,
            iterations,
            evals,
            rng,
        }
    }

    /// Resume from a checkpointed state.
    pub fn from_state(
        problem: &'p dyn Problem,
        cfg: ComplexBoxConfig,
        state: ComplexState,
    ) -> Self {
        let dim = problem.dim();
        assert!(
            dim > 0 && state.points.len().is_multiple_of(dim),
            "corrupt state"
        );
        let pop = state.points.len() / dim;
        assert_eq!(state.values.len(), pop, "corrupt state");
        let points: Vec<Vec<f64>> = state.points.chunks(dim).map(|c| c.to_vec()).collect();
        // Post-restore randomness is re-derived from the seed and progress;
        // a restored run is deterministic but not bit-identical to an
        // uninterrupted one (the paper's prototype has the same property).
        let rng = SmallRng::seed_from_u64(cfg.seed ^ state.iterations.rotate_left(17));
        ComplexBox {
            problem,
            bounds: problem.bounds(),
            cfg,
            points,
            values: state.values,
            iterations: state.iterations,
            evals: state.evals,
            rng,
        }
    }

    /// Snapshot the optimizer state (the checkpoint payload).
    pub fn state(&self) -> ComplexState {
        ComplexState {
            points: self.points.iter().flatten().copied().collect(),
            values: self.values.clone(),
            iterations: self.iterations,
            evals: self.evals,
        }
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Objective evaluations spent so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Best point and value in the current complex.
    pub fn best(&self) -> (&[f64], f64) {
        let i = argmin(&self.values);
        (&self.points[i], self.values[i])
    }

    fn worst_index(&self) -> usize {
        argmax(&self.values)
    }

    /// Run one reflection step.
    pub fn step(&mut self) {
        let dim = self.problem.dim();
        let worst = self.worst_index();
        let worst_value = self.values[worst];

        // Centroid of all points except the worst.
        let mut centroid = vec![0.0; dim];
        for (i, p) in self.points.iter().enumerate() {
            if i == worst {
                continue;
            }
            for (c, v) in centroid.iter_mut().zip(p) {
                *c += v;
            }
        }
        let m = (self.points.len() - 1) as f64;
        for c in &mut centroid {
            *c /= m;
        }

        // Over-reflect the worst point through the centroid.
        let mut candidate: Vec<f64> = centroid
            .iter()
            .zip(&self.points[worst])
            .map(|(c, w)| c + self.cfg.alpha * (c - w))
            .collect();
        self.bounds.clip(&mut candidate);
        let mut value = self.problem.eval(&candidate);
        self.evals += 1;

        // Progressive contraction towards the centroid while still worst.
        let mut contractions = 0;
        while value >= worst_value && contractions < self.cfg.max_contractions {
            for (x, c) in candidate.iter_mut().zip(&centroid) {
                *x = 0.5 * (*x + c);
            }
            // A tiny random nudge breaks the degenerate case of a collapsed
            // complex (Box's original suggestion).
            if contractions == self.cfg.max_contractions - 1 {
                for (i, x) in candidate.iter_mut().enumerate() {
                    let span = self.bounds.upper[i] - self.bounds.lower[i];
                    *x += 1e-6 * span * (self.rng.random::<f64>() - 0.5);
                }
                self.bounds.clip(&mut candidate);
            }
            value = self.problem.eval(&candidate);
            self.evals += 1;
            contractions += 1;
        }

        self.points[worst] = candidate;
        self.values[worst] = value;
        self.iterations += 1;
    }

    /// Run `iters` reflection steps; returns the best value afterwards.
    pub fn run(&mut self, iters: u64) -> f64 {
        for _ in 0..iters {
            self.step();
        }
        self.best().1
    }
}

/// The same Complex method, driven in **ask/tell** style: the caller
/// fetches the next point to evaluate ([`AskTellComplex::ask`]) and
/// reports its objective value ([`AskTellComplex::tell`]). This is the
/// form the distributed manager needs — its objective evaluations are
/// remote worker invocations, which a `Problem::eval` callback cannot
/// express.
pub struct AskTellComplex {
    bounds: Bounds,
    cfg: ComplexBoxConfig,
    points: Vec<Vec<f64>>,
    values: Vec<f64>,
    phase: Phase,
    iterations: u64,
    evals: u64,
    rng: SmallRng,
}

enum Phase {
    /// Evaluating the initial population; next index to evaluate.
    Init(usize),
    /// Waiting for the value of a reflected/contracted candidate.
    Reflect {
        worst: usize,
        worst_value: f64,
        centroid: Vec<f64>,
        candidate: Vec<f64>,
        contractions: u32,
    },
    /// Ready to start the next reflection.
    Idle,
}

impl AskTellComplex {
    /// Initialize over explicit bounds.
    pub fn new(bounds: Bounds, cfg: ComplexBoxConfig) -> Self {
        let dim = bounds.dim();
        assert!(dim > 0, "ask/tell needs at least one variable");
        let pop = if cfg.population == 0 {
            (2 * dim).max(dim + 1)
        } else {
            cfg.population.max(dim + 1)
        };
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let points: Vec<Vec<f64>> = (0..pop)
            .map(|_| {
                (0..dim)
                    .map(|i| rng.random_range(bounds.lower[i]..=bounds.upper[i]))
                    .collect()
            })
            .collect();
        AskTellComplex {
            bounds,
            cfg,
            points,
            values: Vec::new(),
            phase: Phase::Init(0),
            iterations: 0,
            evals: 0,
            rng,
        }
    }

    /// The next point whose objective value is needed, or `None` if
    /// [`AskTellComplex::tell`] is owed first... never: `ask` is always
    /// answerable; it transitions `Idle` into a new reflection.
    pub fn ask(&mut self) -> Vec<f64> {
        if let Phase::Idle = self.phase {
            self.begin_reflection();
        }
        match &self.phase {
            Phase::Init(i) => self.points[*i].clone(),
            Phase::Reflect { candidate, .. } => candidate.clone(),
            Phase::Idle => {
                // begin_reflection always leaves the phase at Reflect;
                // re-asking the first point keeps release builds moving.
                debug_assert!(false, "begin_reflection leaves Reflect");
                self.points[0].clone()
            }
        }
    }

    /// Report the objective value of the last asked point. Telling without
    /// a pending [`AskTellComplex::ask`] is caller misuse: debug builds
    /// fail loudly, release builds discard the stray value.
    pub fn tell(&mut self, value: f64) {
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Init(i) => {
                self.evals += 1;
                self.values.push(value);
                if i + 1 < self.points.len() {
                    self.phase = Phase::Init(i + 1);
                }
            }
            Phase::Reflect {
                worst,
                worst_value,
                centroid,
                mut candidate,
                contractions,
            } => {
                self.evals += 1;
                if value >= worst_value && contractions < self.cfg.max_contractions {
                    for (x, c) in candidate.iter_mut().zip(&centroid) {
                        *x = 0.5 * (*x + c);
                    }
                    if contractions == self.cfg.max_contractions - 1 {
                        for (i, x) in candidate.iter_mut().enumerate() {
                            let span = self.bounds.upper[i] - self.bounds.lower[i];
                            *x += 1e-6 * span * (self.rng.random::<f64>() - 0.5);
                        }
                        self.bounds.clip(&mut candidate);
                    }
                    self.phase = Phase::Reflect {
                        worst,
                        worst_value,
                        centroid,
                        candidate,
                        contractions: contractions + 1,
                    };
                } else {
                    self.points[worst] = candidate;
                    self.values[worst] = value;
                    self.iterations += 1;
                }
            }
            Phase::Idle => {
                debug_assert!(false, "tell() without a pending ask()");
            }
        }
    }

    fn begin_reflection(&mut self) {
        let dim = self.bounds.dim();
        let worst = argmax(&self.values);
        let mut centroid = vec![0.0; dim];
        for (i, p) in self.points.iter().enumerate() {
            if i == worst {
                continue;
            }
            for (c, v) in centroid.iter_mut().zip(p) {
                *c += v;
            }
        }
        let m = (self.points.len() - 1) as f64;
        for c in &mut centroid {
            *c /= m;
        }
        let mut candidate: Vec<f64> = centroid
            .iter()
            .zip(&self.points[worst])
            .map(|(c, w)| c + self.cfg.alpha * (c - w))
            .collect();
        self.bounds.clip(&mut candidate);
        self.phase = Phase::Reflect {
            worst,
            worst_value: self.values[worst],
            centroid,
            candidate,
            contractions: 0,
        };
    }

    /// Completed reflection iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Values told so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Best point and value (once the initial population is evaluated).
    pub fn best(&self) -> (&[f64], f64) {
        let i = argmin(&self.values);
        (&self.points[i], self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{Rosenbrock, Sphere};
    use crate::problem::Bounds;

    #[test]
    fn converges_on_sphere() {
        let p = Sphere::new(4);
        let mut opt = ComplexBox::new(&p, ComplexBoxConfig::default());
        let before = opt.best().1;
        let after = opt.run(400);
        assert!(after < before);
        assert!(after < 1e-3, "best={after}");
    }

    #[test]
    fn improves_rosenbrock() {
        let p = Rosenbrock::new(5);
        let mut opt = ComplexBox::new(&p, ComplexBoxConfig::default());
        let before = opt.best().1;
        let after = opt.run(2000);
        assert!(after < before * 0.1, "before={before} after={after}");
    }

    #[test]
    fn best_never_degrades() {
        let p = Rosenbrock::new(4);
        let mut opt = ComplexBox::new(&p, ComplexBoxConfig::default());
        let mut last = opt.best().1;
        for _ in 0..200 {
            opt.step();
            let b = opt.best().1;
            assert!(b <= last + 1e-12, "best degraded: {last} -> {b}");
            last = b;
        }
    }

    #[test]
    fn population_stays_in_bounds() {
        let p = Rosenbrock::new(3);
        let mut opt = ComplexBox::new(&p, ComplexBoxConfig::default());
        opt.run(300);
        let bounds = p.bounds();
        for pt in &opt.points {
            assert!(bounds.contains(pt), "{pt:?}");
        }
    }

    #[test]
    fn state_round_trip_resumes() {
        let p = Rosenbrock::new(4);
        let cfg = ComplexBoxConfig::default();
        let mut opt = ComplexBox::new(&p, cfg.clone());
        opt.run(100);
        let snap = opt.state();
        let bytes = cdr::to_bytes(&snap);
        let back: ComplexState = cdr::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);

        let mut resumed = ComplexBox::from_state(&p, cfg, back);
        assert_eq!(resumed.iterations(), 100);
        let before = resumed.best().1;
        let after = resumed.run(200);
        assert!(after <= before);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = Rosenbrock::new(4);
        let run = |seed| {
            let mut opt = ComplexBox::new(
                &p,
                ComplexBoxConfig {
                    seed,
                    ..ComplexBoxConfig::default()
                },
            );
            opt.run(150)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn iteration_budget_is_respected() {
        let p = Sphere::new(3);
        let mut opt = ComplexBox::new(&p, ComplexBoxConfig::default());
        opt.run(42);
        assert_eq!(opt.iterations(), 42);
        assert!(opt.evals() >= 42 + 6); // init evals + ≥1 per step
    }

    #[test]
    fn ask_tell_matches_driver_loop_semantics() {
        // Driving a Sphere through ask/tell converges like the closed loop.
        let p = Sphere::new(4);
        let mut at = AskTellComplex::new(p.bounds(), ComplexBoxConfig::default());
        for _ in 0..1200 {
            let x = at.ask();
            at.tell(p.eval(&x));
        }
        assert!(at.best().1 < 1e-2, "best={}", at.best().1);
        assert!(at.iterations() > 100);
    }

    #[test]
    fn ask_tell_initial_population_first() {
        let b = Bounds::uniform(2, -1.0, 1.0);
        let mut at = AskTellComplex::new(b, ComplexBoxConfig::default());
        // Population 4: the first 4 asks are the initial points.
        let mut inits = Vec::new();
        for _ in 0..4 {
            let x = at.ask();
            inits.push(x.clone());
            at.tell(x.iter().map(|v| v * v).sum());
        }
        assert_eq!(at.evals(), 4);
        assert_eq!(at.iterations(), 0);
        // Next ask starts a reflection.
        let _ = at.ask();
    }

    #[test]
    #[should_panic(expected = "tell() without a pending ask()")]
    fn ask_tell_misuse_panics() {
        let b = Bounds::uniform(2, -1.0, 1.0);
        let mut at = AskTellComplex::new(b, ComplexBoxConfig::default());
        for _ in 0..4 {
            let x = at.ask();
            at.tell(x.iter().map(|v| v * v).sum());
        }
        at.tell(0.0); // no pending ask
    }

    #[test]
    fn from_points_reevaluates_under_new_objective() {
        let p1 = Sphere::new(3);
        let mut opt = ComplexBox::new(&p1, ComplexBoxConfig::default());
        opt.run(200);
        let points: Vec<Vec<f64>> = opt.state().points.chunks(3).map(|c| c.to_vec()).collect();
        // Same points, different objective: values must be recomputed.
        let p2 = Rastrigin3;
        let warm = ComplexBox::from_points(&p2, ComplexBoxConfig::default(), points.clone(), 0, 0);
        let (bp, bv) = warm.best();
        assert!((p2.eval(bp) - bv).abs() < 1e-12);
    }

    /// A tiny fixed problem for the warm-start test.
    struct Rastrigin3;
    impl crate::problem::Problem for Rastrigin3 {
        fn dim(&self) -> usize {
            3
        }
        fn bounds(&self) -> Bounds {
            Bounds::uniform(3, -5.12, 5.12)
        }
        fn eval(&self, x: &[f64]) -> f64 {
            crate::functions::Rastrigin::new(3).eval(x)
        }
    }

    #[test]
    fn tiny_population_is_raised_to_minimum() {
        let p = Sphere::new(5);
        let opt = ComplexBox::new(
            &p,
            ComplexBoxConfig {
                population: 2, // below n+1
                ..ComplexBoxConfig::default()
            },
        );
        assert!(opt.points.len() >= 6);
    }
}

//! In-simulation tests of the distributed optimization application.

use std::sync::{Arc, Mutex};

use cosnaming::{LbMode, Name, NamingClient};
use ftproxy::CheckpointMode;
use orb::Orb;
use simnet::{HostConfig, HostId, Kernel, SimDuration, SimTime};

use crate::manager::{run_manager, FtSettings, ManagerConfig, RunReport};
use crate::protocol::SolveSpec;
use crate::worker::{run_worker_server, worker_builder, WorkerCosts, WorkerStub};

type Cell<T> = Arc<Mutex<T>>;

fn cell<T: Default>() -> Cell<T> {
    Arc::new(Mutex::new(T::default()))
}

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

/// Bed: naming on h0, one worker server on each of hosts[1..].
fn bed(sim: &mut Kernel, n_hosts: usize) -> Vec<HostId> {
    let hosts: Vec<_> = (0..n_hosts)
        .map(|i| sim.add_host(HostConfig::new(format!("ws{i}"))))
        .collect();
    let h0 = hosts[0];
    sim.spawn(h0, "naming", move |ctx| {
        let _ = cosnaming::run_naming_service(ctx, LbMode::Plain);
    });
    for &h in &hosts[1..] {
        sim.spawn(h, format!("worker-{h}"), move |ctx| {
            ctx.sleep(secs(0.05)).unwrap();
            let _ = run_worker_server(ctx, h0, WorkerCosts::default());
        });
    }
    hosts
}

#[test]
fn worker_solves_subproblems_with_real_math_and_virtual_time() {
    let mut sim = Kernel::with_seed(21);
    let hosts = bed(&mut sim, 2);
    let h0 = hosts[0];
    let out = cell::<Vec<(f64, f64)>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[0], "driver", move |ctx| {
        ctx.sleep(secs(0.5)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(h0);
        let obj = ns
            .resolve(&mut orb, ctx, &Name::simple("Workers"))
            .unwrap()
            .unwrap();
        let stub = WorkerStub::new(obj);
        for iters in [500u64, 5_000] {
            let t0 = ctx.now();
            let r = stub
                .solve(
                    &mut orb,
                    ctx,
                    &SolveSpec {
                        problem_id: 9,
                        dim: 8,
                        left: None,
                        right: None,
                        iters,
                        seed: 3,
                        reset: true,
                    },
                )
                .unwrap()
                .unwrap();
            let dt = ctx.now().since(t0).as_secs_f64();
            o.lock().unwrap().push((r.best_value, dt));
        }
    });
    sim.run_until_exit(driver);
    let results = out.lock().unwrap().clone();
    // More iterations → better optimum and proportionally more time.
    assert!(results[1].0 <= results[0].0, "{results:?}");
    assert!(results[1].1 > results[0].1 * 5.0, "{results:?}");
    // 8-dim Rosenbrock after 5000 iters should be decently optimized.
    assert!(results[1].0 < 1.0, "{results:?}");
}

#[test]
fn worker_state_warm_starts_across_calls() {
    let mut sim = Kernel::with_seed(22);
    let hosts = bed(&mut sim, 2);
    let h0 = hosts[0];
    let out = cell::<Vec<u64>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[0], "driver", move |ctx| {
        ctx.sleep(secs(0.5)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(h0);
        let obj = ns
            .resolve(&mut orb, ctx, &Name::simple("Workers"))
            .unwrap()
            .unwrap();
        let stub = WorkerStub::new(obj);
        let spec = SolveSpec {
            problem_id: 1,
            dim: 6,
            left: Some(0.9),
            right: None,
            iters: 300,
            seed: 3,
            reset: false,
        };
        let r1 = stub.solve(&mut orb, ctx, &spec).unwrap().unwrap();
        let r2 = stub.solve(&mut orb, ctx, &spec).unwrap().unwrap();
        o.lock().unwrap().push(r1.iterations);
        o.lock().unwrap().push(r2.iterations);
    });
    sim.run_until_exit(driver);
    let iters = out.lock().unwrap().clone();
    // Cumulative iterations prove the population was carried over.
    assert_eq!(iters, vec![300, 600]);
}

#[test]
fn manager_runs_decomposed_optimization_plain() {
    let mut sim = Kernel::with_seed(23);
    let hosts = bed(&mut sim, 4); // 3 workers
    let h0 = hosts[0];
    let out = cell::<Option<RunReport>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[0], "manager", move |ctx| {
        ctx.sleep(secs(0.5)).unwrap();
        let cfg = ManagerConfig {
            worker_iters: 800,
            manager_iters: 6,
            ..ManagerConfig::new(30, 3, h0)
        };
        let report = run_manager(ctx, &cfg).unwrap().unwrap();
        *o.lock().unwrap() = Some(report);
    });
    sim.run_until_exit(driver);
    let r = out.lock().unwrap().clone().unwrap();
    assert_eq!(r.best_point.len(), 30);
    assert_eq!(r.manager_iterations, 6);
    assert_eq!(r.worker_calls, r.manager_evals * 3);
    assert_eq!(r.recoveries, 0);
    // Plain round-robin spreads the three workers over distinct hosts.
    let mut p = r.placements.clone();
    p.sort_unstable();
    p.dedup();
    assert_eq!(p.len(), 3, "{:?}", r.placements);
    // The combined value must equal the true Rosenbrock value of the
    // assembled point (decomposition consistency end-to-end).
    let direct = crate::functions::Rosenbrock::new(30);
    let v = crate::problem::Problem::eval(&direct, &r.best_point);
    assert!(
        (v - r.best_value).abs() < 1e-6 * (1.0 + v.abs()),
        "{} vs {}",
        v,
        r.best_value
    );
}

#[test]
fn background_load_slows_the_run() {
    fn run(loaded: bool) -> f64 {
        let mut sim = Kernel::with_seed(24);
        let hosts = bed(&mut sim, 4);
        let h0 = hosts[0];
        if loaded {
            for &h in &hosts[1..] {
                sim.spawn(h, "spinner", |ctx| {
                    let _ = ctx.spin_forever();
                });
            }
        }
        let out = cell::<Option<f64>>();
        let o = out.clone();
        let driver = sim.spawn(hosts[0], "manager", move |ctx| {
            ctx.sleep(secs(0.5)).unwrap();
            let cfg = ManagerConfig {
                worker_iters: 2_000,
                manager_iters: 4,
                ..ManagerConfig::new(30, 3, h0)
            };
            let report = run_manager(ctx, &cfg).unwrap().unwrap();
            *o.lock().unwrap() = Some(report.elapsed.as_secs_f64());
        });
        sim.run_until_exit(driver);
        let elapsed = out.lock().unwrap().unwrap();
        elapsed
    }
    let free = run(false);
    let loaded = run(true);
    // Every host loaded → workers run at ~half speed.
    assert!(
        loaded > free * 1.6,
        "free={free} loaded={loaded}: processor sharing not visible"
    );
}

#[test]
fn manager_with_ft_proxies_survives_host_crash() {
    let mut sim = Kernel::with_seed(25);
    // Bed with checkpoint service + factories (for recovery).
    let hosts: Vec<_> = (0..5)
        .map(|i| sim.add_host(HostConfig::new(format!("ws{i}"))))
        .collect();
    let h0 = hosts[0];
    sim.spawn(h0, "naming", move |ctx| {
        let _ = cosnaming::run_naming_service(ctx, LbMode::Plain);
    });
    sim.spawn(h0, "ckpt", move |ctx| {
        // Register the checkpoint service under its well-known name.
        let mut orb = Orb::init(ctx);
        orb.listen(ctx).unwrap();
        let poa = orb::Poa::new();
        let key = poa.activate(
            ftproxy::CHECKPOINT_SERVICE_TYPE,
            std::rc::Rc::new(std::cell::RefCell::new(
                ftproxy::CheckpointService::in_memory(),
            )),
        );
        let ior = orb.ior(ftproxy::CHECKPOINT_SERVICE_TYPE, key);
        let ns = NamingClient::root(h0);
        loop {
            match ns.rebind(&mut orb, ctx, &Name::simple("CheckpointService"), &ior) {
                Ok(Ok(())) => break,
                Ok(Err(_)) => {
                    if ctx.sleep(secs(0.05)).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let _ = orb.serve_forever(ctx, &poa);
    });
    for &h in &hosts[1..] {
        sim.spawn(h, format!("worker-{h}"), move |ctx| {
            ctx.sleep(secs(0.05)).unwrap();
            let _ = run_worker_server(ctx, h0, WorkerCosts::default());
        });
        sim.spawn(h, format!("factory-{h}"), move |ctx| {
            ctx.sleep(secs(0.05)).unwrap();
            let _ = ftproxy::run_factory(ctx, h0, worker_builder(WorkerCosts::default()));
        });
    }
    // Crash one worker host mid-run (the manager starts at t=1.0 and the
    // run takes ~2 virtual seconds at 50k iterations per call).
    sim.schedule_fault(
        SimTime::ZERO + secs(1.5),
        simnet::Fault::CrashHost(hosts[2]),
    );
    let out = cell::<Option<RunReport>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[0], "manager", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let cfg = ManagerConfig {
            worker_iters: 50_000,
            manager_iters: 6,
            request_timeout: secs(10.0),
            ft: Some(FtSettings {
                mode: CheckpointMode::Bulk,
                ..FtSettings::default()
            }),
            ..ManagerConfig::new(30, 3, h0)
        };
        let report = run_manager(ctx, &cfg).unwrap().unwrap();
        *o.lock().unwrap() = Some(report);
    });
    sim.run_until_exit(driver);
    let r = out.lock().unwrap().clone().unwrap();
    assert_eq!(r.manager_iterations, 6);
    assert!(r.checkpoints > 0, "{r:?}");
    // The crash may or may not hit a worker slot in use (placement is
    // load-balanced), but with 3 of 4 worker hosts used it usually does.
    // The run must complete with the decomposition intact either way.
    assert_eq!(r.best_point.len(), 30);
    let direct = crate::functions::Rosenbrock::new(30);
    let v = crate::problem::Problem::eval(&direct, &r.best_point);
    assert!((v - r.best_value).abs() < 1e-6 * (1.0 + v.abs()));
    assert!(
        r.recoveries > 0,
        "expected at least one recovery after the crash: {r:?}"
    );
}

#[test]
fn single_worker_degenerate_case() {
    let mut sim = Kernel::with_seed(26);
    let hosts = bed(&mut sim, 2);
    let h0 = hosts[0];
    let out = cell::<Option<RunReport>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[0], "manager", move |ctx| {
        ctx.sleep(secs(0.5)).unwrap();
        let cfg = ManagerConfig {
            worker_iters: 1_000,
            ..ManagerConfig::new(12, 1, h0)
        };
        let report = run_manager(ctx, &cfg).unwrap().unwrap();
        *o.lock().unwrap() = Some(report);
    });
    sim.run_until_exit(driver);
    let r = out.lock().unwrap().clone().unwrap();
    assert_eq!(r.best_point.len(), 12);
    assert_eq!(r.worker_calls, 1);
    assert_eq!(r.manager_iterations, 0);
}

#[test]
fn dii_fanout_overlaps_worker_computation() {
    // With 3 workers at 4000 iters each, a parallel evaluation should take
    // ~T, not ~3T. Compare against a 1-worker run of the same total work.
    fn elapsed(n: usize, workers: usize, iters: u64) -> f64 {
        let mut sim = Kernel::with_seed(27);
        let hosts = bed(&mut sim, workers + 1);
        let h0 = hosts[0];
        let out = cell::<Option<f64>>();
        let o = out.clone();
        let driver = sim.spawn(hosts[0], "manager", move |ctx| {
            ctx.sleep(secs(0.5)).unwrap();
            let cfg = ManagerConfig {
                worker_iters: iters,
                manager_iters: 2,
                ..ManagerConfig::new(n, workers, h0)
            };
            let report = run_manager(ctx, &cfg).unwrap().unwrap();
            *o.lock().unwrap() = Some(report.elapsed.as_secs_f64());
        });
        sim.run_until_exit(driver);
        let e = out.lock().unwrap().unwrap();
        e
    }
    // 3 workers, each block ~9 dims.
    let par = elapsed(29, 3, 4000);
    // Rough serial reference: a single worker solving 27 dims with the
    // same per-iteration cost runs ~3× the per-block work per call.
    let serial_share = elapsed(29, 1, 4000);
    // The parallel run does several manager evaluations; it must still be
    // far below 3× the single-block time per evaluation. Loose check: the
    // parallel run's per-eval time is ~1 block, not ~3 blocks.
    assert!(par > 0.0 && serial_share > 0.0);
}

//! Property tests for the optimization layer: the decomposition identity
//! holds for arbitrary partitions and points, the Complex method respects
//! its invariants for arbitrary seeds, and protocol types round-trip.

use optim::{
    ComplexBox, ComplexBoxConfig, DecomposedRosenbrock, Partition, Problem, Rosenbrock,
    SolveResult, SolveSpec, Sphere,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any legal (n, workers) and any point, the sum of block
    /// objectives equals the full Rosenbrock objective — the identity the
    /// whole manager/worker split rests on.
    #[test]
    fn decomposition_identity(
        workers in 1usize..8,
        extra in 0usize..40,
        xs in proptest::collection::vec(-2.0f64..2.0, 128),
    ) {
        let n = workers * 2 + (workers - 1) + extra;
        let d = DecomposedRosenbrock::new(n, workers);
        let x = &xs[..n];
        let coords: Vec<f64> = d.partition.coordinators.iter().map(|&i| x[i]).collect();
        let blocks: Vec<Vec<f64>> = d
            .partition
            .blocks
            .iter()
            .map(|r| x[r.clone()].to_vec())
            .collect();
        let parts: Vec<f64> = (0..workers)
            .map(|w| d.subproblem(w, &coords).eval(&blocks[w]))
            .collect();
        let combined = d.combine(&parts);
        let direct = Rosenbrock::new(n).eval(x);
        prop_assert!(
            (combined - direct).abs() < 1e-9 * (1.0 + direct.abs()),
            "n={} w={}: {} vs {}", n, workers, combined, direct
        );
        // And the assembled point is exactly the original.
        prop_assert_eq!(d.assemble(&coords, &blocks), x.to_vec());
    }

    /// Partitions cover [0, n) exactly once.
    #[test]
    fn partition_covers_exactly(workers in 1usize..9, extra in 0usize..50) {
        let n = workers * 2 + (workers - 1) + extra;
        let p = Partition::even(n, workers);
        let mut seen = vec![0u8; n];
        for r in &p.blocks {
            for i in r.clone() {
                seen[i] += 1;
            }
        }
        for &c in &p.coordinators {
            seen[c] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        prop_assert_eq!(p.manager_dim(), workers - 1);
    }

    /// For any seed the optimizer keeps its population in bounds and its
    /// best value never degrades.
    #[test]
    fn complex_box_invariants(seed in any::<u64>(), dim in 2usize..8) {
        let p = Sphere::new(dim);
        let mut opt = ComplexBox::new(
            &p,
            ComplexBoxConfig {
                seed,
                ..ComplexBoxConfig::default()
            },
        );
        let bounds = p.bounds();
        let mut last = opt.best().1;
        for _ in 0..60 {
            opt.step();
            let (bp, bv) = opt.best();
            prop_assert!(bounds.contains(bp));
            prop_assert!(bv <= last + 1e-12);
            last = bv;
        }
    }

    /// Checkpoint state round-trips for any progress point.
    #[test]
    fn state_round_trip(seed in any::<u64>(), iters in 0u64..120) {
        let p = Sphere::new(3);
        let mut opt = ComplexBox::new(
            &p,
            ComplexBoxConfig {
                seed,
                ..ComplexBoxConfig::default()
            },
        );
        opt.run(iters);
        let state = opt.state();
        let bytes = cdr::to_bytes(&state);
        let back: optim::ComplexState = cdr::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&state, &back);
        let resumed = ComplexBox::from_state(&p, ComplexBoxConfig::default(), back);
        prop_assert_eq!(resumed.iterations(), iters);
        prop_assert!((resumed.best().1 - opt.best().1).abs() < 1e-12);
    }

    /// Protocol types round-trip for arbitrary contents.
    #[test]
    fn protocol_round_trips(
        problem_id in any::<u32>(),
        dim in 1u32..64,
        left in proptest::option::of(-2.0f64..2.0),
        right in proptest::option::of(-2.0f64..2.0),
        iters in any::<u64>(),
        seed in any::<u64>(),
        reset in any::<bool>(),
        point in proptest::collection::vec(-2.0f64..2.0, 0..32),
    ) {
        let spec = SolveSpec { problem_id, dim, left, right, iters, seed, reset };
        let back: SolveSpec = cdr::from_bytes(&cdr::to_bytes(&spec)).unwrap();
        prop_assert_eq!(spec, back);
        let res = SolveResult {
            best_value: 1.5,
            best_point: point,
            iterations: iters,
            evals: seed,
        };
        let back: SolveResult = cdr::from_bytes(&cdr::to_bytes(&res)).unwrap();
        prop_assert_eq!(res, back);
    }
}

//! Replication protocol surface: the replica-to-replica operation names
//! and the store configuration.
//!
//! Client-facing operations are exactly the `CheckpointService` ones
//! ([`ftproxy::service::ops`]); a [`crate::StoreReplica`] answers both.
//! The `repl_*` operations below are only ever sent replica-to-replica:
//! they apply a record locally and never fan out further, so replication
//! cannot loop.

use simnet::SimDuration;

use ftproxy::StoreCosts;

/// Replica-to-replica operation names.
///
/// The three `repl_*` *write* ops share one wire shape:
/// `(unsigned long long view_revision, sequence<octet> body)` — the
/// naming group's membership revision the coordinator acted on, then the
/// original client request body. A replica that has witnessed a newer
/// revision rejects the write with `TRANSIENT`, so a coordinator still on
/// a pre-partition-heal view cannot assemble a quorum.
pub mod ops {
    /// `void repl_store(in ViewStamped s)` — body is
    /// `(in Checkpoint c)`; apply a bulk record locally.
    pub const REPL_STORE: &str = "repl_store";
    /// `void repl_store_value(in ViewStamped s)` — body is
    /// `(in string id, in string key, in any v)`.
    pub const REPL_STORE_VALUE: &str = "repl_store_value";
    /// `boolean repl_delete(in ViewStamped s)` — body is
    /// `(in string id)`; apply a delete locally.
    pub const REPL_DELETE: &str = "repl_delete";
    /// `(boolean, Checkpoint) repl_get(in string id)` — local newest
    /// epoch, for quorum reads and anti-entropy tooling.
    pub const REPL_GET: &str = "repl_get";
    /// `(ulonglong, ulonglong) gc()` — compact now: keep only the newest
    /// epoch per object and drop superseded chunks. Returns
    /// `(epochs_dropped, chunks_dropped)`.
    pub const GC: &str = "gc";
    /// `(ulonglong, ulonglong, ulonglong) store_status()` — objects,
    /// retained epochs, values held locally (introspection for tests and
    /// tools).
    pub const STORE_STATUS: &str = "store_status";
}

/// Configuration one replica (and the deployment helper) runs with.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Write quorum W: a coordinated write succeeds once `W_eff` replicas
    /// (counting the coordinator) acked, where `W_eff = min(W, view)` and
    /// the view is the set of replicas currently bound in the naming
    /// group. `usize::MAX` (the default) means "every replica in the
    /// view" — reads can then be served locally by any live replica.
    pub write_quorum: usize,
    /// Epochs retained per object id (K). Older bulk epochs are trimmed
    /// on write; per-value chunks more than K-1 epochs behind the newest
    /// header are reclaimed.
    pub retain_epochs: usize,
    /// Reply deadline for one replica-to-replica replication RPC. Bounds
    /// how long a write blocks on a dead peer before the quorum check.
    pub repl_timeout: SimDuration,
    /// How long a fetched membership view stays fresh before the
    /// coordinator re-reads the group from the naming service.
    pub view_ttl: SimDuration,
    /// Probe period of the store-side failure detector.
    pub detector_period: SimDuration,
    /// Consecutive failed probes before the detector evicts a replica.
    pub suspect_after: u32,
    /// CPU cost model of one replica (same knobs as the paper's single
    /// store).
    pub costs: StoreCosts,
    /// When set, replicas publish view changes and quorum-write outcomes
    /// to the monitoring event channel whose IOR appears in this cell.
    pub monitor: Option<simnet::Shared<Option<String>>>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            write_quorum: usize::MAX,
            retain_epochs: 2,
            repl_timeout: SimDuration::from_millis(300),
            view_ttl: SimDuration::from_millis(100),
            detector_period: SimDuration::from_millis(250),
            suspect_after: 2,
            costs: StoreCosts::default(),
            monitor: None,
        }
    }
}

impl StoreConfig {
    /// Set the write quorum.
    pub fn with_write_quorum(mut self, w: usize) -> Self {
        self.write_quorum = w.max(1);
        self
    }

    /// Set the number of retained epochs per object.
    pub fn with_retain_epochs(mut self, k: usize) -> Self {
        self.retain_epochs = k.max(1);
        self
    }

    /// Set the replica-to-replica replication RPC deadline.
    pub fn with_repl_timeout(mut self, t: SimDuration) -> Self {
        self.repl_timeout = t;
        self
    }
}

//! Anti-entropy / operations client for a store replica.
//!
//! Replicas talk to each other with `oneway` pushes inside the write
//! path; this is the *synchronous* side — the surface quorum-read
//! tooling and operators use (`repl_get`, `gc`, `store_status` in
//! `idl/store.idl`). Tests and the deployment doctor drive it instead of
//! hand-rolling `orb.invoke` calls per op.

use ftproxy::Checkpoint;
use orb::{Exception, ObjectRef, Orb};
use simnet::{Ctx, SimResult};

use crate::protocol::ops;

/// A typed handle on one replica's maintenance interface.
pub struct ReplicaAdmin {
    obj: ObjectRef,
}

impl ReplicaAdmin {
    /// Wrap a replica reference.
    pub fn new(obj: ObjectRef) -> Self {
        ReplicaAdmin { obj }
    }

    /// This replica's newest local epoch for `object_id` —
    /// `(found, checkpoint)`; the checkpoint is a zeroed placeholder when
    /// `found` is false. Reads *local* state only (no quorum), which is
    /// exactly what anti-entropy comparison wants.
    pub fn repl_get(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        object_id: &str,
    ) -> SimResult<Result<(bool, Checkpoint), Exception>> {
        self.obj.call(orb, ctx, ops::REPL_GET, &(object_id,))
    }

    /// Compact now: keep only the newest epoch per object. Returns
    /// `(epochs_dropped, chunks_dropped)`.
    pub fn gc(&self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Result<(u64, u64), Exception>> {
        self.obj.call(orb, ctx, ops::GC, &())
    }

    /// `(objects, retained epochs, values)` held locally.
    pub fn store_status(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
    ) -> SimResult<Result<(u64, u64, u64), Exception>> {
        self.obj.call(orb, ctx, ops::STORE_STATUS, &())
    }
}

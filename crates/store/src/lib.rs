//! # ldft-store — the replicated, GC'd checkpoint store
//!
//! The paper's whole fault-tolerance story hangs off a checkpoint service
//! it admits is "an unoptimized in-memory map": one CORBA object on one
//! host. The component that makes workers survive crashes is itself a
//! single point of failure — an FT proxy that loses its store loses every
//! epoch it ever saved. This crate removes that single point of failure:
//!
//! * [`StoreReplica`] — a `CheckpointService`-compatible servant that
//!   **replicates** every write to its peer replicas with quorum
//!   acknowledgement before reporting success, keeps checkpoints
//!   **epoch-versioned** (retaining the last K epochs per object), and
//!   **garbage-collects** superseded per-value chunks.
//! * [`spawn_replicated_store`] — deploys N replicas on distinct simnet
//!   hosts, all bound as members of the *same* naming-service group name
//!   (`"CheckpointService"`) — the paper's own multi-binding `resolve`
//!   trick, reused for the store — plus a replica-side failure detector
//!   (reusing [`ftproxy::run_detector_obs`]) that evicts dead replicas so
//!   the next `resolve` already avoids them.
//! * [`chaos`] — a deterministic fault-injection harness: a seeded
//!   schedule of replica crashes / restarts / link partitions, precomputed
//!   as a [`ChaosPlan`] and applied via `Kernel::schedule_fault`, that
//!   never takes more replicas down than the quorum can lose.
//!
//! Coordination is **leaderless**: whichever replica a client's `resolve`
//! picked coordinates that write, applying locally and fanning out to the
//! peers currently bound in the group (the *view*). Quorums are evaluated
//! against the view — detector eviction is a view change — so a surviving
//! replica keeps accepting writes instead of deadlocking on dead peers
//! (cf. Dwork/Halpern/Waarts: recovery cost, not crash count, dominates
//! useful work). See DESIGN.md §9 for the protocol rules.

pub mod admin;
pub mod chaos;
pub mod deploy;
pub mod protocol;
pub mod replica;

pub use admin::ReplicaAdmin;
pub use chaos::{ChaosConfig, ChaosPlan};
pub use deploy::{spawn_replicated_store, StoreDeployment};
pub use protocol::{ops, StoreConfig};
pub use replica::{run_store_replica, StoreReplica};

#[cfg(test)]
mod store_tests;

//! Tests for the replicated store: local GC/retention rules, the chaos
//! plan generator, and end-to-end replication + failover on the simulated
//! cluster.

use std::sync::{Arc, Mutex};

use cdr::{Any, Epoch, TypeCode, Value};
use cosnaming::{LbMode, Name, NamingClient};
use ftproxy::{Checkpoint, CheckpointClient, CHECKPOINT_SERVICE_NAME};
use orb::{Exception, Orb, SysKind, SystemException};
use simnet::{Fault, HostConfig, HostId, Kernel, SimDuration, SimTime};

use crate::chaos::{ChaosConfig, ChaosPlan};
use crate::deploy::spawn_replicated_store;
use crate::protocol::StoreConfig;
use crate::replica::StoreReplica;

type Cell<T> = Arc<Mutex<T>>;

fn cell<T: Default>() -> Cell<T> {
    Arc::new(Mutex::new(T::default()))
}

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

fn ckpt(id: &str, epoch: u64, state: &[u8]) -> Checkpoint {
    Checkpoint {
        object_id: id.to_string(),
        epoch: Epoch(epoch),
        state: state.to_vec(),
        stamp_ns: 0,
    }
}

fn header_any(epoch: u64) -> Any {
    Any {
        tc: TypeCode::Struct {
            name: "CkptHeader".into(),
            members: vec![
                ("len".into(), TypeCode::ULongLong),
                ("epoch".into(), TypeCode::ULongLong),
                ("chunk".into(), TypeCode::ULongLong),
            ],
        },
        value: Value::Struct(vec![
            Value::ULongLong(8),
            Value::ULongLong(epoch),
            Value::ULongLong(4),
        ]),
    }
}

fn chunk_any(epoch: u64) -> Any {
    Any {
        tc: TypeCode::Struct {
            name: "CkptChunk".into(),
            members: vec![
                ("epoch".into(), TypeCode::ULongLong),
                ("data".into(), TypeCode::Sequence(Box::new(TypeCode::Octet))),
            ],
        },
        value: Value::Struct(vec![
            Value::ULongLong(epoch),
            Value::Sequence(vec![Value::Octet(1), Value::Octet(2)]),
        ]),
    }
}

// ---------------------------------------------------------------------
// Local state rules (no kernel)
// ---------------------------------------------------------------------

#[test]
fn retention_trims_old_bulk_epochs() {
    let mut r = StoreReplica::new(StoreConfig::default().with_retain_epochs(2), HostId(0));
    for e in 1..=4 {
        r.apply_bulk(ckpt("obj", e, b"state"));
    }
    let newest = r.local_newest("obj").unwrap();
    assert_eq!(newest.epoch, Epoch(4));
    let (objects, epochs, _) = r.status();
    assert_eq!((objects, epochs), (1, 2), "retain K=2 epochs");
    assert_eq!(r.gc_epochs, 2, "epochs 1 and 2 trimmed");
}

#[test]
fn header_write_reclaims_superseded_chunks() {
    let mut r = StoreReplica::new(StoreConfig::default().with_retain_epochs(2), HostId(0));
    // Chunks of epochs 1 and 2, then a header advancing to epoch 3:
    // the retention floor becomes 3 - (2-1) = 2, so epoch-1 chunks go.
    r.apply_value("obj", "w0", chunk_any(1));
    r.apply_value("obj", "w1", chunk_any(2));
    let dropped = r.apply_value("obj", "header", header_any(3));
    assert_eq!(dropped, 1, "only the epoch-1 chunk falls out");
    let (_, _, values) = r.status();
    assert_eq!(values, 2, "header + epoch-2 chunk survive");
    assert_eq!(r.gc_chunks, 1);
}

#[test]
fn compact_keeps_only_newest_epoch_and_chunks() {
    let mut r = StoreReplica::new(StoreConfig::default().with_retain_epochs(8), HostId(0));
    for e in 1..=3 {
        r.apply_bulk(ckpt("obj", e, b"state"));
    }
    r.apply_value("obj", "w0", chunk_any(2));
    r.apply_value("obj", "w1", chunk_any(3));
    r.apply_value("obj", "header", header_any(3));
    let (epochs_dropped, chunks_dropped) = r.compact();
    assert_eq!(epochs_dropped, 2, "bulk epochs 1 and 2 dropped");
    assert_eq!(chunks_dropped, 1, "epoch-2 chunk dropped");
    let (objects, epochs, values) = r.status();
    assert_eq!((objects, epochs, values), (1, 1, 2));
    assert_eq!(r.local_newest("obj").unwrap().epoch, Epoch(3));
}

#[test]
fn delete_removes_both_stores() {
    let mut r = StoreReplica::new(StoreConfig::default(), HostId(0));
    r.apply_bulk(ckpt("obj", 1, b"s"));
    r.apply_value("obj", "header", header_any(1));
    assert!(r.apply_delete("obj"));
    assert!(!r.apply_delete("obj"), "second delete finds nothing");
    assert_eq!(r.status(), (0, 0, 0));
}

// ---------------------------------------------------------------------
// Chaos plan generator
// ---------------------------------------------------------------------

#[test]
fn chaos_plan_is_deterministic_in_the_seed() {
    let targets = [HostId(1), HostId(2), HostId(3)];
    let cfg = ChaosConfig::default();
    let a = ChaosPlan::generate(&cfg, &targets);
    let b = ChaosPlan::generate(&cfg, &targets);
    assert_eq!(a.events, b.events, "same seed, same plan");
    assert!(a.crashes() > 0, "the default window injects something");
    let c = ChaosPlan::generate(&ChaosConfig { seed: 99, ..cfg }, &targets);
    assert_ne!(a.events, c.events, "different seed, different plan");
}

#[test]
fn chaos_plan_respects_max_concurrent_down() {
    let targets = [HostId(1), HostId(2), HostId(3), HostId(4)];
    let cfg = ChaosConfig {
        seed: 11,
        start: SimTime::from_nanos(0),
        end: SimTime::from_nanos(120_000_000_000),
        mean_interval: SimDuration::from_millis(400),
        restart_after: Some(SimDuration::from_secs(2)),
        max_concurrent_down: 2,
        ..ChaosConfig::default()
    };
    let plan = ChaosPlan::generate(&cfg, &targets);
    assert!(plan.crashes() >= 10, "dense schedule: {}", plan.crashes());
    let mut down: Vec<HostId> = Vec::new();
    for e in &plan.events {
        match e.fault {
            Fault::CrashHost(h) => {
                assert!(!down.contains(&h), "host crashed while already down");
                down.push(h);
                assert!(
                    down.len() <= 2,
                    "more than max_concurrent_down at {:?}",
                    e.at
                );
            }
            Fault::RestartHost(h) => down.retain(|&d| d != h),
            _ => {}
        }
    }
}

#[test]
fn chaos_without_restart_crashes_each_host_at_most_once() {
    let targets = [HostId(1), HostId(2), HostId(3)];
    let cfg = ChaosConfig {
        seed: 3,
        restart_after: None,
        max_concurrent_down: 3,
        end: SimTime::from_nanos(300_000_000_000),
        mean_interval: SimDuration::from_secs(1),
        ..ChaosConfig::default()
    };
    let plan = ChaosPlan::generate(&cfg, &targets);
    let mut crashed: Vec<HostId> = Vec::new();
    for e in &plan.events {
        match e.fault {
            Fault::CrashHost(h) => {
                assert!(!crashed.contains(&h));
                crashed.push(h);
            }
            Fault::RestartHost(_) => panic!("no restarts without restart_after"),
            _ => {}
        }
    }
    assert_eq!(crashed.len(), 3, "eventually every target dies");
}

#[test]
fn minimize_shrinks_a_failing_schedule_to_one_episode() {
    // A dense multi-family schedule; the "failure" reproduces whenever
    // host 2 crashes at all — so the minimal reproducer is one
    // crash/restart episode. ddmin must find it and nothing more.
    let targets = [HostId(1), HostId(2), HostId(3), HostId(4)];
    let cfg = ChaosConfig {
        seed: 5,
        start: SimTime::from_nanos(0),
        end: SimTime::from_nanos(60_000_000_000),
        mean_interval: SimDuration::from_millis(500),
        restart_after: Some(SimDuration::from_secs(1)),
        max_concurrent_down: 3,
        partition_prob: 0.15,
        group_partition_prob: 0.15,
        oneway_prob: 0.15,
        degrade_prob: 0.1,
        flap_prob: 0.1,
        skew_prob: 0.1,
        ..ChaosConfig::default()
    };
    let plan = ChaosPlan::generate(&cfg, &targets);
    assert!(
        plan.episodes.len() > 20,
        "need a dense schedule to shrink: {}",
        plan.episodes.len()
    );
    let fails = |p: &ChaosPlan| {
        p.events
            .iter()
            .any(|e| matches!(e.fault, Fault::CrashHost(HostId(2))))
    };
    assert!(fails(&plan), "seeded schedule reproduces the failure");
    let small = plan.minimize(fails);
    assert!(fails(&small), "minimization must preserve the failure");
    assert_eq!(small.episodes.len(), 1, "one episode suffices");
    assert!(
        small.events.len() <= 3,
        "shrunk to {} events: {:?}",
        small.events.len(),
        small.events
    );
    // The shrunken schedule is still well-formed: the crash still heals.
    assert!(small
        .events
        .iter()
        .any(|e| matches!(e.fault, Fault::RestartHost(HostId(2)))));
}

// ---------------------------------------------------------------------
// End-to-end replication on the simulated cluster
// ---------------------------------------------------------------------

/// Boot naming on `h0` and N store replicas on the remaining hosts.
fn store_bed(sim: &mut Kernel, n_replicas: usize, cfg: StoreConfig) -> Vec<HostId> {
    let hosts: Vec<_> = (0..=n_replicas)
        .map(|i| sim.add_host(HostConfig::new(format!("sh{i}"))))
        .collect();
    let h0 = hosts[0];
    sim.spawn(h0, "naming", move |ctx| {
        let _ = cosnaming::run_naming_service(ctx, LbMode::Plain);
    });
    spawn_replicated_store(sim, &hosts[1..], h0, cfg, None);
    hosts
}

/// Resolve a `CheckpointClient` against the store group (driver side).
fn resolve_store(orb: &mut Orb, ctx: &mut simnet::Ctx, naming_host: HostId) -> CheckpointClient {
    let ns = NamingClient::root(naming_host);
    loop {
        match ns
            .resolve(orb, ctx, &Name::simple(CHECKPOINT_SERVICE_NAME))
            .unwrap()
        {
            Ok(obj) => return CheckpointClient::new(obj),
            Err(_) => ctx.sleep(secs(0.05)).unwrap(),
        }
    }
}

#[test]
fn replicated_store_survives_primary_replica_crash() {
    let mut sim = Kernel::with_seed(21);
    let hosts = store_bed(&mut sim, 3, StoreConfig::default());
    let h0 = hosts[0];
    let out = cell::<Option<(Epoch, Vec<u8>)>>();
    let o = out.clone();
    let driver = sim.spawn(h0, "driver", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let client = resolve_store(&mut orb, ctx, h0);
        client
            .store(&mut orb, ctx, &ckpt("obj", 7, b"payload"))
            .unwrap()
            .unwrap();
        // Kill whichever replica we were talking to: the record must
        // survive on the backups.
        let primary = client.obj.ior.host;
        ctx.crash_host(primary).unwrap();
        // Give the detector time to evict the corpse from the group.
        ctx.sleep(secs(2.0)).unwrap();
        let client = resolve_store(&mut orb, ctx, h0);
        assert_ne!(client.obj.ior.host, primary, "failover left the corpse");
        let got = client.retrieve(&mut orb, ctx, "obj").unwrap().unwrap();
        let c = got.expect("backup replica must hold the record");
        *o.lock().unwrap() = Some((c.epoch, c.state));
    });
    sim.run_until_exit(driver);
    let (epoch, state) = out.lock().unwrap().clone().unwrap();
    assert_eq!(epoch, Epoch(7));
    assert_eq!(state, b"payload");
}

#[test]
fn single_replica_store_loses_data_on_crash() {
    let mut sim = Kernel::with_seed(21);
    let hosts = store_bed(&mut sim, 1, StoreConfig::default());
    let h0 = hosts[0];
    let failed = cell::<bool>();
    let f = failed.clone();
    let driver = sim.spawn(h0, "driver", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let client = resolve_store(&mut orb, ctx, h0);
        client
            .store(&mut orb, ctx, &ckpt("obj", 7, b"payload"))
            .unwrap()
            .unwrap();
        ctx.crash_host(client.obj.ior.host).unwrap();
        ctx.sleep(secs(2.0)).unwrap();
        // The paper's deployment: one store, nothing to fail over to.
        let r = client.retrieve(&mut orb, ctx, "obj").unwrap();
        *f.lock().unwrap() = matches!(
            r,
            Err(Exception::System(SystemException {
                kind: SysKind::CommFailure,
                ..
            }))
        );
    });
    sim.run_until_exit(driver);
    assert!(
        *failed.lock().unwrap(),
        "a single-replica store must fail once its host dies"
    );
}

#[test]
fn write_replicates_to_every_view_member() {
    let mut sim = Kernel::with_seed(5);
    let hosts = store_bed(&mut sim, 3, StoreConfig::default());
    let h0 = hosts[0];
    let counts = cell::<Vec<(u64, u64, u64)>>();
    let c = counts.clone();
    let driver = sim.spawn(h0, "driver", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let client = resolve_store(&mut orb, ctx, h0);
        client
            .store(&mut orb, ctx, &ckpt("a", 1, b"x"))
            .unwrap()
            .unwrap();
        client
            .store_value(&mut orb, ctx, "a", "header", &header_any(1))
            .unwrap()
            .unwrap();
        // Ask every group member directly for its local status.
        let ns = NamingClient::root(h0);
        let members = ns
            .group_members(&mut orb, ctx, &Name::simple(CHECKPOINT_SERVICE_NAME))
            .unwrap()
            .unwrap();
        assert_eq!(members.len(), 3);
        for m in members {
            let admin = crate::admin::ReplicaAdmin::new(orb::ObjectRef::new(m));
            let status = admin.store_status(&mut orb, ctx).unwrap().unwrap();
            c.lock().unwrap().push(status);
        }
    });
    sim.run_until_exit(driver);
    let counts = counts.lock().unwrap().clone();
    assert_eq!(
        counts,
        vec![(1, 1, 1); 3],
        "every replica holds the bulk record and the value"
    );
}

#[test]
fn unreachable_quorum_fails_the_write() {
    // Two replicas, strict W=2, detector disabled by a long period: crash
    // the backup and write before any eviction can shrink the view.
    let cfg = StoreConfig::default()
        .with_write_quorum(2)
        .with_repl_timeout(SimDuration::from_millis(200));
    let mut sim = Kernel::with_seed(9);
    let mut hosts = Vec::new();
    for i in 0..3 {
        hosts.push(sim.add_host(HostConfig::new(format!("sh{i}"))));
    }
    let h0 = hosts[0];
    sim.spawn(h0, "naming", move |ctx| {
        let _ = cosnaming::run_naming_service(ctx, LbMode::Plain);
    });
    // Replicas only — no detector, so the view keeps both members.
    for (i, &h) in hosts[1..].iter().enumerate() {
        let cfg = cfg.clone();
        sim.spawn(h, format!("store-replica-{i}"), move |ctx| {
            let _ = crate::replica::run_store_replica(ctx, h0, cfg, None);
        });
    }
    let out = cell::<Option<bool>>();
    let o = out.clone();
    let driver = sim.spawn(h0, "driver", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let client = resolve_store(&mut orb, ctx, h0);
        let coordinator = client.obj.ior.host;
        let peer = if coordinator == hosts[1] {
            hosts[2]
        } else {
            hosts[1]
        };
        ctx.crash_host(peer).unwrap();
        let r = client.store(&mut orb, ctx, &ckpt("obj", 1, b"x")).unwrap();
        *o.lock().unwrap() = Some(matches!(
            r,
            Err(Exception::System(SystemException {
                kind: SysKind::Transient,
                ..
            }))
        ));
    });
    sim.run_until_exit(driver);
    assert_eq!(
        *out.lock().unwrap(),
        Some(true),
        "W=2 with one dead peer must raise TRANSIENT"
    );
}

#[test]
fn replicated_runs_are_deterministic() {
    fn run(seed: u64) -> (Epoch, Vec<u8>) {
        let mut sim = Kernel::with_seed(seed);
        let hosts = store_bed(&mut sim, 3, StoreConfig::default());
        let h0 = hosts[0];
        let out = cell::<Option<(Epoch, Vec<u8>)>>();
        let o = out.clone();
        let driver = sim.spawn(h0, "driver", move |ctx| {
            ctx.sleep(secs(1.0)).unwrap();
            let mut orb = Orb::init(ctx);
            let client = resolve_store(&mut orb, ctx, h0);
            for e in 1..=4u64 {
                client
                    .store(&mut orb, ctx, &ckpt("obj", e, format!("s{e}").as_bytes()))
                    .unwrap()
                    .unwrap();
            }
            let primary = client.obj.ior.host;
            ctx.crash_host(primary).unwrap();
            ctx.sleep(secs(2.0)).unwrap();
            let client = resolve_store(&mut orb, ctx, h0);
            let c = client
                .retrieve(&mut orb, ctx, "obj")
                .unwrap()
                .unwrap()
                .unwrap();
            *o.lock().unwrap() = Some((c.epoch, c.state));
        });
        sim.run_until_exit(driver);
        let got = out.lock().unwrap().clone().unwrap();
        got
    }
    let a = run(33);
    let b = run(33);
    assert_eq!(a, b, "same seed, same failover outcome");
    assert_eq!(a.0, Epoch(4), "newest acked epoch survives the crash");
}

#[test]
fn partition_heal_keeps_a_single_linear_epoch_history() {
    // Five replicas; cut {s1, s2} plus a minority-side client away from
    // naming and the majority, write on BOTH sides, then heal. The
    // minority coordinator cannot confirm a membership view, so its
    // write must fail cleanly — no divergent epoch left behind — and
    // after the heal every replica's newest record lies on the single
    // acked chain (a stale prefix on the evicted minority is fine;
    // a branch is not).
    let mut sim = Kernel::with_seed(17);
    let hosts = store_bed(&mut sim, 5, StoreConfig::default());
    let h0 = hosts[0];
    let (s1, s2) = (hosts[1], hosts[2]);
    let ha = sim.add_host(HostConfig::new("client-minority"));
    let hb = sim.add_host(HostConfig::new("client-majority"));
    sim.schedule_fault(
        SimTime::from_nanos(2_000_000_000),
        Fault::PartitionGroup {
            side: vec![s1, s2, ha],
            blocked: true,
        },
    );
    sim.schedule_fault(
        SimTime::from_nanos(8_000_000_000),
        Fault::PartitionGroup {
            side: vec![s1, s2, ha],
            blocked: false,
        },
    );

    let minority_write_failed = cell::<Option<bool>>();
    let majority_acked = cell::<Option<bool>>();
    let sweep = cell::<Vec<(HostId, bool, u64, Vec<u8>)>>();

    let ma = majority_acked.clone();
    sim.spawn(hb, "majority-client", move |ctx| {
        // Mid-partition: the detector has evicted the minority replicas
        // by now, so the shrunken view still reaches quorum.
        ctx.sleep(secs(4.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let mut attempts = 0u32;
        loop {
            let client = resolve_store(&mut orb, ctx, h0);
            match client
                .store(&mut orb, ctx, &ckpt("obj", 10, b"majority"))
                .unwrap()
            {
                Ok(()) => break,
                Err(_) => {
                    attempts += 1;
                    assert!(attempts < 100, "majority write wedged during partition");
                    ctx.sleep(secs(0.1)).unwrap();
                }
            }
        }
        *ma.lock().unwrap() = Some(true);
    });

    let f = minority_write_failed.clone();
    let sw = sweep.clone();
    let driver_a = sim.spawn(ha, "minority-client", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(h0);
        let members = ns
            .group_members(&mut orb, ctx, &Name::simple(CHECKPOINT_SERVICE_NAME))
            .unwrap()
            .unwrap();
        assert_eq!(members.len(), 5, "all replicas registered before the cut");
        // Talk to the replica on s1 directly — our side of the cut.
        let m = members.iter().find(|m| m.host == s1).unwrap().clone();
        let client = CheckpointClient::new(orb::ObjectRef::new(m));
        client
            .store(&mut orb, ctx, &ckpt("obj", 5, b"pre"))
            .unwrap()
            .unwrap();
        // t ≈ 3 s: inside the partition, past the coordinator's view TTL.
        // The coordinator cannot reach naming, must not coordinate solo.
        ctx.sleep(secs(2.0)).unwrap();
        let r = client
            .store(&mut orb, ctx, &ckpt("obj", 6, b"split-brain"))
            .unwrap();
        *f.lock().unwrap() = Some(r.is_err());
        // Past the heal: write through the (shrunken) group, then audit
        // every original replica's newest record.
        ctx.sleep(secs(5.0)).unwrap();
        let mut attempts = 0u32;
        loop {
            let client = resolve_store(&mut orb, ctx, h0);
            match client
                .store(&mut orb, ctx, &ckpt("obj", 11, b"post"))
                .unwrap()
            {
                Ok(()) => break,
                Err(_) => {
                    attempts += 1;
                    assert!(attempts < 100, "post-heal write wedged");
                    ctx.sleep(secs(0.1)).unwrap();
                }
            }
        }
        for m in &members {
            let admin = crate::admin::ReplicaAdmin::new(orb::ObjectRef::new(m.clone()));
            let (found, c) = admin.repl_get(&mut orb, ctx, "obj").unwrap().unwrap();
            sw.lock()
                .unwrap()
                .push((m.host, found, c.epoch.get(), c.state));
        }
    });
    sim.run_until_exit(driver_a);

    assert_eq!(
        *minority_write_failed.lock().unwrap(),
        Some(true),
        "a coordinator that cannot confirm the view must not ack"
    );
    assert_eq!(*majority_acked.lock().unwrap(), Some(true));
    let sweep = sweep.lock().unwrap().clone();
    assert_eq!(sweep.len(), 5);
    for (host, found, epoch, state) in sweep {
        assert!(found, "replica on {host:?} lost the object");
        if host == s1 || host == s2 {
            assert_eq!(
                (epoch, state.as_slice()),
                (5, &b"pre"[..]),
                "minority replica on {host:?} holds an epoch off the acked chain"
            );
        } else {
            assert_eq!(
                (epoch, state.as_slice()),
                (11, &b"post"[..]),
                "majority replica on {host:?} missed the post-heal chain"
            );
        }
    }
}

#[test]
fn admin_client_reads_and_compacts_over_the_wire() {
    // Drive the maintenance surface (`repl_get`, `gc`, `store_status` in
    // idl/store.idl) through the typed ReplicaAdmin client against every
    // group member: each replica reports the replicated newest epoch,
    // compacts its superseded epochs, and shows the shrunken status.
    let mut sim = Kernel::with_seed(5);
    let hosts = store_bed(&mut sim, 2, StoreConfig::default().with_retain_epochs(4));
    let h0 = hosts[0];
    let out = cell::<Vec<(bool, u64, u64, u64)>>();
    let o = out.clone();
    let driver = sim.spawn(h0, "driver", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let client = resolve_store(&mut orb, ctx, h0);
        for e in 1..=3u64 {
            client
                .store(&mut orb, ctx, &ckpt("obj", e, b"s"))
                .unwrap()
                .unwrap();
        }
        let ns = NamingClient::root(h0);
        let members = ns
            .group_members(&mut orb, ctx, &Name::simple(CHECKPOINT_SERVICE_NAME))
            .unwrap()
            .unwrap();
        assert_eq!(members.len(), 2);
        for m in members {
            let admin = crate::admin::ReplicaAdmin::new(orb::ObjectRef::new(m));
            let (found, c) = admin.repl_get(&mut orb, ctx, "obj").unwrap().unwrap();
            assert!(found, "every replica holds the replicated record");
            let (epochs_dropped, _chunks) = admin.gc(&mut orb, ctx).unwrap().unwrap();
            let (_objects, epochs_left, _values) =
                admin.store_status(&mut orb, ctx).unwrap().unwrap();
            o.lock()
                .unwrap()
                .push((found, c.epoch.get(), epochs_dropped, epochs_left));
        }
    });
    sim.run_until_exit(driver);
    assert_eq!(
        *out.lock().unwrap(),
        vec![(true, 3, 2, 1); 2],
        "both replicas: newest epoch 3 visible, gc drops 2, one epoch left"
    );
}

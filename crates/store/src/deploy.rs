//! Deployment helper: spawn N store replicas on distinct hosts, all
//! bound into the single `"CheckpointService"` naming group, plus (when
//! replicated) a store-side failure detector that evicts dead replicas.

use cosnaming::Name;
use ftproxy::{DetectorConfig, DetectorStats, CHECKPOINT_SERVICE_NAME};
use simnet::{HostId, Kernel, Shared};

use crate::protocol::StoreConfig;
use crate::replica::run_store_replica;

/// What [`spawn_replicated_store`] set up.
pub struct StoreDeployment {
    /// The hosts carrying one replica each.
    pub hosts: Vec<HostId>,
    /// Stats of the store-side failure detector, or `None` when the
    /// deployment is single-replica (nothing to fail over to, so no
    /// detector is spawned and the legacy lazy detection applies).
    pub detector_stats: Option<Shared<DetectorStats>>,
}

/// Spawn one [`crate::StoreReplica`] process per host in `hosts`, each
/// joining the `"CheckpointService"` naming group on `naming_host`, and —
/// when there is more than one replica — a failure-detector process on
/// `naming_host` that probes the group and evicts replicas that stop
/// answering. Clients resolve the *group name* exactly as they would the
/// paper's single store; which replica they get is the naming service's
/// choice, and failover is a re-resolve.
pub fn spawn_replicated_store(
    kernel: &mut Kernel,
    hosts: &[HostId],
    naming_host: HostId,
    cfg: StoreConfig,
    sink: Option<obs::Obs>,
) -> StoreDeployment {
    for (i, &h) in hosts.iter().enumerate() {
        let cfg = cfg.clone();
        let sink = sink.clone();
        kernel.spawn(h, format!("store-replica-{i}"), move |ctx| {
            let _ = run_store_replica(ctx, naming_host, cfg, sink);
        });
    }
    let detector_stats = if hosts.len() > 1 {
        let stats = Shared::new(DetectorStats::default());
        let det_stats = stats.clone();
        let det_sink = sink;
        let det_cfg = DetectorConfig {
            groups: vec![Name::simple(CHECKPOINT_SERVICE_NAME)],
            period: cfg.detector_period,
            suspect_after: cfg.suspect_after,
        };
        kernel.spawn(naming_host, "store-detector", move |ctx| {
            let _ = ftproxy::run_detector_obs(ctx, naming_host, det_cfg, det_stats, det_sink);
        });
        Some(stats)
    } else {
        None
    };
    StoreDeployment {
        hosts: hosts.to_vec(),
        detector_stats,
    }
}

//! Deterministic fault-injection harness for the replicated store.
//!
//! A [`ChaosPlan`] is a *precomputed*, seeded schedule of host crashes,
//! restarts, and link partitions — generated before the simulation runs
//! and applied via `Kernel::schedule_fault`, so the same seed always
//! yields the same fault timeline regardless of what the workload does.
//! The generator never takes more replicas down concurrently than
//! `max_concurrent_down` allows, so a plan can be tuned to stay within
//! (or deliberately exceed) what the write quorum tolerates.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::{Fault, HostId, Kernel, SimDuration, SimTime};

/// Tuning for [`ChaosPlan::generate`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed of the fault schedule (independent of the kernel seed).
    pub seed: u64,
    /// Faults are injected from this time on.
    pub start: SimTime,
    /// No fault is injected at or after this time.
    pub end: SimTime,
    /// Mean time between consecutive fault injections; actual gaps are
    /// drawn uniformly from `[0.5, 1.5) ×` this.
    pub mean_interval: SimDuration,
    /// Crashed hosts come back after this long. `None` means crashes are
    /// permanent (and each host is crashed at most once).
    pub restart_after: Option<SimDuration>,
    /// Upper bound on replicas down at the same instant.
    pub max_concurrent_down: usize,
    /// Probability that an injection is a transient link partition (both
    /// hosts stay up) instead of a crash. Partitions require
    /// `restart_after` (which doubles as the heal delay) and at least two
    /// targets; otherwise this is ignored.
    pub partition_prob: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            start: SimTime::from_nanos(1_000_000_000),
            end: SimTime::from_nanos(30_000_000_000),
            mean_interval: SimDuration::from_secs(3),
            restart_after: Some(SimDuration::from_secs(2)),
            max_concurrent_down: 1,
            partition_prob: 0.0,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What fires.
    pub fault: Fault,
}

/// A precomputed fault schedule over a set of target hosts.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// The schedule, in firing order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Generate a seeded schedule of crashes/restarts (and optionally
    /// partitions) over `targets`. Pure function of the config and the
    /// target list: same inputs, same plan.
    pub fn generate(cfg: &ChaosConfig, targets: &[HostId]) -> ChaosPlan {
        let mut plan = ChaosPlan::default();
        if targets.is_empty() || cfg.max_concurrent_down == 0 {
            return plan;
        }
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // (host, up-again-at); MAX means "never restarts".
        let mut down: Vec<(HostId, SimTime)> = Vec::new();
        let mut crashed_forever: Vec<HostId> = Vec::new();
        let mut t = cfg.start;
        while t < cfg.end {
            down.retain(|&(_, up_at)| up_at > t);
            let cut = rng.random_range(0.5..1.5);
            let gap_ns = (cfg.mean_interval.as_nanos() as f64 * cut) as u64;
            let partition = cfg.partition_prob > 0.0
                && cfg.restart_after.is_some()
                && targets.len() >= 2
                && rng.random_bool(cfg.partition_prob);
            if partition {
                let a = targets[rng.random_range(0..targets.len())];
                let b = loop {
                    let c = targets[rng.random_range(0..targets.len())];
                    if c != a {
                        break c;
                    }
                };
                let heal = cfg.restart_after.unwrap_or(SimDuration::ZERO);
                plan.events.push(ChaosEvent {
                    at: t,
                    fault: Fault::Partition(a, b, true),
                });
                plan.events.push(ChaosEvent {
                    at: t.saturating_add(heal),
                    fault: Fault::Partition(a, b, false),
                });
            } else {
                let up: Vec<HostId> = targets
                    .iter()
                    .copied()
                    .filter(|h| !down.iter().any(|&(d, _)| d == *h) && !crashed_forever.contains(h))
                    .collect();
                if !up.is_empty() && down.len() < cfg.max_concurrent_down {
                    let victim = up[rng.random_range(0..up.len())];
                    plan.events.push(ChaosEvent {
                        at: t,
                        fault: Fault::CrashHost(victim),
                    });
                    match cfg.restart_after {
                        Some(d) => {
                            let up_at = t.saturating_add(d);
                            plan.events.push(ChaosEvent {
                                at: up_at,
                                fault: Fault::RestartHost(victim),
                            });
                            down.push((victim, up_at));
                        }
                        None => crashed_forever.push(victim),
                    }
                }
            }
            t = t.saturating_add(SimDuration::from_nanos(gap_ns.max(1)));
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }

    /// Install every event of the plan into the kernel.
    pub fn schedule(&self, kernel: &mut Kernel) {
        for e in &self.events {
            kernel.schedule_fault(e.at, e.fault);
        }
    }

    /// Crash events only (ignoring restarts/partitions) — handy for
    /// assertions about how much damage a plan does.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.fault, Fault::CrashHost(_)))
            .count()
    }
}

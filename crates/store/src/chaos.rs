//! Deterministic fault-injection adversary for the replicated store.
//!
//! A [`ChaosPlan`] is a *precomputed*, seeded schedule of fault episodes —
//! host crashes/restarts, group partitions, one-way link drops, gray-failure
//! link degradation, crash/restart flap trains, and clock skew — generated
//! before the simulation runs and applied via `Kernel::schedule_fault`, so
//! the same seed always yields the same fault timeline regardless of what
//! the workload does.
//!
//! Every episode is **bounded**: each cut has a matching heal, each crash
//! in a train has a matching restart, and every heal lands strictly before
//! `end`. The generator runs one disruption ledger across *all* fault
//! families, so no host is under two overlapping disruptions and at most
//! `max_concurrent_down` hosts are disrupted at any instant — a plan can be
//! tuned to stay within (or deliberately exceed) what the write quorum
//! tolerates.
//!
//! [`ChaosPlan::minimize`] shrinks a failing schedule: classic
//! delta-debugging over whole episodes (so the matched-heal invariant
//! survives shrinking), down to a locally minimal set of episodes that
//! still reproduces the failure.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simnet::{Fault, HostId, Kernel, SimDuration, SimTime};

/// Tuning for [`ChaosPlan::generate`]. The per-family probabilities are
/// cumulative weights of one draw per injection slot; whatever they leave
/// of the unit interval goes to plain crash/restart.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed of the fault schedule (independent of the kernel seed).
    pub seed: u64,
    /// Faults are injected from this time on.
    pub start: SimTime,
    /// No fault fires at or after this time — heals included.
    pub end: SimTime,
    /// Mean time between consecutive fault injections; actual gaps are
    /// drawn uniformly from `[0.5, 1.5) ×` this.
    pub mean_interval: SimDuration,
    /// Disrupted hosts recover after this long (restart, heal, restore,
    /// skew reset). `None` means crashes are permanent (each host is
    /// crashed at most once) and the non-crash families are disabled,
    /// since they need a bounded episode.
    pub restart_after: Option<SimDuration>,
    /// Upper bound on hosts disrupted — by *any* family — at one instant.
    pub max_concurrent_down: usize,
    /// Probability that an injection is a transient pairwise partition.
    pub partition_prob: f64,
    /// Probability of a group partition: a randomly sized side of the
    /// target set is cut off from everything else.
    pub group_partition_prob: f64,
    /// Probability of an asymmetric one-way link drop.
    pub oneway_prob: f64,
    /// Probability of gray-failure link degradation (extra latency plus
    /// probabilistic drops, the link stays "up").
    pub degrade_prob: f64,
    /// Probability of a crash/restart flap train.
    pub flap_prob: f64,
    /// Probability of a clock-skew episode.
    pub skew_prob: f64,
    /// Extra one-way latency a degraded link carries.
    pub degrade_extra_latency: SimDuration,
    /// Per-message drop probability of a degraded link, in milli-units
    /// (0..=1000).
    pub degrade_drop_milli: u32,
    /// Crash/restart cycles in one flap train.
    pub flap_cycles: u32,
    /// Length of one flap cycle (down for half, up for half).
    pub flap_period: SimDuration,
    /// Clock skew magnitude bound: skews are drawn from
    /// `[-max_skew_ns, max_skew_ns]`, nonzero.
    pub max_skew_ns: i64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            start: SimTime::from_nanos(1_000_000_000),
            end: SimTime::from_nanos(30_000_000_000),
            mean_interval: SimDuration::from_secs(3),
            restart_after: Some(SimDuration::from_secs(2)),
            max_concurrent_down: 1,
            partition_prob: 0.0,
            group_partition_prob: 0.0,
            oneway_prob: 0.0,
            degrade_prob: 0.0,
            flap_prob: 0.0,
            skew_prob: 0.0,
            degrade_extra_latency: SimDuration::from_millis(5),
            degrade_drop_milli: 200,
            flap_cycles: 3,
            flap_period: SimDuration::from_millis(600),
            max_skew_ns: 500_000_000,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What fires.
    pub fault: Fault,
}

/// A precomputed fault schedule over a set of target hosts.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// The schedule, in firing order.
    pub events: Vec<ChaosEvent>,
    /// The same schedule grouped into self-contained episodes (a cut and
    /// its heal, a whole flap train, …) — the unit [`ChaosPlan::minimize`]
    /// removes, so shrinking cannot orphan a heal.
    pub episodes: Vec<Vec<ChaosEvent>>,
}

/// Which fault family one injection slot drew.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Family {
    Crash,
    Partition,
    GroupPartition,
    OneWay,
    Degrade,
    Flap,
    Skew,
}

impl ChaosPlan {
    /// Generate a seeded schedule over `targets`. Pure function of the
    /// config and the target list: same inputs, same plan.
    pub fn generate(cfg: &ChaosConfig, targets: &[HostId]) -> ChaosPlan {
        let mut episodes: Vec<Vec<ChaosEvent>> = Vec::new();
        if targets.is_empty() || cfg.max_concurrent_down == 0 || cfg.start >= cfg.end {
            return ChaosPlan::default();
        }
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // The disruption ledger: (host, recovered-at); MAX means "never".
        let mut disrupted: Vec<(HostId, SimTime)> = Vec::new();
        // Heals must fire strictly before `end`.
        let last = SimTime::from_nanos(cfg.end.as_nanos().saturating_sub(1));
        let mut t = cfg.start;
        while t < cfg.end {
            disrupted.retain(|&(_, until)| until > t);
            let gap_frac: f64 = rng.random_range(0.5..1.5);
            let gap_ns = (cfg.mean_interval.as_nanos() as f64 * gap_frac) as u64;
            let free: Vec<HostId> = targets
                .iter()
                .copied()
                .filter(|h| !disrupted.iter().any(|&(d, _)| d == *h))
                .collect();
            let slots = cfg.max_concurrent_down.saturating_sub(disrupted.len());
            if let Some(ep) = Self::episode(cfg, &mut rng, &free, slots, t, last) {
                for &(h, until) in &ep.holds {
                    disrupted.push((h, until));
                }
                episodes.push(ep.events);
            }
            t = t.saturating_add(SimDuration::from_nanos(gap_ns.max(1)));
        }
        Self::from_episodes(episodes)
    }

    /// Draw one episode at `t`, or `None` if the slot stays empty (budget
    /// exhausted, or the drawn family is infeasible right now).
    fn episode(
        cfg: &ChaosConfig,
        rng: &mut SmallRng,
        free: &[HostId],
        slots: usize,
        t: SimTime,
        last: SimTime,
    ) -> Option<Episode> {
        // One family draw per slot, taken even when the slot turns out to
        // be infeasible, so feasibility does not perturb the RNG stream of
        // later slots more than it must.
        let family = {
            let u: f64 = rng.random_range(0.0..1.0);
            let mut acc = 0.0;
            let table = [
                (Family::Partition, cfg.partition_prob),
                (Family::GroupPartition, cfg.group_partition_prob),
                (Family::OneWay, cfg.oneway_prob),
                (Family::Degrade, cfg.degrade_prob),
                (Family::Flap, cfg.flap_prob),
                (Family::Skew, cfg.skew_prob),
            ];
            let mut chosen = Family::Crash;
            for (f, p) in table {
                acc += p;
                if u < acc {
                    chosen = f;
                    break;
                }
            }
            chosen
        };
        if slots == 0 || free.is_empty() {
            return None;
        }
        // Everything except a permanent crash needs a bounded episode.
        let dur = cfg.restart_after;
        let family = if dur.is_none() { Family::Crash } else { family };
        let heal_at = |at: SimTime| {
            at.saturating_add(dur.unwrap_or(SimDuration::ZERO))
                .min(last)
        };
        match family {
            Family::Crash => {
                let victim = free[rng.random_range(0..free.len())];
                match dur {
                    Some(_) => {
                        let up = heal_at(t);
                        Some(Episode {
                            events: vec![
                                ChaosEvent {
                                    at: t,
                                    fault: Fault::CrashHost(victim),
                                },
                                ChaosEvent {
                                    at: up,
                                    fault: Fault::RestartHost(victim),
                                },
                            ],
                            holds: vec![(victim, up)],
                        })
                    }
                    None => Some(Episode {
                        events: vec![ChaosEvent {
                            at: t,
                            fault: Fault::CrashHost(victim),
                        }],
                        holds: vec![(victim, SimTime::MAX)],
                    }),
                }
            }
            Family::Partition | Family::OneWay | Family::Degrade => {
                // All three need a pair; the second endpoint may be any
                // target (a disrupted peer just makes the cut redundant),
                // but the ledger slot is charged to the first.
                if free.len() < 2 {
                    return None;
                }
                let mut pick = free.to_vec();
                pick.shuffle(rng);
                let (a, b) = (pick[0], pick[1]);
                let heal = heal_at(t);
                let (cut, mend) = match family {
                    Family::Partition => {
                        (Fault::Partition(a, b, true), Fault::Partition(a, b, false))
                    }
                    Family::OneWay => (
                        Fault::DropOneWay {
                            from: a,
                            to: b,
                            blocked: true,
                        },
                        Fault::DropOneWay {
                            from: a,
                            to: b,
                            blocked: false,
                        },
                    ),
                    _ => (
                        Fault::DegradeLink {
                            a,
                            b,
                            extra_latency: cfg.degrade_extra_latency,
                            drop_milli: cfg.degrade_drop_milli,
                        },
                        Fault::DegradeLink {
                            a,
                            b,
                            extra_latency: SimDuration::ZERO,
                            drop_milli: 0,
                        },
                    ),
                };
                Some(Episode {
                    events: vec![
                        ChaosEvent { at: t, fault: cut },
                        ChaosEvent {
                            at: heal,
                            fault: mend,
                        },
                    ],
                    holds: vec![(a, heal)],
                })
            }
            Family::GroupPartition => {
                // The cut side must leave at least one target outside it,
                // and every side member occupies a ledger slot.
                let max_side = slots.min(free.len().saturating_sub(1));
                if max_side == 0 {
                    return None;
                }
                let size = rng.random_range(1..=max_side);
                let mut pick = free.to_vec();
                pick.shuffle(rng);
                let mut side: Vec<HostId> = pick.into_iter().take(size).collect();
                side.sort_unstable_by_key(|h| h.0);
                let heal = heal_at(t);
                Some(Episode {
                    events: vec![
                        ChaosEvent {
                            at: t,
                            fault: Fault::PartitionGroup {
                                side: side.clone(),
                                blocked: true,
                            },
                        },
                        ChaosEvent {
                            at: heal,
                            fault: Fault::PartitionGroup {
                                side: side.clone(),
                                blocked: false,
                            },
                        },
                    ],
                    holds: side.into_iter().map(|h| (h, heal)).collect(),
                })
            }
            Family::Flap => {
                // A crash/restart train: down half a period, up half a
                // period, `flap_cycles` times — truncated at the horizon.
                let victim = free[rng.random_range(0..free.len())];
                let half = SimDuration::from_nanos((cfg.flap_period.as_nanos() / 2).max(1));
                let mut events = Vec::new();
                let mut at = t;
                for _ in 0..cfg.flap_cycles.max(1) {
                    if at >= last {
                        break;
                    }
                    let up = at.saturating_add(half).min(last);
                    events.push(ChaosEvent {
                        at,
                        fault: Fault::CrashHost(victim),
                    });
                    events.push(ChaosEvent {
                        at: up,
                        fault: Fault::RestartHost(victim),
                    });
                    at = up.saturating_add(half);
                }
                if events.is_empty() {
                    return None;
                }
                let until = events.last().map(|e| e.at).unwrap_or(t);
                Some(Episode {
                    events,
                    holds: vec![(victim, until)],
                })
            }
            Family::Skew => {
                let victim = free[rng.random_range(0..free.len())];
                let max = cfg.max_skew_ns.max(1);
                let mut skew: i64 = rng.random_range(-max..=max);
                if skew == 0 {
                    skew = max;
                }
                let heal = heal_at(t);
                Some(Episode {
                    events: vec![
                        ChaosEvent {
                            at: t,
                            fault: Fault::SetClockSkew(victim, skew),
                        },
                        ChaosEvent {
                            at: heal,
                            fault: Fault::SetClockSkew(victim, 0),
                        },
                    ],
                    holds: vec![(victim, heal)],
                })
            }
        }
    }

    /// Assemble a plan from a set of episodes: flatten and sort into
    /// firing order (stable, so same-instant events keep episode order).
    pub fn from_episodes(episodes: Vec<Vec<ChaosEvent>>) -> ChaosPlan {
        let mut events: Vec<ChaosEvent> = episodes.iter().flatten().cloned().collect();
        events.sort_by_key(|e| e.at);
        ChaosPlan { events, episodes }
    }

    /// Shrink a failing schedule to a locally minimal episode set: classic
    /// ddmin over whole episodes. `fails` must return `true` when the
    /// candidate plan still reproduces the failure; it is re-invoked on
    /// progressively smaller candidates (so it should be a pure function
    /// of the plan — re-run the sim, re-check the predicate). Returns the
    /// smallest failing plan found; if the full plan does not fail, it is
    /// returned unchanged.
    pub fn minimize(&self, mut fails: impl FnMut(&ChaosPlan) -> bool) -> ChaosPlan {
        let mut episodes = self.episodes.clone();
        if episodes.len() < 2 || !fails(&Self::from_episodes(episodes.clone())) {
            return self.clone();
        }
        let mut n = 2usize;
        while episodes.len() >= 2 {
            let chunk = episodes.len().div_ceil(n);
            let mut reduced = false;
            let mut i = 0;
            while i < episodes.len() {
                let hi = (i + chunk).min(episodes.len());
                let mut candidate: Vec<Vec<ChaosEvent>> = episodes[..i].to_vec();
                candidate.extend_from_slice(&episodes[hi..]);
                if !candidate.is_empty() && fails(&Self::from_episodes(candidate.clone())) {
                    episodes = candidate;
                    n = n.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                i = hi;
            }
            if !reduced {
                if n >= episodes.len() {
                    break;
                }
                n = (n * 2).min(episodes.len());
            }
        }
        Self::from_episodes(episodes)
    }

    /// Install every event of the plan into the kernel.
    pub fn schedule(&self, kernel: &mut Kernel) {
        for e in &self.events {
            kernel.schedule_fault(e.at, e.fault.clone());
        }
    }

    /// Crash events only (ignoring restarts/partitions) — handy for
    /// assertions about how much damage a plan does.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.fault, Fault::CrashHost(_)))
            .count()
    }

    /// Count of events whose fault belongs to the given family predicate.
    pub fn count_matching(&self, pred: impl Fn(&Fault) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.fault)).count()
    }
}

/// A self-contained fault episode plus the ledger slots it occupies.
struct Episode {
    events: Vec<ChaosEvent>,
    /// `(host, disrupted-until)` — what the generator's concurrency ledger
    /// charges for this episode.
    holds: Vec<(HostId, SimTime)>,
}

//! The store replica servant: a `CheckpointService`-compatible object
//! that replicates writes to its peers with quorum acknowledgement,
//! versions checkpoints by epoch, and garbage-collects superseded data.
//!
//! ## Coordination
//!
//! Coordination is leaderless: whichever replica a client's `resolve`
//! picked becomes the coordinator *for that write*. The coordinator
//! applies the record locally, reads the current membership **view**
//! (the replicas bound in the `"CheckpointService"` naming group), and
//! fans the record out to every peer as a `repl_*` operation. `repl_*`
//! operations apply locally and never fan out further, so replication
//! cannot loop. The write succeeds once `W_eff = min(W, view)` replicas
//! (counting the coordinator) have acknowledged; otherwise the client
//! sees `TRANSIENT` and the FT proxy's store failover retries elsewhere.
//!
//! Quorums are evaluated against the *view*, not the configured
//! replication factor: failure-detector eviction is a view change, so a
//! lone survivor of an N=2 deployment keeps accepting writes instead of
//! deadlocking on its dead peer.
//!
//! ## View revisions
//!
//! Every view carries the naming group's **membership revision** (bumped
//! on each bind/unbind). The coordinator stamps that revision on each
//! `repl_*` fan-out, and replicas reject writes stamped with a revision
//! older than one they have already witnessed — a coordinator still
//! acting on a pre-heal view cannot assemble a quorum until it refreshes.
//! Symmetrically, a coordinator that cannot *reach* the naming service
//! does not guess "solo": an unconfirmable view fails the write with
//! `TRANSIENT`, because silently shrinking to a one-replica view is
//! exactly the split-brain a partition minority would otherwise commit.
//!
//! With the default `W = view` every live replica holds every acked
//! write, so reads are served locally by whichever replica the client
//! resolved — "any live replica holding the newest acked epoch". A
//! replica may additionally hold a *newer unacked* epoch (its quorum
//! failed); restoring it is harmless — the state is a valid snapshot the
//! client simply did not get confirmation for.

use std::collections::BTreeMap;

use cdr::{Any, Epoch, TypeCode, Value};
use cosnaming::{Name, NamingClient, NotFound};
use ftproxy::service::ops as client_ops;
use ftproxy::{Checkpoint, CHECKPOINT_SERVICE_NAME};
use monitor::{EventBody, Publisher};
use orb::{reply, CallCtx, Exception, Ior, Servant, SystemException};
use simnet::{Ctx, HostId, SimResult, SimTime};

use crate::protocol::{ops, StoreConfig};

/// Epoch of a `CkptHeader` any, if that is what it is.
fn header_epoch_of(v: &Any) -> Option<Epoch> {
    match (&v.tc, &v.value) {
        (TypeCode::Struct { name, .. }, Value::Struct(fields)) if name == "CkptHeader" => {
            match fields.get(1) {
                Some(Value::ULongLong(e)) => Some(Epoch(*e)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Epoch of a `CkptChunk` any, if that is what it is.
fn chunk_epoch_of(v: &Any) -> Option<Epoch> {
    match (&v.tc, &v.value) {
        (TypeCode::Struct { name, .. }, Value::Struct(fields)) if name == "CkptChunk" => {
            match fields.first() {
                Some(Value::ULongLong(e)) => Some(Epoch(*e)),
                _ => None,
            }
        }
        _ => None,
    }
}

fn killed() -> Exception {
    Exception::System(SystemException::comm_failure("killed"))
}

/// One replica of the replicated checkpoint store.
pub struct StoreReplica {
    cfg: StoreConfig,
    naming_host: HostId,
    group: Name,
    /// This replica's own reference; set by [`run_store_replica`] after
    /// activation so the view can exclude it.
    pub self_ior: Option<Ior>,
    /// Cached membership view: `(fetched_at, revision, peers)`.
    view_cache: Option<(SimTime, u64, Vec<Ior>)>,
    /// Highest membership revision witnessed, from our own view fetches
    /// or stamped on incoming `repl_*` writes.
    highest_view_revision: u64,
    /// Replicated writes rejected for carrying a stale membership view.
    pub stale_view_rejects: u64,
    /// Epoch-versioned bulk checkpoints: object id → epoch → record.
    bulks: BTreeMap<String, BTreeMap<Epoch, Checkpoint>>,
    /// Per-value records (the paper's proof-of-concept interface).
    values: BTreeMap<String, BTreeMap<String, Any>>,
    /// Client-coordinated bulk stores served.
    pub stores: u64,
    /// Client-coordinated per-value stores served.
    pub value_stores: u64,
    /// Replicated records applied on behalf of a peer coordinator.
    pub repl_applied: u64,
    /// Writes that failed their quorum.
    pub quorum_failures: u64,
    /// Superseded bulk epochs trimmed. A count of trimmed records, not
    /// an epoch value, so the bare integer is correct here.
    // ldft-lint: allow(E2, counter of trimmed epochs rather than an epoch value; re-check when counters grow a Count newtype, expiry 2027-01)
    pub gc_epochs: u64,
    /// Superseded per-value chunks reclaimed.
    pub gc_chunks: u64,
    /// When set, view changes and quorum-write outcomes are published to
    /// the monitoring event channel.
    pub monitor: Option<Publisher>,
    /// Last `(members, quorum)` published, to emit view changes only on
    /// actual membership transitions.
    last_view_published: Option<(u32, u32)>,
}

impl StoreReplica {
    /// A fresh, empty replica.
    pub fn new(cfg: StoreConfig, naming_host: HostId) -> Self {
        StoreReplica {
            cfg,
            naming_host,
            group: Name::simple(CHECKPOINT_SERVICE_NAME),
            self_ior: None,
            view_cache: None,
            highest_view_revision: 0,
            stale_view_rejects: 0,
            bulks: BTreeMap::new(),
            values: BTreeMap::new(),
            stores: 0,
            value_stores: 0,
            repl_applied: 0,
            quorum_failures: 0,
            gc_epochs: 0,
            gc_chunks: 0,
            monitor: None,
            last_view_published: None,
        }
    }

    /// Publish a monitoring event if a publisher is attached.
    fn publish(&self, call: &mut CallCtx<'_>, body: EventBody) -> Result<(), Exception> {
        match &self.monitor {
            Some(p) => p.publish(call.orb, call.ctx, body).map_err(|_| killed()),
            None => Ok(()),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Local state transitions (pure, unit-testable)
    // ------------------------------------------------------------------

    /// Insert a bulk record, trimming epochs beyond the retention window.
    /// Returns how many epochs were trimmed.
    pub(crate) fn apply_bulk(&mut self, ckpt: Checkpoint) -> u64 {
        let epochs = self.bulks.entry(ckpt.object_id.clone()).or_default();
        epochs.insert(ckpt.epoch, ckpt);
        let mut dropped = 0;
        while epochs.len() > self.cfg.retain_epochs.max(1) {
            let Some(&oldest) = epochs.keys().next() else {
                break;
            };
            epochs.remove(&oldest);
            dropped += 1;
        }
        self.gc_epochs += dropped;
        dropped
    }

    /// Insert one named value. A `CkptHeader` write advances the object's
    /// newest epoch and reclaims chunks that fell out of the retention
    /// window (shrinking states leave tail chunks behind that no header
    /// references any more). Returns how many chunks were reclaimed.
    pub(crate) fn apply_value(&mut self, id: &str, key: &str, value: Any) -> u64 {
        let header_epoch = if key == "header" {
            header_epoch_of(&value)
        } else {
            None
        };
        let vals = self.values.entry(id.to_string()).or_default();
        vals.insert(key.to_string(), value);
        let mut dropped = 0;
        if let Some(e) = header_epoch {
            let floor = Epoch(
                e.get()
                    .saturating_sub(self.cfg.retain_epochs.max(1) as u64 - 1),
            );
            vals.retain(|k, v| {
                if k == "header" {
                    return true;
                }
                match chunk_epoch_of(v) {
                    Some(ce) if ce < floor => {
                        dropped += 1;
                        false
                    }
                    _ => true,
                }
            });
        }
        self.gc_chunks += dropped;
        dropped
    }

    /// Remove everything stored for an object.
    pub(crate) fn apply_delete(&mut self, id: &str) -> bool {
        let a = self.bulks.remove(id).is_some();
        let b = self.values.remove(id).is_some();
        a || b
    }

    /// The newest locally held bulk epoch for an object.
    pub(crate) fn local_newest(&self, id: &str) -> Option<&Checkpoint> {
        self.bulks.get(id).and_then(|m| m.values().next_back())
    }

    /// Aggressive compaction: keep only the newest bulk epoch per object
    /// and only chunks of the newest header epoch. Returns
    /// `(epochs_dropped, chunks_dropped)`.
    pub(crate) fn compact(&mut self) -> (u64, u64) {
        let mut epochs_dropped = 0;
        let mut chunks_dropped = 0;
        for epochs in self.bulks.values_mut() {
            while epochs.len() > 1 {
                let Some(&oldest) = epochs.keys().next() else {
                    break;
                };
                epochs.remove(&oldest);
                epochs_dropped += 1;
            }
        }
        for vals in self.values.values_mut() {
            let newest = vals.get("header").and_then(header_epoch_of);
            if let Some(e) = newest {
                vals.retain(|k, v| {
                    if k == "header" {
                        return true;
                    }
                    match chunk_epoch_of(v) {
                        Some(ce) if ce != e => {
                            chunks_dropped += 1;
                            false
                        }
                        _ => true,
                    }
                });
            }
        }
        self.gc_epochs += epochs_dropped;
        self.gc_chunks += chunks_dropped;
        (epochs_dropped, chunks_dropped)
    }

    /// (objects, retained epochs, values) held locally.
    pub(crate) fn status(&self) -> (u64, u64, u64) {
        let objects = self.bulks.len() as u64;
        let epochs: u64 = self.bulks.values().map(|m| m.len() as u64).sum();
        let values: u64 = self.values.values().map(|m| m.len() as u64).sum();
        (objects, epochs, values)
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// The current peer view: the group's membership revision plus its
    /// members, deduplicated, sorted by `(host, port, key)` for
    /// deterministic fan-out order, and excluding this replica itself.
    /// Cached for `view_ttl` — but a cached view is also discarded early
    /// when a peer's stamped write has already proven it stale.
    fn view(&mut self, call: &mut CallCtx<'_>) -> Result<(u64, Vec<Ior>), Exception> {
        let now = call.ctx.now();
        if let Some((at, rev, v)) = &self.view_cache {
            if now.since(*at) <= self.cfg.view_ttl && *rev >= self.highest_view_revision {
                return Ok((*rev, v.clone()));
            }
        }
        let ns = NamingClient::root(self.naming_host);
        let (revision, members) = match ns
            .group_view(call.orb, call.ctx, &self.group)
            .map_err(|_| killed())?
        {
            Ok(rv) => rv,
            // The name is not a group (a legacy single-store binding):
            // coordinate solo, under the pre-group revision 0.
            Err(e) if NotFound::extract(&e).is_some() => (0, Vec::new()),
            // Naming unreachable — crashed, or we are on the wrong side
            // of a partition. An unconfirmable view must NOT collapse to
            // "solo": that is the split-brain a partition minority would
            // commit. Fail the write; the client retries elsewhere.
            Err(_) => {
                return Err(Exception::System(SystemException::transient(
                    "membership view unavailable (naming unreachable)",
                )))
            }
        };
        self.highest_view_revision = self.highest_view_revision.max(revision);
        let mut peers: Vec<Ior> = members
            .into_iter()
            .filter(|m| self.self_ior.as_ref() != Some(m))
            .collect();
        peers.sort_by_key(|a| (a.host, a.port, a.key));
        peers.dedup();
        self.view_cache = Some((now, revision, peers.clone()));
        let members = (peers.len() + 1) as u32;
        let quorum = self.cfg.write_quorum.clamp(1, peers.len() + 1) as u32;
        if self.last_view_published != Some((members, quorum)) {
            self.last_view_published = Some((members, quorum));
            self.publish(call, EventBody::ViewChange { members, quorum })?;
        }
        Ok((revision, peers))
    }

    /// Admit (or reject) a peer-coordinated write stamped with the
    /// membership revision the coordinator acted on. Older than one this
    /// replica has witnessed means the coordinator is still on a pre-heal
    /// view: reject, so it cannot assemble a quorum without refreshing.
    fn note_coordinator_view(&mut self, revision: u64) -> Result<(), Exception> {
        if revision < self.highest_view_revision {
            self.stale_view_rejects += 1;
            return Err(Exception::System(SystemException::transient(format!(
                "stale membership view: write stamped revision {revision}, \
                 replica has witnessed {}",
                self.highest_view_revision
            ))));
        }
        self.highest_view_revision = revision;
        Ok(())
    }

    /// Fan a locally applied write out to the peers in the view and
    /// enforce the quorum. `op` is the `repl_*` operation; its body is
    /// the original client request body wrapped as
    /// `(view_revision, body)` so replicas can reject a stale view.
    fn replicate(
        &mut self,
        call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
        object: &str,
        epoch: Epoch,
    ) -> Result<(), Exception> {
        let (revision, peers) = self.view(call)?;
        let view_size = peers.len() + 1; // the coordinator is in the view
        let w_eff = self.cfg.write_quorum.clamp(1, view_size);
        if w_eff <= 1 && peers.is_empty() {
            self.publish(
                call,
                EventBody::QuorumWrite {
                    object: object.to_string(),
                    epoch,
                    acks: 1,
                    view: 1,
                    quorum: 1,
                },
            )?;
            return Ok(());
        }
        let po = call.orb.obs().cloned();
        if let Some(o) = &po {
            o.begin(call.ctx.now(), "store.replicate");
            o.tag("op", op);
        }
        let stamped = cdr::to_bytes(&(revision, args.to_vec()));
        let mut acks = 1usize; // the coordinator's local apply
        for peer in &peers {
            let outcome = call.orb.invoke_with_timeout(
                call.ctx,
                peer,
                op,
                stamped.clone(),
                Some(self.cfg.repl_timeout),
            );
            match outcome {
                Ok(Ok(_)) => {
                    acks += 1;
                    if let Some(o) = &po {
                        o.counter_add("store.repl_acks", 1);
                    }
                }
                Ok(Err(_dead_or_slow_peer)) => {
                    // The detector (or a client's retarget) will evict the
                    // peer; until then the quorum check below decides.
                    if let Some(o) = &po {
                        o.counter_add("store.repl_failures", 1);
                    }
                }
                Err(_killed) => {
                    if let Some(o) = &po {
                        o.tag("ok", "false");
                        o.end(call.ctx.now());
                    }
                    return Err(killed());
                }
            }
        }
        let ok = acks >= w_eff;
        if let Some(o) = &po {
            if !ok {
                o.tag("ok", "false");
            }
            o.end(call.ctx.now());
        }
        self.publish(
            call,
            EventBody::QuorumWrite {
                object: object.to_string(),
                epoch,
                acks: acks as u32,
                view: view_size as u32,
                quorum: w_eff as u32,
            },
        )?;
        if ok {
            Ok(())
        } else {
            self.quorum_failures += 1;
            if let Some(o) = &po {
                o.counter_add("store.quorum_failures", 1);
            }
            Err(Exception::System(SystemException::transient(format!(
                "replication quorum not reached: {acks}/{w_eff} acks (view {view_size})"
            ))))
        }
    }

    fn compute(&self, call: &mut CallCtx<'_>, work: f64) -> Result<(), Exception> {
        call.ctx.compute(work).map_err(|_| killed())
    }

    fn bulk_work(&self, state_bytes: usize) -> f64 {
        self.cfg.costs.bulk_fixed + self.cfg.costs.bulk_per_byte * state_bytes as f64
    }
}

impl Servant for StoreReplica {
    fn dispatch(
        &mut self,
        call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, Exception> {
        match op {
            // ---------------- client-coordinated writes ----------------
            client_ops::STORE => {
                let (ckpt,): (Checkpoint,) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                // Confirm the membership view BEFORE applying locally: a
                // coordinator that cannot read the view (a partition
                // minority) must fail cleanly, not leave a divergent
                // epoch behind for a post-heal reader to find.
                self.view(call)?;
                self.compute(call, self.bulk_work(ckpt.state.len()))?;
                self.stores += 1;
                let (object, epoch) = (ckpt.object_id.clone(), ckpt.epoch);
                self.apply_bulk(ckpt);
                self.replicate(call, ops::REPL_STORE, args, &object, epoch)?;
                reply(&())
            }
            client_ops::STORE_VALUE => {
                let (id, key, value): (String, String, Any) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.view(call)?;
                self.compute(call, self.cfg.costs.value_fixed)?;
                self.value_stores += 1;
                let epoch = if key == "header" {
                    header_epoch_of(&value).unwrap_or(Epoch::ZERO)
                } else {
                    Epoch::ZERO
                };
                self.apply_value(&id, &key, value);
                self.replicate(call, ops::REPL_STORE_VALUE, args, &id, epoch)?;
                reply(&())
            }
            client_ops::DELETE => {
                let (id,): (String,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.view(call)?;
                let deleted = self.apply_delete(&id);
                self.replicate(call, ops::REPL_DELETE, args, &id, Epoch::ZERO)?;
                reply(&deleted)
            }
            // ---------------- replica-to-replica applies ---------------
            // Each carries `(view_revision, body)`: the membership
            // revision the coordinator acted on, then the original client
            // request body. Stale revisions are rejected before applying.
            ops::REPL_STORE => {
                let (revision, body): (u64, Vec<u8>) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.note_coordinator_view(revision)?;
                let (ckpt,): (Checkpoint,) =
                    cdr::from_bytes(&body).map_err(SystemException::marshal)?;
                self.compute(call, self.bulk_work(ckpt.state.len()))?;
                self.repl_applied += 1;
                self.apply_bulk(ckpt);
                reply(&())
            }
            ops::REPL_STORE_VALUE => {
                let (revision, body): (u64, Vec<u8>) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.note_coordinator_view(revision)?;
                let (id, key, value): (String, String, Any) =
                    cdr::from_bytes(&body).map_err(SystemException::marshal)?;
                self.compute(call, self.cfg.costs.value_fixed)?;
                self.repl_applied += 1;
                self.apply_value(&id, &key, value);
                reply(&())
            }
            ops::REPL_DELETE => {
                let (revision, body): (u64, Vec<u8>) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.note_coordinator_view(revision)?;
                let (id,): (String,) = cdr::from_bytes(&body).map_err(SystemException::marshal)?;
                self.repl_applied += 1;
                reply(&self.apply_delete(&id))
            }
            // ---------------- reads (served locally) -------------------
            client_ops::RETRIEVE | ops::REPL_GET => {
                let (id,): (String,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let got = self.local_newest(&id).cloned();
                self.compute(
                    call,
                    self.bulk_work(got.as_ref().map_or(0, |c| c.state.len())),
                )?;
                match got {
                    Some(c) => reply(&(true, c)),
                    None => reply(&(
                        false,
                        Checkpoint {
                            object_id: id,
                            epoch: Epoch::ZERO,
                            state: Vec::new(),
                            stamp_ns: 0,
                        },
                    )),
                }
            }
            client_ops::RETRIEVE_VALUE => {
                let (id, key): (String, String) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.compute(call, self.cfg.costs.value_fixed)?;
                match self.values.get(&id).and_then(|m| m.get(&key)) {
                    Some(v) => reply(&(true, v)),
                    None => reply(&(false, Any::boolean(false))),
                }
            }
            client_ops::LIST => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                let ids: Vec<String> = self.bulks.keys().cloned().collect();
                reply(&ids)
            }
            client_ops::VALUE_COUNT => {
                let (id,): (String,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let n = self.values.get(&id).map_or(0, |m| m.len() as u32);
                reply(&n)
            }
            // ---------------- maintenance ------------------------------
            ops::GC => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                let (e, c) = self.compact();
                if let Some(o) = call.orb.obs().cloned() {
                    o.counter_add("store.gc_epochs", e);
                    o.counter_add("store.gc_chunks", c);
                }
                reply(&(e, c))
            }
            ops::STORE_STATUS => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                reply(&self.status())
            }
            other => Err(SystemException::bad_operation(other).into()),
        }
    }
}

/// The body of one store-replica process: activate the servant, join the
/// `"CheckpointService"` naming group (retrying while naming boots), and
/// serve forever.
pub fn run_store_replica(
    ctx: &mut Ctx,
    naming_host: HostId,
    cfg: StoreConfig,
    sink: Option<obs::Obs>,
) -> SimResult<()> {
    let mut orb = orb::Orb::init(ctx);
    if let Some(s) = sink {
        orb.set_obs(obs::ProcessObs::new(s, ctx));
    }
    orb.listen(ctx)?;
    let poa = orb::Poa::new();
    let monitor_cell = cfg.monitor.clone();
    let replica = std::rc::Rc::new(std::cell::RefCell::new(StoreReplica::new(cfg, naming_host)));
    if let Some(cell) = monitor_cell {
        replica.borrow_mut().monitor = Some(Publisher::new(cell, ctx));
    }
    let key = poa.activate(ftproxy::CHECKPOINT_SERVICE_TYPE, replica.clone());
    let ior = orb.ior(ftproxy::CHECKPOINT_SERVICE_TYPE, key);
    replica.borrow_mut().self_ior = Some(ior.clone());
    let ns = NamingClient::root(naming_host);
    let name = Name::simple(CHECKPOINT_SERVICE_NAME);
    // Bounded boot registration; see `NamingClient::bind_group_member_retry`.
    if ns
        .bind_group_member_retry(&mut orb, ctx, &name, &ior)?
        .is_err()
    {
        // Registration budget exhausted: an unregistered replica never
        // receives checkpoints — die instead of spinning.
        return Err(simnet::Killed);
    }
    orb.serve_forever(ctx, &poa)
}

//! Property tests for the chaos adversary: for arbitrary configurations,
//! generated schedules are deterministic in the seed, honor the shared
//! disruption ledger across *every* fault family, and never orphan a cut
//! — each one heals strictly before the horizon.

use ldft_store::{ChaosConfig, ChaosPlan};
use proptest::prelude::*;
use simnet::{Fault, HostId, SimDuration, SimTime};

/// Arbitrary-but-sane chaos configs: the six family weights sum to at
/// most ~0.96, leaving the remainder for plain crash/restart.
fn cfg_strategy() -> impl Strategy<Value = ChaosConfig> {
    (
        any::<u64>(),
        (1u64..40).prop_map(SimDuration::from_secs), // window length
        (100u64..2_000).prop_map(SimDuration::from_millis), // mean interval
        prop_oneof![
            Just(None),
            (200u64..3_000).prop_map(|ms| Some(SimDuration::from_millis(ms))),
        ],
        1usize..4,
        proptest::collection::vec(0.0f64..0.16, 6),
    )
        .prop_map(
            |(seed, len, mean_interval, restart_after, down, w)| ChaosConfig {
                seed,
                start: SimTime::from_nanos(1_000_000),
                end: SimTime::from_nanos(1_000_000 + len.as_nanos()),
                mean_interval,
                restart_after,
                max_concurrent_down: down,
                partition_prob: w[0],
                group_partition_prob: w[1],
                oneway_prob: w[2],
                degrade_prob: w[3],
                flap_prob: w[4],
                skew_prob: w[5],
                ..ChaosConfig::default()
            },
        )
}

fn targets_strategy() -> impl Strategy<Value = Vec<HostId>> {
    (2u32..8).prop_map(|n| (1..=n).map(HostId).collect())
}

/// The hosts one episode charges against the concurrency ledger, and
/// when the charge expires — reconstructed from the episode's events,
/// mirroring what `ChaosPlan::generate` promises.
fn episode_charge(ep: &[ldft_store::chaos::ChaosEvent]) -> (Vec<HostId>, SimTime) {
    let first = ep.first().expect("episodes are never empty");
    let until = ep.last().unwrap().at;
    let hosts = match &first.fault {
        Fault::CrashHost(h) | Fault::RestartHost(h) => vec![*h],
        Fault::Partition(a, _, _) => vec![*a],
        Fault::DropOneWay { from, .. } => vec![*from],
        Fault::DegradeLink { a, .. } => vec![*a],
        Fault::PartitionGroup { side, .. } => side.clone(),
        Fault::SetClockSkew(h, _) => vec![*h],
        other => panic!("generator never emits {other:?}"),
    };
    (hosts, until)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plans_are_pure_functions_of_their_inputs(
        cfg in cfg_strategy(),
        targets in targets_strategy(),
    ) {
        let a = ChaosPlan::generate(&cfg, &targets);
        let b = ChaosPlan::generate(&cfg, &targets);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(&a.episodes, &b.episodes);
        // Byte-identical, not just structurally equal.
        prop_assert_eq!(format!("{:?}", a.events), format!("{:?}", b.events));
    }

    /// At most `max_concurrent_down` hosts are under a disruption at any
    /// instant, counting every family — partitions, drops, degradations,
    /// flap trains, and skews included, not just crashes.
    #[test]
    fn concurrency_ledger_spans_all_families(
        cfg in cfg_strategy(),
        targets in targets_strategy(),
    ) {
        let plan = ChaosPlan::generate(&cfg, &targets);
        // (until, charged hosts) for episodes still disrupting.
        let mut active: Vec<(SimTime, Vec<HostId>)> = Vec::new();
        for ep in &plan.episodes {
            let start = ep.first().unwrap().at;
            let (hosts, until) = episode_charge(ep);
            // A host recovering exactly at `start` is free again.
            active.retain(|(u, _)| *u > start);
            for (_, held) in &active {
                for h in &hosts {
                    prop_assert!(
                        !held.contains(h),
                        "host {h:?} disrupted twice at {start:?}"
                    );
                }
            }
            active.push((until, hosts));
            let load: usize = active.iter().map(|(_, hs)| hs.len()).sum();
            prop_assert!(
                load <= cfg.max_concurrent_down,
                "{load} hosts disrupted at {start:?}, cap {}",
                cfg.max_concurrent_down
            );
        }
    }

    /// Every cut heals, every crash restarts (when restarts are enabled),
    /// every degradation is restored and every skew reset — strictly
    /// before `end`.
    #[test]
    fn every_disruption_has_a_matching_heal(
        cfg in cfg_strategy(),
        targets in targets_strategy(),
    ) {
        let plan = ChaosPlan::generate(&cfg, &targets);
        for e in &plan.events {
            prop_assert!(e.at < cfg.end, "event at/after the horizon: {e:?}");
        }
        for ep in &plan.episodes {
            // Pair each "breaking" event with a later "mending" twin.
            let breaking = |f: &Fault| match f {
                Fault::CrashHost(_) => cfg.restart_after.is_some(),
                Fault::Partition(_, _, blocked)
                | Fault::PartitionGroup { blocked, .. }
                | Fault::DropOneWay { blocked, .. } => *blocked,
                Fault::DegradeLink { drop_milli, extra_latency, .. } => {
                    *drop_milli > 0 || extra_latency.as_nanos() > 0
                }
                Fault::SetClockSkew(_, s) => *s != 0,
                _ => false,
            };
            let mends = |b: &Fault, m: &Fault| match (b, m) {
                (Fault::CrashHost(h), Fault::RestartHost(r)) => h == r,
                (Fault::Partition(a, b1, true), Fault::Partition(c, d, false)) => {
                    a == c && b1 == d
                }
                (
                    Fault::PartitionGroup { side: s1, blocked: true },
                    Fault::PartitionGroup { side: s2, blocked: false },
                ) => s1 == s2,
                (
                    Fault::DropOneWay { from: f1, to: t1, blocked: true },
                    Fault::DropOneWay { from: f2, to: t2, blocked: false },
                ) => f1 == f2 && t1 == t2,
                (
                    Fault::DegradeLink { a: a1, b: b1, .. },
                    Fault::DegradeLink { a: a2, b: b2, drop_milli: 0, extra_latency },
                ) => a1 == a2 && b1 == b2 && extra_latency.as_nanos() == 0,
                (Fault::SetClockSkew(h, _), Fault::SetClockSkew(r, 0)) => h == r,
                _ => false,
            };
            for (i, ev) in ep.iter().enumerate() {
                if breaking(&ev.fault) {
                    prop_assert!(
                        ep[i + 1..].iter().any(|later| {
                            later.at >= ev.at && mends(&ev.fault, &later.fault)
                        }),
                        "unhealed disruption {:?} in episode {ep:?}",
                        ev.fault
                    );
                }
            }
        }
    }
}

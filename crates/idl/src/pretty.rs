//! Pretty-printer: renders an AST back to IDL source. Together with the
//! parser this gives the round-trip property `parse(pretty(ast)) == ast`,
//! which the property tests exercise.

use std::fmt::Write;

use crate::ast::*;

/// Render a spec as IDL source.
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    for def in &spec.defs {
        emit_def(&mut out, def, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn emit_def(out: &mut String, def: &Def, level: usize) {
    match def {
        Def::Module(m) => {
            indent(out, level);
            let _ = writeln!(out, "module {} {{", m.name);
            for d in &m.defs {
                emit_def(out, d, level + 1);
            }
            indent(out, level);
            let _ = writeln!(out, "}};");
        }
        Def::Struct(s) => {
            indent(out, level);
            let _ = writeln!(out, "struct {} {{", s.name);
            for (n, t) in &s.members {
                indent(out, level + 1);
                let _ = writeln!(out, "{} {n};", ty(t));
            }
            indent(out, level);
            let _ = writeln!(out, "}};");
        }
        Def::Enum(e) => {
            indent(out, level);
            let _ = writeln!(out, "enum {} {{ {} }};", e.name, e.members.join(", "));
        }
        Def::Typedef(t) => {
            indent(out, level);
            let _ = writeln!(out, "typedef {} {};", ty(&t.ty), t.name);
        }
        Def::Exception(e) => {
            indent(out, level);
            let _ = writeln!(out, "exception {} {{", e.name);
            for (n, t) in &e.members {
                indent(out, level + 1);
                let _ = writeln!(out, "{} {n};", ty(t));
            }
            indent(out, level);
            let _ = writeln!(out, "}};");
        }
        Def::Interface(i) => {
            indent(out, level);
            match &i.base {
                Some(b) => {
                    let _ = writeln!(out, "interface {} : {b} {{", i.name);
                }
                None => {
                    let _ = writeln!(out, "interface {} {{", i.name);
                }
            }
            for a in &i.attrs {
                indent(out, level + 1);
                let ro = if a.readonly { "readonly " } else { "" };
                let _ = writeln!(out, "{ro}attribute {} {};", ty(&a.ty), a.name);
            }
            for op in &i.ops {
                indent(out, level + 1);
                let ow = if op.oneway { "oneway " } else { "" };
                let params: Vec<String> = op
                    .params
                    .iter()
                    .map(|p| {
                        let dir = match p.dir {
                            Direction::In => "in",
                            Direction::Out => "out",
                            Direction::InOut => "inout",
                        };
                        format!("{dir} {} {}", ty(&p.ty), p.name)
                    })
                    .collect();
                let raises = if op.raises.is_empty() {
                    String::new()
                } else {
                    format!(" raises ({})", op.raises.join(", "))
                };
                let ret = match &op.ret {
                    Type::Void => "void".to_string(),
                    t => ty(t),
                };
                let _ = writeln!(out, "{ow}{ret} {}({}){raises};", op.name, params.join(", "));
            }
            indent(out, level);
            let _ = writeln!(out, "}};");
        }
    }
}

fn ty(t: &Type) -> String {
    match t {
        Type::Void => "void".into(),
        Type::Boolean => "boolean".into(),
        Type::Octet => "octet".into(),
        Type::Short => "short".into(),
        Type::UShort => "unsigned short".into(),
        Type::Long => "long".into(),
        Type::ULong => "unsigned long".into(),
        Type::LongLong => "long long".into(),
        Type::ULongLong => "unsigned long long".into(),
        Type::Float => "float".into(),
        Type::Double => "double".into(),
        Type::String => "string".into(),
        Type::Sequence(inner) => format!("sequence<{}>", ty(inner)),
        Type::Named(n) => n.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_a_module() {
        let src = r#"
            module M {
                typedef sequence<unsigned long long> Ids;
                struct S { double x; Ids ids; };
                enum E { A, B };
                exception Bad { string why; };
                interface I {
                    readonly attribute long n;
                    double f(in S s, inout double d, out string msg) raises (Bad);
                    oneway void log(in string m);
                };
                interface J : I { void g(); };
            };
        "#;
        let ast = parse(src).unwrap();
        let printed = pretty(&ast);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(ast, reparsed, "pretty output:\n{printed}");
    }

    #[test]
    fn fixpoint_after_one_round() {
        let src = "interface I { void f(in double a); };";
        let once = pretty(&parse(src).unwrap());
        let twice = pretty(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}

//! Recursive-descent parser for the IDL subset.

use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError, TokKind, Token};

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Line (1-based); 0 for lexical errors without a token.
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.to_string(),
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse an IDL source file.
pub fn parse(src: &str) -> Result<Spec, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.spec()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            msg: msg.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: &TokKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    /// Consume a keyword (an identifier with fixed spelling).
    fn keyword(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().kind, TokKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// A possibly scoped name `A::B::C`.
    fn scoped_name(&mut self) -> Result<String, ParseError> {
        let mut s = self.ident()?;
        while self.peek().kind == TokKind::Scope {
            self.bump();
            s.push_str("::");
            s.push_str(&self.ident()?);
        }
        Ok(s)
    }

    fn spec(&mut self) -> Result<Spec, ParseError> {
        let mut defs = Vec::new();
        while self.peek().kind != TokKind::Eof {
            defs.push(self.def()?);
        }
        Ok(Spec { defs })
    }

    fn def(&mut self) -> Result<Def, ParseError> {
        if self.keyword("module") {
            let name = self.ident()?;
            self.expect(&TokKind::LBrace)?;
            let mut defs = Vec::new();
            while self.peek().kind != TokKind::RBrace {
                defs.push(self.def()?);
            }
            self.expect(&TokKind::RBrace)?;
            self.expect(&TokKind::Semi)?;
            Ok(Def::Module(Module { name, defs }))
        } else if self.keyword("interface") {
            self.interface().map(Def::Interface)
        } else if self.keyword("struct") {
            let name = self.ident()?;
            self.expect(&TokKind::LBrace)?;
            let members = self.members()?;
            self.expect(&TokKind::RBrace)?;
            self.expect(&TokKind::Semi)?;
            Ok(Def::Struct(StructDef { name, members }))
        } else if self.keyword("enum") {
            let name = self.ident()?;
            self.expect(&TokKind::LBrace)?;
            let mut members = vec![self.ident()?];
            while self.peek().kind == TokKind::Comma {
                self.bump();
                members.push(self.ident()?);
            }
            self.expect(&TokKind::RBrace)?;
            self.expect(&TokKind::Semi)?;
            Ok(Def::Enum(EnumDef { name, members }))
        } else if self.keyword("typedef") {
            let ty = self.ty()?;
            let name = self.ident()?;
            self.expect(&TokKind::Semi)?;
            Ok(Def::Typedef(Typedef { name, ty }))
        } else if self.keyword("exception") {
            let name = self.ident()?;
            self.expect(&TokKind::LBrace)?;
            let members = self.members()?;
            self.expect(&TokKind::RBrace)?;
            self.expect(&TokKind::Semi)?;
            Ok(Def::Exception(ExceptionDef { name, members }))
        } else {
            self.err(format!("expected a definition, found {}", self.peek().kind))
        }
    }

    /// `type name; type name; ...` member lists for structs/exceptions.
    fn members(&mut self) -> Result<Vec<(String, Type)>, ParseError> {
        let mut members = Vec::new();
        while self.peek().kind != TokKind::RBrace {
            let ty = self.ty()?;
            let name = self.ident()?;
            self.expect(&TokKind::Semi)?;
            members.push((name, ty));
        }
        Ok(members)
    }

    fn interface(&mut self) -> Result<Interface, ParseError> {
        let name = self.ident()?;
        let base = if self.peek().kind == TokKind::Colon {
            self.bump();
            Some(self.scoped_name()?)
        } else {
            None
        };
        self.expect(&TokKind::LBrace)?;
        let mut ops = Vec::new();
        let mut attrs = Vec::new();
        while self.peek().kind != TokKind::RBrace {
            if self.keyword("readonly") {
                if !self.keyword("attribute") {
                    return self.err("expected `attribute` after `readonly`");
                }
                let ty = self.ty()?;
                let name = self.ident()?;
                self.expect(&TokKind::Semi)?;
                attrs.push(Attribute {
                    readonly: true,
                    name,
                    ty,
                });
            } else if self.keyword("attribute") {
                let ty = self.ty()?;
                let name = self.ident()?;
                self.expect(&TokKind::Semi)?;
                attrs.push(Attribute {
                    readonly: false,
                    name,
                    ty,
                });
            } else {
                ops.push(self.operation()?);
            }
        }
        self.expect(&TokKind::RBrace)?;
        self.expect(&TokKind::Semi)?;
        Ok(Interface {
            name,
            base,
            ops,
            attrs,
        })
    }

    fn operation(&mut self) -> Result<Operation, ParseError> {
        let oneway = self.keyword("oneway");
        let ret = self.ty_or_void()?;
        let name = self.ident()?;
        self.expect(&TokKind::LParen)?;
        let mut params = Vec::new();
        if self.peek().kind != TokKind::RParen {
            loop {
                params.push(self.param()?);
                if self.peek().kind == TokKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen)?;
        let mut raises = Vec::new();
        if self.keyword("raises") {
            self.expect(&TokKind::LParen)?;
            loop {
                raises.push(self.scoped_name()?);
                if self.peek().kind == TokKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokKind::RParen)?;
        }
        self.expect(&TokKind::Semi)?;
        Ok(Operation {
            name,
            oneway,
            ret,
            params,
            raises,
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let dir = if self.keyword("in") {
            Direction::In
        } else if self.keyword("out") {
            Direction::Out
        } else if self.keyword("inout") {
            Direction::InOut
        } else {
            return self.err("expected parameter direction (in/out/inout)");
        };
        let ty = self.ty()?;
        let name = self.ident()?;
        Ok(Param { dir, name, ty })
    }

    fn ty_or_void(&mut self) -> Result<Type, ParseError> {
        if self.keyword("void") {
            Ok(Type::Void)
        } else {
            self.ty()
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        if self.keyword("boolean") {
            Ok(Type::Boolean)
        } else if self.keyword("octet") {
            Ok(Type::Octet)
        } else if self.keyword("short") {
            Ok(Type::Short)
        } else if self.keyword("float") {
            Ok(Type::Float)
        } else if self.keyword("double") {
            Ok(Type::Double)
        } else if self.keyword("string") {
            Ok(Type::String)
        } else if self.keyword("long") {
            if self.keyword("long") {
                Ok(Type::LongLong)
            } else {
                Ok(Type::Long)
            }
        } else if self.keyword("unsigned") {
            if self.keyword("short") {
                Ok(Type::UShort)
            } else if self.keyword("long") {
                if self.keyword("long") {
                    Ok(Type::ULongLong)
                } else {
                    Ok(Type::ULong)
                }
            } else {
                self.err("expected `short` or `long` after `unsigned`")
            }
        } else if self.keyword("sequence") {
            self.expect(&TokKind::Lt)?;
            let inner = self.ty()?;
            // Optional bound: sequence<T, 10> — parsed and ignored.
            if self.peek().kind == TokKind::Comma {
                self.bump();
                match self.peek().kind {
                    TokKind::Int(_) => {
                        self.bump();
                    }
                    _ => return self.err("expected sequence bound"),
                }
            }
            self.expect(&TokKind::Gt)?;
            Ok(Type::Sequence(Box::new(inner)))
        } else {
            Ok(Type::Named(self.scoped_name()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_module() {
        let src = r#"
            // The worker service of the optimization runtime.
            module Optim {
                typedef sequence<double> DoubleSeq;
                enum Phase { INIT, RUNNING, DONE };
                struct SubProblem {
                    unsigned long id;
                    DoubleSeq lower;
                    DoubleSeq upper;
                };
                exception SolveFailed { string reason; };
                interface Worker {
                    readonly attribute unsigned long solve_count;
                    attribute double tolerance;
                    double solve(in SubProblem sub, in unsigned long iters)
                        raises (SolveFailed);
                    void state(out DoubleSeq snapshot);
                    oneway void log(in string msg);
                };
                interface FtWorker : Worker {
                    void restore(in DoubleSeq snapshot);
                };
            };
        "#;
        let spec = parse(src).unwrap();
        assert_eq!(spec.defs.len(), 1);
        let Def::Module(m) = &spec.defs[0] else {
            panic!("expected module");
        };
        assert_eq!(m.name, "Optim");
        assert_eq!(m.defs.len(), 6);
        let Def::Interface(w) = &m.defs[4] else {
            panic!("expected interface");
        };
        assert_eq!(w.name, "Worker");
        assert_eq!(w.ops.len(), 3);
        assert_eq!(w.attrs.len(), 2);
        assert!(w.attrs[0].readonly);
        assert_eq!(w.ops[0].raises, vec!["SolveFailed"]);
        assert!(w.ops[2].oneway);
        let Def::Interface(fw) = &m.defs[5] else {
            panic!("expected interface");
        };
        assert_eq!(fw.base.as_deref(), Some("Worker"));
    }

    #[test]
    fn parse_types() {
        let src = "interface T {
            void f(in unsigned long long a, in long long b, in octet c,
                   in sequence<sequence<double>> m, in A::B scoped);
        };";
        let spec = parse(src).unwrap();
        let Def::Interface(i) = &spec.defs[0] else {
            panic!()
        };
        let p = &i.ops[0].params;
        assert_eq!(p[0].ty, Type::ULongLong);
        assert_eq!(p[1].ty, Type::LongLong);
        assert_eq!(p[2].ty, Type::Octet);
        assert_eq!(
            p[3].ty,
            Type::Sequence(Box::new(Type::Sequence(Box::new(Type::Double))))
        );
        assert_eq!(p[4].ty, Type::Named("A::B".into()));
    }

    #[test]
    fn bounded_sequence_accepted() {
        let spec = parse("typedef sequence<double, 8> Vec8;").unwrap();
        let Def::Typedef(t) = &spec.defs[0] else {
            panic!()
        };
        assert_eq!(t.ty, Type::Sequence(Box::new(Type::Double)));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("interface {").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("identifier"), "{err}");
    }

    #[test]
    fn missing_semi_is_reported() {
        let err = parse("struct S { double x; }").unwrap_err();
        assert!(err.msg.contains("`;`"), "{err}");
    }

    #[test]
    fn missing_direction_is_reported() {
        let err = parse("interface I { void f(double x); };").unwrap_err();
        assert!(err.msg.contains("direction"), "{err}");
    }

    #[test]
    fn empty_spec_ok() {
        assert_eq!(parse("").unwrap(), Spec::default());
    }
}

//! Semantic analysis: name resolution and validation of a parsed [`Spec`],
//! producing the flattened [`Model`] the code generator consumes.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;

/// What kind of thing a name denotes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymbolKind {
    /// A struct.
    Struct,
    /// An enum.
    Enum,
    /// A typedef.
    Typedef,
    /// An exception.
    Exception,
    /// An interface.
    Interface,
}

/// A semantic error.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckError {
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CheckError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CheckError> {
    Err(CheckError { msg: msg.into() })
}

/// A checked item with its enclosing module scope (absolute path of module
/// names, not including the item's own name).
#[derive(Clone, Debug)]
pub enum Item {
    /// A struct, with member types resolved.
    Struct {
        /// Enclosing module path.
        scope: Vec<String>,
        /// The definition (named types rewritten to absolute paths).
        def: StructDef,
    },
    /// An enum.
    Enum {
        /// Enclosing module path.
        scope: Vec<String>,
        /// The definition.
        def: EnumDef,
    },
    /// A typedef.
    Typedef {
        /// Enclosing module path.
        scope: Vec<String>,
        /// The definition (type resolved).
        def: Typedef,
    },
    /// An exception.
    Exception {
        /// Enclosing module path.
        scope: Vec<String>,
        /// The definition (member types resolved).
        def: ExceptionDef,
        /// Repository id.
        repo_id: String,
    },
    /// An interface.
    Interface {
        /// Enclosing module path.
        scope: Vec<String>,
        /// The definition (types resolved; base as absolute path).
        def: Interface,
        /// Repository id.
        repo_id: String,
        /// Flattened operations: inherited first, own last.
        all_ops: Vec<Operation>,
        /// Flattened attributes: inherited first, own last.
        all_attrs: Vec<Attribute>,
    },
}

impl Item {
    /// Enclosing module path.
    pub fn scope(&self) -> &[String] {
        match self {
            Item::Struct { scope, .. }
            | Item::Enum { scope, .. }
            | Item::Typedef { scope, .. }
            | Item::Exception { scope, .. }
            | Item::Interface { scope, .. } => scope,
        }
    }

    /// The item's own name.
    pub fn name(&self) -> &str {
        match self {
            Item::Struct { def, .. } => &def.name,
            Item::Enum { def, .. } => &def.name,
            Item::Typedef { def, .. } => &def.name,
            Item::Exception { def, .. } => &def.name,
            Item::Interface { def, .. } => &def.name,
        }
    }
}

/// The checked model: all items with resolved names, in declaration order.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// All items.
    pub items: Vec<Item>,
}

/// The standard repository id for a scoped name.
pub fn repo_id(scope: &[String], name: &str) -> String {
    let mut s = String::from("IDL:");
    for part in scope {
        s.push_str(part);
        s.push('/');
    }
    s.push_str(name);
    s.push_str(":1.0");
    s
}

/// Check a parsed spec and build the code-generation model.
pub fn check(spec: &Spec) -> Result<Model, CheckError> {
    // Pass 1: collect all symbols with absolute paths.
    let mut symbols: HashMap<String, SymbolKind> = HashMap::new();
    collect(&spec.defs, &mut Vec::new(), &mut symbols)?;

    // Pass 2: resolve and validate, producing the model.
    let mut model = Model::default();
    let mut iface_ops: IfaceTable = HashMap::new();
    resolve(
        &spec.defs,
        &mut Vec::new(),
        &symbols,
        &mut model,
        &mut iface_ops,
    )?;
    Ok(model)
}

fn collect(
    defs: &[Def],
    scope: &mut Vec<String>,
    symbols: &mut HashMap<String, SymbolKind>,
) -> Result<(), CheckError> {
    for def in defs {
        let (name, kind) = match def {
            Def::Module(m) => {
                scope.push(m.name.clone());
                collect(&m.defs, scope, symbols)?;
                scope.pop();
                continue;
            }
            Def::Interface(i) => (&i.name, SymbolKind::Interface),
            Def::Struct(s) => (&s.name, SymbolKind::Struct),
            Def::Enum(e) => (&e.name, SymbolKind::Enum),
            Def::Typedef(t) => (&t.name, SymbolKind::Typedef),
            Def::Exception(e) => (&e.name, SymbolKind::Exception),
        };
        let abs = abs_name(scope, name);
        if symbols.insert(abs.clone(), kind).is_some() {
            return err(format!("duplicate definition of `{abs}`"));
        }
    }
    Ok(())
}

fn abs_name(scope: &[String], name: &str) -> String {
    if scope.is_empty() {
        name.to_string()
    } else {
        format!("{}::{}", scope.join("::"), name)
    }
}

/// Resolve a (possibly scoped) name from within `scope`: innermost scope
/// outward, then absolute.
fn lookup(
    symbols: &HashMap<String, SymbolKind>,
    scope: &[String],
    name: &str,
) -> Option<(String, SymbolKind)> {
    for depth in (0..=scope.len()).rev() {
        let candidate = abs_name(&scope[..depth], name);
        if let Some(&kind) = symbols.get(&candidate) {
            return Some((candidate, kind));
        }
    }
    None
}

fn resolve_type(
    ty: &Type,
    scope: &[String],
    symbols: &HashMap<String, SymbolKind>,
    what: &str,
) -> Result<Type, CheckError> {
    Ok(match ty {
        Type::Sequence(inner) => {
            Type::Sequence(Box::new(resolve_type(inner, scope, symbols, what)?))
        }
        Type::Named(n) => {
            let Some((abs, kind)) = lookup(symbols, scope, n) else {
                return err(format!("unknown type `{n}` in {what}"));
            };
            match kind {
                SymbolKind::Interface => {
                    return err(format!(
                        "interface `{n}` used as a data type in {what}; \
                         object-reference parameters are not supported — pass a \
                         stringified IOR (`string`) instead"
                    ))
                }
                SymbolKind::Exception => {
                    return err(format!("exception `{n}` used as a data type in {what}"))
                }
                _ => Type::Named(abs),
            }
        }
        other => other.clone(),
    })
}

/// Flattened per-interface info: (all ops, all attrs, base).
type IfaceTable = HashMap<String, (Vec<Operation>, Vec<Attribute>, Option<String>)>;

fn resolve(
    defs: &[Def],
    scope: &mut Vec<String>,
    symbols: &HashMap<String, SymbolKind>,
    model: &mut Model,
    iface_ops: &mut IfaceTable,
) -> Result<(), CheckError> {
    for def in defs {
        match def {
            Def::Module(m) => {
                scope.push(m.name.clone());
                resolve(&m.defs, scope, symbols, model, iface_ops)?;
                scope.pop();
            }
            Def::Struct(s) => {
                let mut members = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (mname, mty) in &s.members {
                    if !seen.insert(mname.clone()) {
                        return err(format!("duplicate member `{mname}` in struct `{}`", s.name));
                    }
                    let what = format!("struct `{}`", s.name);
                    members.push((mname.clone(), resolve_type(mty, scope, symbols, &what)?));
                }
                model.items.push(Item::Struct {
                    scope: scope.clone(),
                    def: StructDef {
                        name: s.name.clone(),
                        members,
                    },
                });
            }
            Def::Enum(e) => {
                let mut seen = std::collections::HashSet::new();
                for m in &e.members {
                    if !seen.insert(m.clone()) {
                        return err(format!("duplicate enumerator `{m}` in enum `{}`", e.name));
                    }
                }
                if e.members.is_empty() {
                    return err(format!("enum `{}` has no enumerators", e.name));
                }
                model.items.push(Item::Enum {
                    scope: scope.clone(),
                    def: e.clone(),
                });
            }
            Def::Typedef(t) => {
                let what = format!("typedef `{}`", t.name);
                let ty = resolve_type(&t.ty, scope, symbols, &what)?;
                model.items.push(Item::Typedef {
                    scope: scope.clone(),
                    def: Typedef {
                        name: t.name.clone(),
                        ty,
                    },
                });
            }
            Def::Exception(e) => {
                let mut members = Vec::new();
                for (mname, mty) in &e.members {
                    let what = format!("exception `{}`", e.name);
                    members.push((mname.clone(), resolve_type(mty, scope, symbols, &what)?));
                }
                model.items.push(Item::Exception {
                    scope: scope.clone(),
                    repo_id: repo_id(scope, &e.name),
                    def: ExceptionDef {
                        name: e.name.clone(),
                        members,
                    },
                });
            }
            Def::Interface(i) => {
                let resolved = check_interface(i, scope, symbols)?;
                // Flatten inheritance.
                let (mut all_ops, mut all_attrs) = match &resolved.base {
                    None => (Vec::new(), Vec::new()),
                    Some(base_abs) => {
                        let Some((ops, attrs, _)) = iface_ops.get(base_abs) else {
                            return err(format!(
                                "interface `{}` inherits `{base_abs}`, which is not \
                                 defined before it",
                                i.name
                            ));
                        };
                        (ops.clone(), attrs.clone())
                    }
                };
                // Overriding is not allowed in IDL.
                for op in &resolved.ops {
                    if all_ops.iter().any(|o| o.name == op.name) {
                        return err(format!(
                            "interface `{}` redefines inherited operation `{}`",
                            i.name, op.name
                        ));
                    }
                }
                all_ops.extend(resolved.ops.iter().cloned());
                all_attrs.extend(resolved.attrs.iter().cloned());
                let abs = abs_name(scope, &i.name);
                iface_ops.insert(
                    abs,
                    (all_ops.clone(), all_attrs.clone(), resolved.base.clone()),
                );
                model.items.push(Item::Interface {
                    scope: scope.clone(),
                    repo_id: repo_id(scope, &i.name),
                    def: resolved,
                    all_ops,
                    all_attrs,
                });
            }
        }
    }
    Ok(())
}

fn check_interface(
    i: &Interface,
    scope: &[String],
    symbols: &HashMap<String, SymbolKind>,
) -> Result<Interface, CheckError> {
    let base = match &i.base {
        None => None,
        Some(b) => {
            let Some((abs, kind)) = lookup(symbols, scope, b) else {
                return err(format!("interface `{}`: unknown base `{b}`", i.name));
            };
            if kind != SymbolKind::Interface {
                return err(format!(
                    "interface `{}`: base `{b}` is not an interface",
                    i.name
                ));
            }
            Some(abs)
        }
    };
    let mut names = std::collections::HashSet::new();
    let mut ops = Vec::new();
    for op in &i.ops {
        if !names.insert(op.name.clone()) {
            return err(format!(
                "interface `{}`: duplicate operation `{}`",
                i.name, op.name
            ));
        }
        let what = format!("operation `{}::{}`", i.name, op.name);
        let ret = match &op.ret {
            Type::Void => Type::Void,
            t => resolve_type(t, scope, symbols, &what)?,
        };
        let mut params = Vec::new();
        let mut pnames = std::collections::HashSet::new();
        for p in &op.params {
            if !pnames.insert(p.name.clone()) {
                return err(format!("{what}: duplicate parameter `{}`", p.name));
            }
            params.push(Param {
                dir: p.dir,
                name: p.name.clone(),
                ty: resolve_type(&p.ty, scope, symbols, &what)?,
            });
        }
        if op.oneway {
            if op.ret != Type::Void {
                return err(format!("{what}: oneway operations must return void"));
            }
            if params.iter().any(|p| p.dir != Direction::In) {
                return err(format!(
                    "{what}: oneway operations may only have `in` parameters"
                ));
            }
            if !op.raises.is_empty() {
                return err(format!(
                    "{what}: oneway operations may not raise exceptions"
                ));
            }
        }
        let mut raises = Vec::new();
        for r in &op.raises {
            let Some((abs, kind)) = lookup(symbols, scope, r) else {
                return err(format!("{what}: unknown exception `{r}` in raises clause"));
            };
            if kind != SymbolKind::Exception {
                return err(format!(
                    "{what}: `{r}` in raises clause is not an exception"
                ));
            }
            raises.push(abs);
        }
        ops.push(Operation {
            name: op.name.clone(),
            oneway: op.oneway,
            ret,
            params,
            raises,
        });
    }
    let mut attrs = Vec::new();
    for a in &i.attrs {
        if !names.insert(a.name.clone()) {
            return err(format!(
                "interface `{}`: attribute `{}` clashes with an operation",
                i.name, a.name
            ));
        }
        let what = format!("attribute `{}::{}`", i.name, a.name);
        attrs.push(Attribute {
            readonly: a.readonly,
            name: a.name.clone(),
            ty: resolve_type(&a.ty, scope, symbols, &what)?,
        });
    }
    Ok(Interface {
        name: i.name.clone(),
        base,
        ops,
        attrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Model, CheckError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn resolves_scoped_names() {
        let m = check_src(
            "module A { struct P { double x; }; };
             module B { interface I { void f(in A::P p); }; };",
        )
        .unwrap();
        let Item::Interface { def, .. } = &m.items[1] else {
            panic!()
        };
        assert_eq!(def.ops[0].params[0].ty, Type::Named("A::P".into()));
    }

    #[test]
    fn resolves_sibling_names_unqualified() {
        let m = check_src("module A { struct P { double x; }; interface I { void f(in P p); }; };")
            .unwrap();
        let Item::Interface { def, .. } = &m.items[1] else {
            panic!()
        };
        assert_eq!(def.ops[0].params[0].ty, Type::Named("A::P".into()));
    }

    #[test]
    fn inheritance_flattens_ops() {
        let m = check_src(
            "interface Base { void a(); };
             interface Derived : Base { void b(); };",
        )
        .unwrap();
        let Item::Interface { all_ops, .. } = &m.items[1] else {
            panic!()
        };
        let names: Vec<_> = all_ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn repo_ids() {
        let m = check_src("module A { module B { interface I {}; }; };").unwrap();
        let Item::Interface { repo_id, .. } = &m.items[0] else {
            panic!()
        };
        assert_eq!(repo_id, "IDL:A/B/I:1.0");
    }

    #[test]
    fn duplicate_definition_rejected() {
        let e = check_src("struct S { double x; }; struct S { double y; };").unwrap_err();
        assert!(e.msg.contains("duplicate definition"), "{e}");
    }

    #[test]
    fn unknown_type_rejected() {
        let e = check_src("struct S { Missing x; };").unwrap_err();
        assert!(e.msg.contains("unknown type"), "{e}");
    }

    #[test]
    fn interface_as_data_type_rejected() {
        let e = check_src("interface I {}; struct S { I ref; };").unwrap_err();
        assert!(e.msg.contains("object-reference"), "{e}");
    }

    #[test]
    fn oneway_constraints_enforced() {
        let e = check_src("interface I { oneway double f(); };").unwrap_err();
        assert!(e.msg.contains("must return void"), "{e}");
        let e = check_src("interface I { oneway void f(out double x); };").unwrap_err();
        assert!(e.msg.contains("`in` parameters"), "{e}");
        let e =
            check_src("exception E {}; interface I { oneway void f() raises (E); };").unwrap_err();
        assert!(e.msg.contains("may not raise"), "{e}");
    }

    #[test]
    fn raises_must_name_exception() {
        let e =
            check_src("struct S { double x; }; interface I { void f() raises (S); };").unwrap_err();
        assert!(e.msg.contains("not an exception"), "{e}");
    }

    #[test]
    fn base_must_exist_and_be_interface() {
        let e = check_src("interface D : Nope {};").unwrap_err();
        assert!(e.msg.contains("unknown base"), "{e}");
        let e = check_src("struct S { double x; }; interface D : S {};").unwrap_err();
        assert!(e.msg.contains("not an interface"), "{e}");
    }

    #[test]
    fn redefining_inherited_op_rejected() {
        let e = check_src("interface B { void f(); }; interface D : B { void f(); };").unwrap_err();
        assert!(e.msg.contains("redefines"), "{e}");
    }

    #[test]
    fn empty_enum_rejected() {
        // The parser requires one enumerator, so build via AST directly.
        let spec = Spec {
            defs: vec![Def::Enum(EnumDef {
                name: "E".into(),
                members: vec![],
            })],
        };
        assert!(check(&spec).is_err());
    }

    #[test]
    fn duplicate_members_rejected() {
        let e = check_src("struct S { double x; double x; };").unwrap_err();
        assert!(e.msg.contains("duplicate member"), "{e}");
        let e = check_src("enum E { A, A };").unwrap_err();
        assert!(e.msg.contains("duplicate enumerator"), "{e}");
        let e = check_src("interface I { void f(); void f(); };").unwrap_err();
        assert!(e.msg.contains("duplicate operation"), "{e}");
        let e = check_src("interface I { void f(in double a, in double a); };").unwrap_err();
        assert!(e.msg.contains("duplicate parameter"), "{e}");
    }
}

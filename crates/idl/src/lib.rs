//! # idlc — a compiler for a CORBA IDL subset
//!
//! The paper's fault-tolerance proxies were written by hand, with the
//! remark that the work "could be easily automated by parsing the class
//! definition" (§3). `idlc` is that automation: it parses IDL and emits
//! Rust source containing, per interface,
//!
//! * a server-side **trait** and **skeleton** (an `orb`-compatible
//!   servant),
//! * a client-side **stub** over `orb::ObjectRef`, and
//! * a **fault-tolerant proxy** "derived from the stub" that routes every
//!   call through `ftproxy::FtProxy` (checkpoint-after-call plus
//!   COMM_FAILURE recovery).
//!
//! Supported IDL: modules, interfaces with single inheritance, operations
//! (in/out/inout, `oneway`, `raises`), attributes, structs, enums,
//! typedefs, sequences, exceptions, and the primitive types.
//!
//! ```
//! let src = "module M { interface Hello { string greet(in string who); }; };";
//! let spec = idlc::parse(src).unwrap();
//! let model = idlc::check(&spec).unwrap();
//! let rust = idlc::generate(&model, &idlc::GenOptions::default());
//! assert!(rust.contains("pub struct HelloStub"));
//! ```

pub mod ast;
mod check;
mod codegen;
mod lexer;
mod parser;
mod pretty;

pub use check::{check, repo_id, CheckError, Item, Model, SymbolKind};
pub use codegen::{generate, GenOptions};
pub use lexer::{lex, LexError, TokKind, Token};
pub use parser::{parse, ParseError};
pub use pretty::pretty;

/// Compile IDL source to Rust source in one step.
pub fn compile(src: &str, opts: &GenOptions) -> Result<String, String> {
    let spec = parse(src).map_err(|e| e.to_string())?;
    let model = check(&spec).map_err(|e| e.to_string())?;
    Ok(generate(&model, opts))
}

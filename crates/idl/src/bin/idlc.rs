//! `idlc` command-line interface: compile an IDL file to Rust source.
//!
//! Usage: `idlc INPUT.idl [-o OUTPUT.rs] [--no-ft-proxies]`

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut opts = idlc::GenOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" | "--output" => match args.next() {
                Some(p) => output = Some(p),
                None => {
                    eprintln!("idlc: -o requires a path");
                    return ExitCode::from(2);
                }
            },
            "--no-ft-proxies" => opts.ft_proxies = false,
            "-h" | "--help" => {
                println!("usage: idlc INPUT.idl [-o OUTPUT.rs] [--no-ft-proxies]");
                return ExitCode::SUCCESS;
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("idlc: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("usage: idlc INPUT.idl [-o OUTPUT.rs] [--no-ft-proxies]");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("idlc: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    opts.source_name = input.clone();
    let rust = match idlc::compile(&src, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("idlc: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rust) {
                eprintln!("idlc: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let _ = std::io::stdout().write_all(rust.as_bytes());
        }
    }
    ExitCode::SUCCESS
}

//! Abstract syntax tree for the IDL subset.

/// A parsed IDL specification (one file).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Spec {
    /// Top-level definitions.
    pub defs: Vec<Def>,
}

/// A definition at module or top level.
#[derive(Clone, Debug, PartialEq)]
pub enum Def {
    /// `module M { ... };`
    Module(Module),
    /// `interface I [: Base] { ... };`
    Interface(Interface),
    /// `struct S { ... };`
    Struct(StructDef),
    /// `enum E { A, B };`
    Enum(EnumDef),
    /// `typedef sequence<double> Vec;`
    Typedef(Typedef),
    /// `exception E { ... };`
    Exception(ExceptionDef),
}

/// A named scope of definitions.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Contained definitions.
    pub defs: Vec<Def>,
}

/// An interface declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Interface {
    /// Interface name.
    pub name: String,
    /// Single inheritance base, as a (possibly scoped) name.
    pub base: Option<String>,
    /// Operations in declaration order.
    pub ops: Vec<Operation>,
    /// Attributes in declaration order.
    pub attrs: Vec<Attribute>,
}

/// An operation declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// Operation name.
    pub name: String,
    /// Whether declared `oneway` (no reply; must return void, have no
    /// out/inout parameters, and raise nothing).
    pub oneway: bool,
    /// Return type (`Type::Void` for void).
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Exception names from the `raises(...)` clause.
    pub raises: Vec<String>,
}

/// A parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Direction.
    pub dir: Direction,
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// Parameter passing direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    In,
    /// Server → client.
    Out,
    /// Both ways.
    InOut,
}

/// An `attribute` declaration (maps to `_get_x` / `_set_x` operations).
#[derive(Clone, Debug, PartialEq)]
pub struct Attribute {
    /// Whether `readonly` (no setter).
    pub readonly: bool,
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: Type,
}

/// A struct declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Members in declaration order.
    pub members: Vec<(String, Type)>,
}

/// An enum declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Enumerator names; discriminants are indices.
    pub members: Vec<String>,
}

/// A typedef.
#[derive(Clone, Debug, PartialEq)]
pub struct Typedef {
    /// New name.
    pub name: String,
    /// Aliased type.
    pub ty: Type,
}

/// An exception declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ExceptionDef {
    /// Exception name.
    pub name: String,
    /// Members in declaration order.
    pub members: Vec<(String, Type)>,
}

/// An IDL type.
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// `void` (return type only).
    Void,
    /// `boolean`
    Boolean,
    /// `octet`
    Octet,
    /// `short`
    Short,
    /// `unsigned short`
    UShort,
    /// `long`
    Long,
    /// `unsigned long`
    ULong,
    /// `long long`
    LongLong,
    /// `unsigned long long`
    ULongLong,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `string`
    String,
    /// `sequence<T>`
    Sequence(Box<Type>),
    /// A (possibly scoped, `A::B`) reference to a named type.
    Named(String),
}

impl Type {
    /// The Rust spelling of this type (named types keep their IDL name,
    /// with `::` mapped to Rust path separators).
    pub fn rust(&self) -> String {
        match self {
            Type::Void => "()".into(),
            Type::Boolean => "bool".into(),
            Type::Octet => "u8".into(),
            Type::Short => "i16".into(),
            Type::UShort => "u16".into(),
            Type::Long => "i32".into(),
            Type::ULong => "u32".into(),
            Type::LongLong => "i64".into(),
            Type::ULongLong => "u64".into(),
            Type::Float => "f32".into(),
            Type::Double => "f64".into(),
            Type::String => "String".into(),
            Type::Sequence(t) => format!("Vec<{}>", t.rust()),
            Type::Named(n) => n.clone(),
        }
    }
}

//! Tokenizer for the IDL subset.

use std::fmt;

/// A token with its source position (1-based line/column).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal (used for enum values and bounds).
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    Scope,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "`{s}`"),
            TokKind::Int(n) => write!(f, "`{n}`"),
            TokKind::LBrace => f.write_str("`{`"),
            TokKind::RBrace => f.write_str("`}`"),
            TokKind::LParen => f.write_str("`(`"),
            TokKind::RParen => f.write_str("`)`"),
            TokKind::Lt => f.write_str("`<`"),
            TokKind::Gt => f.write_str("`>`"),
            TokKind::Semi => f.write_str("`;`"),
            TokKind::Comma => f.write_str("`,`"),
            TokKind::Colon => f.write_str("`:`"),
            TokKind::Scope => f.write_str("`::`"),
            TokKind::Eq => f.write_str("`=`"),
            TokKind::Eof => f.write_str("end of file"),
        }
    }
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} at {}:{}",
            self.ch, self.line, self.col
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize IDL source. Handles `//` line comments, `/* */` block comments,
/// and `#pragma`/preprocessor lines (skipped to end of line).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let (tline, tcol) = (line, col);
        let Some(&c) = chars.peek() else {
            out.push(Token {
                kind: TokKind::Eof,
                line,
                col,
            });
            return Ok(out);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                // Preprocessor line: skip to newline.
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c2) = chars.peek() {
                            if c2 == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut prev = '\0';
                        loop {
                            let Some(c2) = bump!() else {
                                return Err(LexError { ch: '*', line, col });
                            };
                            if prev == '*' && c2 == '/' {
                                break;
                            }
                            prev = c2;
                        }
                    }
                    _ => {
                        return Err(LexError {
                            ch: '/',
                            line: tline,
                            col: tcol,
                        })
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Ident(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n = 0u64;
                while let Some(&c2) = chars.peek() {
                    if let Some(d) = c2.to_digit(10) {
                        n = n * 10 + d as u64;
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Int(n),
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                bump!();
                let kind = match c {
                    '{' => TokKind::LBrace,
                    '}' => TokKind::RBrace,
                    '(' => TokKind::LParen,
                    ')' => TokKind::RParen,
                    '<' => TokKind::Lt,
                    '>' => TokKind::Gt,
                    ';' => TokKind::Semi,
                    ',' => TokKind::Comma,
                    '=' => TokKind::Eq,
                    ':' => {
                        if chars.peek() == Some(&':') {
                            bump!();
                            TokKind::Scope
                        } else {
                            TokKind::Colon
                        }
                    }
                    other => {
                        return Err(LexError {
                            ch: other,
                            line: tline,
                            col: tcol,
                        })
                    }
                };
                out.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("interface W { };"),
            vec![
                TokKind::Ident("interface".into()),
                TokKind::Ident("W".into()),
                TokKind::LBrace,
                TokKind::RBrace,
                TokKind::Semi,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// line\ninterface /* block\nmore */ W;";
        assert_eq!(
            kinds(src),
            vec![
                TokKind::Ident("interface".into()),
                TokKind::Ident("W".into()),
                TokKind::Semi,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn preprocessor_lines_are_skipped() {
        let src = "#pragma prefix \"x\"\nmodule M;";
        assert_eq!(
            kinds(src),
            vec![
                TokKind::Ident("module".into()),
                TokKind::Ident("M".into()),
                TokKind::Semi,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn scope_and_colon() {
        assert_eq!(
            kinds("A::B : C"),
            vec![
                TokKind::Ident("A".into()),
                TokKind::Scope,
                TokKind::Ident("B".into()),
                TokKind::Colon,
                TokKind::Ident("C".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_eq() {
        assert_eq!(
            kinds("X = 42"),
            vec![
                TokKind::Ident("X".into()),
                TokKind::Eq,
                TokKind::Int(42),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_char_reported() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!((err.line, err.col), (1, 3));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }
}

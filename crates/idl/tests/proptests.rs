//! Property test: for arbitrary well-formed ASTs, `parse(pretty(ast))`
//! reproduces the AST exactly — the printer and parser are inverses.

use idlc::ast::*;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid IDL keywords by prefixing.
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("id_{s}"))
}

fn leaf_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Boolean),
        Just(Type::Octet),
        Just(Type::Short),
        Just(Type::UShort),
        Just(Type::Long),
        Just(Type::ULong),
        Just(Type::LongLong),
        Just(Type::ULongLong),
        Just(Type::Float),
        Just(Type::Double),
        Just(Type::String),
    ]
}

fn data_type() -> impl Strategy<Value = Type> {
    leaf_type().prop_recursive(2, 8, 2, |inner| {
        inner.prop_map(|t| Type::Sequence(Box::new(t)))
    })
}

fn param() -> impl Strategy<Value = Param> {
    (
        prop_oneof![
            Just(Direction::In),
            Just(Direction::Out),
            Just(Direction::InOut)
        ],
        ident(),
        data_type(),
    )
        .prop_map(|(dir, name, ty)| Param { dir, name, ty })
}

fn operation() -> impl Strategy<Value = Operation> {
    (
        ident(),
        prop_oneof![Just(Type::Void), data_type().boxed()],
        proptest::collection::vec(param(), 0..4),
        any::<bool>(),
    )
        .prop_map(|(name, ret, mut params, oneway)| {
            // Keep oneway ops legal: void return, in-params only.
            let oneway = oneway && ret == Type::Void;
            if oneway {
                for p in &mut params {
                    p.dir = Direction::In;
                }
            }
            // Parameter names must be unique.
            for (i, p) in params.iter_mut().enumerate() {
                p.name = format!("{}_{i}", p.name);
            }
            Operation {
                name,
                oneway,
                ret,
                params,
                raises: vec![],
            }
        })
}

fn interface() -> impl Strategy<Value = Interface> {
    (
        ident(),
        proptest::collection::vec(operation(), 0..4),
        proptest::collection::vec((any::<bool>(), ident(), data_type()), 0..3),
    )
        .prop_map(|(name, mut ops, attrs)| {
            for (i, op) in ops.iter_mut().enumerate() {
                op.name = format!("{}_{i}", op.name);
            }
            Interface {
                name,
                base: None,
                ops,
                attrs: attrs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (readonly, name, ty))| Attribute {
                        readonly,
                        name: format!("{name}_{i}"),
                        ty,
                    })
                    .collect(),
            }
        })
}

fn def() -> impl Strategy<Value = Def> {
    prop_oneof![
        interface().prop_map(Def::Interface),
        (
            ident(),
            proptest::collection::vec((ident(), data_type()), 0..4)
        )
            .prop_map(|(name, members)| {
                let members = members
                    .into_iter()
                    .enumerate()
                    .map(|(i, (n, t))| (format!("{n}_{i}"), t))
                    .collect();
                Def::Struct(StructDef { name, members })
            }),
        (ident(), proptest::collection::vec(ident(), 1..5)).prop_map(|(name, members)| {
            let members = members
                .into_iter()
                .enumerate()
                .map(|(i, m)| format!("{m}_{i}"))
                .collect();
            Def::Enum(EnumDef { name, members })
        }),
        (ident(), data_type()).prop_map(|(name, ty)| Def::Typedef(Typedef { name, ty })),
        (
            ident(),
            proptest::collection::vec((ident(), data_type()), 0..3)
        )
            .prop_map(|(name, members)| {
                let members = members
                    .into_iter()
                    .enumerate()
                    .map(|(i, (n, t))| (format!("{n}_{i}"), t))
                    .collect();
                Def::Exception(ExceptionDef { name, members })
            }),
    ]
}

fn spec() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(def(), 0..5).prop_map(|mut defs| {
        // Top-level names must be unique for the checker, and unique names
        // also make equality unambiguous for the parser round-trip.
        for (i, d) in defs.iter_mut().enumerate() {
            match d {
                Def::Interface(x) => x.name = format!("{}_{i}", x.name),
                Def::Struct(x) => x.name = format!("{}_{i}", x.name),
                Def::Enum(x) => x.name = format!("{}_{i}", x.name),
                Def::Typedef(x) => x.name = format!("{}_{i}", x.name),
                Def::Exception(x) => x.name = format!("{}_{i}", x.name),
                Def::Module(_) => unreachable!("not generated"),
            }
        }
        Spec { defs }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_pretty_round_trip(ast in spec()) {
        let printed = idlc::pretty(&ast);
        let reparsed = idlc::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource:\n{printed}"));
        prop_assert_eq!(ast, reparsed);
    }

    #[test]
    fn generated_code_is_produced_for_valid_specs(ast in spec()) {
        let printed = idlc::pretty(&ast);
        // Not all generated specs type-check (e.g. duplicate member names
        // across attrs/ops are avoided by construction), but when they do,
        // codegen must not panic.
        if let Ok(model) = idlc::check(&idlc::parse(&printed).unwrap()) {
            let code = idlc::generate(&model, &idlc::GenOptions::default());
            prop_assert!(code.contains("Generated by idlc"));
        }
    }
}

//! `ldft-monitor` — live cluster monitoring for the LD/FT runtime.
//!
//! Control-system CORBA deployments watch themselves through push-based
//! event channels; this crate is that shape for our cluster (DESIGN.md
//! §10):
//!
//! * an **event channel** — a normal CORBA object ([`EventChannel`])
//!   bound in naming as [`EVENT_CHANNEL_NAME`], to which the Winner node
//!   managers, the FT proxy, the store replicas, and the kernel itself
//!   publish typed [`Event`]s via `oneway push` batches;
//! * an **online doctor** ([`Doctor`]) consuming the stream in
//!   virtual-time publish order: per-request critical-path latency
//!   attribution plus four runtime invariants (recovery-time budget,
//!   quorum health, checkpoint freshness, load-placement sanity);
//! * a **flight recorder** keeping the last N events per host and dumping
//!   a deterministic post-mortem (event tails + open episodes + verdicts)
//!   on a host crash, an invariant violation, or the close of a recovery
//!   episode (so the dump spans the whole failure-detected → recovered
//!   arc, not just its onset).
//!
//! Everything is virtual-time deterministic: same seed ⇒ byte-identical
//! doctor report, so the report composes with the repo's double-run CI
//! `cmp` gates.
//!
//! The crate deliberately depends only on `simnet`/`cdr`/`orb`/`obs`; the
//! naming-service binding of the channel is wired where the cluster boots
//! (`corba-runtime`), keeping `winner`/`ft`/`store` free to depend on
//! this crate without a cycle through `cosnaming`.

mod channel;
mod doctor;
mod events;
mod publisher;
mod subscriber;

pub use channel::{ChannelState, EventChannel, MonitorHandle, KERNEL_PID};
pub use doctor::{Doctor, MonitorConfig};
pub use events::{milli, ops, Event, EventBody, EVENT_CHANNEL_NAME, EVENT_CHANNEL_TYPE};
pub use publisher::Publisher;
pub use subscriber::Subscription;

//! The event channel: ordered ingest, the watermark that restores
//! publish order, subscriber rings, and the flight recorder.
//!
//! # Ordering and determinism
//!
//! Publishers stamp events with their own virtual clock, but pushes cross
//! the simulated network, so arrival order at the channel can differ from
//! publish order when publishers sit on hosts with different latencies.
//! The channel therefore buffers arrivals in a `BTreeMap` keyed by
//! [`Event::key`] `(time, host, pid, seq)` and only releases events to the
//! doctor/recorder/subscribers once the **watermark** — channel-local time
//! minus [`crate::MonitorConfig::reorder_slack`] — has passed them. With
//! the slack well above the maximum delivery delay, released order equals
//! publish order, and because the whole simulation is deterministic the
//! stream (and everything derived from it) is byte-identical across
//! same-seed runs. An event that still arrives behind the watermark (only
//! possible for pre-boot publisher buffers) is processed immediately and
//! counted in `monitor.late_events`.
//!
//! [`ChannelState::finalize`] drains whatever the watermark still holds;
//! the driver calls it after the run so the report covers every event.

use std::collections::{BTreeMap, VecDeque};

use obs::Obs;
use orb::{reply, CallCtx, Exception, Servant, SystemException};
use simnet::{KernelEvent, Shared, SimTime};

use crate::doctor::{Doctor, MonitorConfig};
use crate::events::{ops, Event, EventBody};

/// Publisher pid used for kernel-origin events (there is no sim process
/// behind them).
pub const KERNEL_PID: u32 = u32::MAX;

/// A watermark hold for one publisher host the channel cannot currently
/// hear from (a partition cut it off). While any hold is active the
/// watermark stays at the earliest hold's floor, so events the host flushes
/// after the heal are ordered normally instead of landing behind the
/// high-water mark and being counted late (DESIGN.md §13).
#[derive(Debug)]
struct Hold {
    /// Watermark cap: the virtual time the cut happened.
    floor_ns: u64,
    /// Overlapping cuts isolating this host; the hold lifts when the last
    /// one heals (plus the flush grace).
    depth: u32,
    /// Once healed: drop the hold when the channel clock passes this.
    release_at_ns: Option<u64>,
}

/// One subscriber's bounded ring.
#[derive(Debug, Default)]
struct SubRing {
    depth: usize,
    ring: VecDeque<Event>,
    dropped: u64,
}

/// Per-host bounded event tails plus the post-mortems already dumped.
#[derive(Debug)]
struct FlightRecorder {
    ring: usize,
    /// host -> rendered event lines, oldest first, at most `ring` each.
    tails: BTreeMap<u32, VecDeque<String>>,
    dumps: Vec<String>,
    max_dumps: usize,
    suppressed_dumps: u64,
}

impl FlightRecorder {
    fn record(&mut self, ev: &Event) {
        let line = render_line(ev);
        let tail = self.tails.entry(ev.host).or_default();
        if tail.len() == self.ring {
            tail.pop_front();
        }
        tail.push_back(line);
    }

    fn dump(&mut self, time_ns: u64, reason: &str, episodes: &[String], verdicts: &[String]) {
        if self.dumps.len() >= self.max_dumps {
            self.suppressed_dumps += 1;
            return;
        }
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(s, "== post-mortem @{time_ns}ns: {reason} ==");
        for (host, tail) in &self.tails {
            let _ = writeln!(s, "-- host h{host} event tail --");
            for line in tail {
                let _ = writeln!(s, "  {line}");
            }
        }
        let _ = writeln!(s, "-- open episodes --");
        if episodes.is_empty() {
            let _ = writeln!(s, "  (none)");
        }
        for e in episodes {
            let _ = writeln!(s, "  {e}");
        }
        let _ = writeln!(s, "-- doctor verdicts --");
        if verdicts.is_empty() {
            let _ = writeln!(s, "  (none)");
        }
        for v in verdicts {
            let _ = writeln!(s, "  {v}");
        }
        let _ = writeln!(s, "== end post-mortem ==");
        self.dumps.push(s);
    }
}

/// Deterministic one-line rendering of an event for tails and dumps.
fn render_line(ev: &Event) -> String {
    let detail = ev.body.detail();
    let who = if ev.pid == KERNEL_PID {
        "kernel".to_string()
    } else {
        format!("p{}", ev.pid)
    };
    if detail.is_empty() {
        format!("{}ns h{} {} {}", ev.time_ns, ev.host, who, ev.body.kind())
    } else {
        format!(
            "{}ns h{} {} {} {}",
            ev.time_ns,
            ev.host,
            who,
            ev.body.kind(),
            detail
        )
    }
}

/// The channel's shared state: servant frontend and kernel hook both feed
/// it; the driver finalizes and renders it.
#[derive(Debug)]
pub struct ChannelState {
    cfg: MonitorConfig,
    obs: Option<Obs>,
    /// Events past the watermark, awaiting release, in publish order.
    pending: BTreeMap<(u64, u32, u32, u64), Event>,
    watermark_ns: u64,
    doctor: Doctor,
    recorder: FlightRecorder,
    subs: BTreeMap<u32, SubRing>,
    next_sub: u32,
    /// Ring drops carried over from unsubscribed rings, so `stats` stays
    /// monotone across detaches.
    retired_dropped: u64,
    kernel_seq: u64,
    received: u64,
    late: u64,
    /// Publisher hosts currently cut off from the channel: host -> hold.
    holds: BTreeMap<u32, Hold>,
}

impl ChannelState {
    /// Fresh channel state with the given thresholds and metric sink.
    pub fn new(cfg: MonitorConfig, obs: Option<Obs>) -> Self {
        let recorder = FlightRecorder {
            ring: cfg.flight_ring.max(1),
            tails: BTreeMap::new(),
            dumps: Vec::new(),
            max_dumps: cfg.max_dumps.max(1),
            suppressed_dumps: 0,
        };
        let doctor = Doctor::new(cfg.clone());
        ChannelState {
            cfg,
            obs,
            pending: BTreeMap::new(),
            watermark_ns: 0,
            doctor,
            recorder,
            subs: BTreeMap::new(),
            next_sub: 1,
            retired_dropped: 0,
            kernel_seq: 0,
            received: 0,
            late: 0,
            holds: BTreeMap::new(),
        }
    }

    /// Ingest one published event, then advance the watermark to
    /// `now - reorder_slack` and release everything behind it.
    pub fn ingest(&mut self, now: SimTime, ev: Event) {
        self.received += 1;
        if let Some(o) = &self.obs {
            o.counter_add("monitor.events", 1);
        }
        if ev.time_ns < self.watermark_ns {
            // Arrived behind an already-advanced watermark (pre-boot
            // publisher buffer): analyze immediately rather than reorder
            // what was already released.
            self.late += 1;
            if let Some(o) = &self.obs {
                o.counter_add("monitor.late_events", 1);
            }
            self.release(ev);
        } else {
            self.pending.insert(ev.key(), ev);
        }
        self.advance(now);
    }

    /// Translate a kernel lifecycle event and ingest it. Kernel events are
    /// delivered at their exact fire time (no network between the kernel
    /// and its own hook) — which is also why partition events can install
    /// watermark holds before any cut-off publisher data goes missing.
    pub fn ingest_kernel(&mut self, now: SimTime, kev: &KernelEvent) {
        fn ids(hosts: &[simnet::HostId]) -> Vec<u32> {
            hosts.iter().map(|h| h.0).collect()
        }
        let (host, body) = match kev {
            KernelEvent::ProcSpawn { name, host, .. } => {
                (host.0, EventBody::ProcSpawn { name: name.clone() })
            }
            KernelEvent::ProcExit { name, host, .. } => {
                (host.0, EventBody::ProcExit { name: name.clone() })
            }
            KernelEvent::ProcKill { name, host, .. } => {
                (host.0, EventBody::ProcKill { name: name.clone() })
            }
            KernelEvent::HostCrash(h) => (h.0, EventBody::HostCrash),
            KernelEvent::HostRestart(h) => (h.0, EventBody::HostRestart),
            KernelEvent::PartitionStart { a, b, oneway } => {
                for h in self.hold_targets(a, b, *oneway) {
                    let hold = self.holds.entry(h).or_insert(Hold {
                        floor_ns: now.as_nanos(),
                        depth: 0,
                        release_at_ns: None,
                    });
                    hold.depth += 1;
                    hold.floor_ns = hold.floor_ns.min(now.as_nanos());
                    // A re-cut cancels any pending post-heal release.
                    hold.release_at_ns = None;
                }
                (
                    a.first().map(|h| h.0).unwrap_or(0),
                    EventBody::PartitionStart {
                        a_hosts: ids(a),
                        b_hosts: ids(b),
                        oneway: *oneway,
                    },
                )
            }
            KernelEvent::PartitionHeal { a, b, oneway } => {
                let release_at = now.as_nanos() + self.cfg.heal_flush_grace.as_nanos();
                for h in self.hold_targets(a, b, *oneway) {
                    if let Some(hold) = self.holds.get_mut(&h) {
                        hold.depth = hold.depth.saturating_sub(1);
                        if hold.depth == 0 {
                            hold.release_at_ns = Some(release_at);
                        }
                    }
                }
                (
                    a.first().map(|h| h.0).unwrap_or(0),
                    EventBody::PartitionHeal {
                        a_hosts: ids(a),
                        b_hosts: ids(b),
                        oneway: *oneway,
                    },
                )
            }
            KernelEvent::LinkDegraded(x, y) => (
                x.0,
                EventBody::LinkDegraded {
                    peer_a: x.0,
                    peer_b: y.0,
                },
            ),
            KernelEvent::LinkRestored(x, y) => (
                x.0,
                EventBody::LinkRestored {
                    peer_a: x.0,
                    peer_b: y.0,
                },
            ),
            KernelEvent::ClockSkewSet(h, skew_ns) => {
                (h.0, EventBody::ClockSkew { skew_ns: *skew_ns })
            }
        };
        let seq = self.kernel_seq;
        self.kernel_seq += 1;
        self.ingest(
            now,
            Event {
                time_ns: now.as_nanos(),
                host,
                pid: KERNEL_PID,
                seq,
                body,
            },
        );
    }

    /// Which publisher hosts a cut between `a` and `b` isolates from the
    /// channel. For one-way cuts only the `a` → `b` direction is lost, and
    /// pushes flow publisher → channel, so `a` is cut off only when the
    /// channel sits in `b`.
    fn hold_targets(&self, a: &[simnet::HostId], b: &[simnet::HostId], oneway: bool) -> Vec<u32> {
        let ch = self.cfg.channel_host;
        let in_a = a.iter().any(|h| h.0 == ch);
        let in_b = b.iter().any(|h| h.0 == ch);
        if oneway {
            if in_b {
                a.iter().map(|h| h.0).collect()
            } else {
                Vec::new()
            }
        } else if in_a {
            b.iter().map(|h| h.0).collect()
        } else if in_b {
            a.iter().map(|h| h.0).collect()
        } else {
            Vec::new()
        }
    }

    fn advance(&mut self, now: SimTime) {
        let now_ns = now.as_nanos();
        self.holds
            .retain(|_, h| h.release_at_ns.is_none_or(|r| now_ns < r));
        let mut wm = now_ns.saturating_sub(self.cfg.reorder_slack.as_nanos());
        for h in self.holds.values() {
            wm = wm.min(h.floor_ns);
        }
        if wm <= self.watermark_ns {
            return;
        }
        self.watermark_ns = wm;
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 > wm {
                break;
            }
            let ev = entry.remove();
            self.release(ev);
        }
    }

    /// Hand one event, now in stream order, to the recorder, the doctor,
    /// and every subscriber ring.
    fn release(&mut self, ev: Event) {
        self.recorder.record(&ev);
        let fired = self.doctor.on_event(&ev);
        let crash = matches!(ev.body, EventBody::HostCrash);
        // A closing recovery episode also dumps: at crash time the tail
        // ends at the failure, while at close time it spans the whole
        // episode (failure-detected … recovery-finished) plus the
        // recovery-budget verdict the doctor just issued.
        let episode_closed = match &ev.body {
            EventBody::RecoveryFinished { target, .. } => Some(target.clone()),
            _ => None,
        };
        if crash || episode_closed.is_some() || !fired.is_empty() {
            let reason = if crash {
                format!("host h{} crashed", ev.host)
            } else if !fired.is_empty() {
                format!("invariant violated: {}", fired.join(", "))
            } else {
                format!(
                    "recovery episode closed: {}",
                    episode_closed.unwrap_or_default()
                )
            };
            self.recorder.dump(
                ev.time_ns,
                &reason,
                &self.doctor.open_episodes(),
                self.doctor.verdicts(),
            );
            if let Some(o) = &self.obs {
                o.counter_add("monitor.dumps", 1);
            }
        }
        let mut dropped = 0u64;
        for sub in self.subs.values_mut() {
            if sub.ring.len() == sub.depth {
                sub.ring.pop_front();
                sub.dropped += 1;
                dropped += 1;
            }
            sub.ring.push_back(ev.clone());
        }
        if dropped > 0 {
            if let Some(o) = &self.obs {
                o.counter_add("monitor.sub_dropped", dropped);
            }
        }
    }

    /// Register a subscriber with a ring of `depth` events; returns its id.
    pub fn subscribe(&mut self, depth: u32) -> u32 {
        let id = self.next_sub;
        self.next_sub += 1;
        self.subs.insert(
            id,
            SubRing {
                depth: (depth.max(1)) as usize,
                ring: VecDeque::new(),
                dropped: 0,
            },
        );
        id
    }

    /// Drop a subscriber's ring; its pending events are discarded and its
    /// drop count is folded into [`ChannelState::stats`]. Returns whether
    /// the id was live.
    pub fn unsubscribe(&mut self, sub_id: u32) -> bool {
        match self.subs.remove(&sub_id) {
            Some(sub) => {
                self.retired_dropped += sub.dropped;
                true
            }
            None => false,
        }
    }

    /// Drain up to `max` events from a subscriber's ring, oldest first.
    /// Unknown ids yield an empty batch.
    pub fn pull(&mut self, sub_id: u32, max: u32) -> Vec<Event> {
        let Some(sub) = self.subs.get_mut(&sub_id) else {
            return Vec::new();
        };
        let n = (max as usize).min(sub.ring.len());
        sub.ring.drain(..n).collect()
    }

    /// `(events ingested, subscriber-ring drops)` so far. Drops include
    /// rings already retired by [`ChannelState::unsubscribe`].
    pub fn stats(&self) -> (u64, u64) {
        (
            self.received,
            self.retired_dropped + self.subs.values().map(|s| s.dropped).sum::<u64>(),
        )
    }

    /// Release everything the watermark still holds (end of run), run the
    /// doctor's end-of-run pass, and export summary gauges.
    pub fn finalize(&mut self, now: SimTime) {
        self.holds.clear();
        self.advance(now);
        while let Some(entry) = self.pending.first_entry() {
            let ev = entry.remove();
            self.release(ev);
        }
        self.watermark_ns = now.as_nanos();
        let fired = self.doctor.finalize(now.as_nanos());
        if !fired.is_empty() {
            self.recorder.dump(
                now.as_nanos(),
                &format!("invariant violated at end of run: {}", fired.join(", ")),
                &self.doctor.open_episodes(),
                self.doctor.verdicts(),
            );
            if let Some(o) = &self.obs {
                o.counter_add("monitor.dumps", 1);
            }
        }
        if let Some(o) = self.obs.clone() {
            o.gauge_set("monitor.violations", self.doctor.violation_count() as f64);
            o.gauge_set("monitor.late_events", self.late as f64);
        }
    }

    /// Total invariant violations the doctor has recorded.
    pub fn violation_count(&self) -> u64 {
        self.doctor.violation_count()
    }

    /// Post-mortem dumps recorded so far (at most `max_dumps`).
    pub fn dumps(&self) -> &[String] {
        &self.recorder.dumps
    }

    /// Render the full doctor report: analysis, then the post-mortems.
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "doctor report");
        let _ = writeln!(out, "=============");
        let _ = writeln!(
            out,
            "ingested: {} events ({} late, watermark {}ns)",
            self.received, self.late, self.watermark_ns
        );
        self.doctor.render_report(&mut out);
        let _ = writeln!(out, "post-mortems: {}", self.recorder.dumps.len());
        for d in &self.recorder.dumps {
            out.push_str(d);
        }
        if self.recorder.suppressed_dumps > 0 {
            let _ = writeln!(
                out,
                "({} further post-mortem triggers suppressed)",
                self.recorder.suppressed_dumps
            );
        }
        out
    }
}

/// Everything the driver needs to hold on to a deployed channel: the
/// shared analysis state and the cell the channel publishes its IOR into
/// (publishers poll the cell; the paper-style naming binding exists too).
#[derive(Clone, Debug)]
pub struct MonitorHandle {
    /// The channel/doctor/recorder state.
    pub state: Shared<ChannelState>,
    /// Stringified IOR of the channel once it is serving.
    pub ior: Shared<Option<String>>,
}

impl MonitorHandle {
    /// Fresh handle with the given thresholds and metric sink.
    pub fn new(cfg: MonitorConfig, obs: Option<Obs>) -> Self {
        MonitorHandle {
            state: Shared::new(ChannelState::new(cfg, obs)),
            ior: Shared::new(None),
        }
    }

    /// Drain the watermark at end of run; call before [`Self::report`].
    pub fn finalize(&self, now: SimTime) {
        self.state.lock().finalize(now);
    }

    /// Total invariant violations the doctor recorded.
    pub fn violations(&self) -> u64 {
        self.state.lock().violation_count()
    }

    /// Render the doctor report (deterministic).
    pub fn report(&self) -> String {
        self.state.lock().render_report()
    }

    /// Post-mortem dumps, concatenated.
    pub fn dumps(&self) -> String {
        self.state.lock().dumps().concat()
    }
}

/// The CORBA servant fronting a [`ChannelState`] — a normal object a POA
/// activates; publishers reach it with `oneway push` batches.
pub struct EventChannel {
    state: Shared<ChannelState>,
}

impl EventChannel {
    /// Servant over the given shared state.
    pub fn new(state: Shared<ChannelState>) -> Self {
        EventChannel { state }
    }
}

impl Servant for EventChannel {
    fn dispatch(
        &mut self,
        call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, Exception> {
        let now = call.ctx.now();
        match op {
            ops::PUSH => {
                let (batch,): (Vec<Event>,) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let mut st = self.state.lock();
                for ev in batch {
                    st.ingest(now, ev);
                }
                reply(&())
            }
            ops::SUBSCRIBE => {
                let (depth,): (u32,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let id = self.state.lock().subscribe(depth);
                reply(&id)
            }
            ops::UNSUBSCRIBE => {
                let (sub_id,): (u32,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let live = self.state.lock().unsubscribe(sub_id);
                reply(&live)
            }
            ops::PULL => {
                let (sub_id, max): (u32, u32) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let batch = self.state.lock().pull(sub_id, max);
                reply(&batch)
            }
            ops::STATS => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                let (received, dropped) = self.state.lock().stats();
                reply(&(received, dropped))
            }
            other => Err(SystemException::bad_operation(other).into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    fn mk(time_ns: u64, host: u32, pid: u32, seq: u64) -> Event {
        Event {
            time_ns,
            host,
            pid,
            seq,
            body: EventBody::ProcSpawn {
                name: format!("p-{host}-{seq}"),
            },
        }
    }

    fn state() -> ChannelState {
        ChannelState::new(
            MonitorConfig {
                reorder_slack: SimDuration::from_nanos(100),
                ..MonitorConfig::default()
            },
            None,
        )
    }

    #[test]
    fn watermark_restores_publish_order() {
        let mut st = state();
        let sub = st.subscribe(16);
        // Arrival order inverted relative to publish time.
        st.ingest(SimTime::from_nanos(50), mk(20, 2, 1, 0));
        st.ingest(SimTime::from_nanos(60), mk(10, 1, 1, 0));
        // Nothing released yet: watermark is behind both.
        assert!(st.pull(sub, 10).is_empty());
        st.ingest(SimTime::from_nanos(200), mk(95, 3, 1, 0));
        let got = st.pull(sub, 10);
        let times: Vec<u64> = got.iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![10, 20, 95]);
    }

    #[test]
    fn subscriber_ring_drops_oldest_and_counts() {
        let mut st = state();
        let sub = st.subscribe(2);
        for i in 0..5u64 {
            st.ingest(SimTime::from_nanos(1_000 + i), mk(i, 0, 1, i));
        }
        st.finalize(SimTime::from_nanos(10_000));
        let got = st.pull(sub, 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].time_ns, 3);
        assert_eq!(got[1].time_ns, 4);
        assert_eq!(st.stats(), (5, 3));
    }

    #[test]
    fn host_crash_dumps_a_post_mortem() {
        let mut st = state();
        st.ingest(SimTime::from_nanos(10), mk(5, 1, 1, 0));
        st.ingest_kernel(
            SimTime::from_nanos(500),
            &KernelEvent::HostCrash(simnet::HostId(1)),
        );
        st.finalize(SimTime::from_nanos(1_000));
        assert_eq!(st.dumps().len(), 1);
        let dump = &st.dumps()[0];
        assert!(dump.contains("host h1 crashed"));
        assert!(dump.contains("host h1 down since 500ns"));
        assert!(dump.contains("proc-spawn"));
    }

    #[test]
    fn unsubscribe_retires_ring_and_keeps_drop_stats() {
        let mut st = state();
        let keep = st.subscribe(2);
        let gone = st.subscribe(2);
        for i in 0..5u64 {
            st.ingest(SimTime::from_nanos(1_000 + i), mk(i, 0, 1, i));
        }
        st.finalize(SimTime::from_nanos(10_000));
        // Both depth-2 rings dropped 3 of the 5 events.
        assert_eq!(st.stats(), (5, 6));
        assert!(st.unsubscribe(gone));
        assert!(!st.unsubscribe(gone), "second detach finds the id dead");
        // The retired ring's drops survive; its pending events are gone.
        assert_eq!(st.stats(), (5, 6));
        assert!(st.pull(gone, 10).is_empty());
        assert_eq!(st.pull(keep, 10).len(), 2, "live ring unaffected");
        // New events no longer land in (or drop from) the retired ring.
        st.ingest(SimTime::from_nanos(20_000), mk(6, 0, 1, 6));
        st.finalize(SimTime::from_nanos(30_000));
        assert_eq!(st.stats(), (6, 6));
    }

    #[test]
    fn partition_hold_orders_post_heal_flush() {
        use simnet::HostId;
        let mut st = ChannelState::new(
            MonitorConfig {
                reorder_slack: SimDuration::from_nanos(100),
                heal_flush_grace: SimDuration::from_nanos(1_000),
                ..MonitorConfig::default()
            },
            None,
        );
        let sub = st.subscribe(32);
        // Host 1 is cut off from the channel (host 0) at t=1000 and
        // buffers everything it publishes during the outage.
        st.ingest_kernel(
            SimTime::from_nanos(1_000),
            &KernelEvent::PartitionStart {
                a: vec![HostId(1)],
                b: vec![HostId(0)],
                oneway: false,
            },
        );
        // Host 2 keeps publishing through the outage; without the hold the
        // watermark would race ahead to ~3_950ns here.
        st.ingest(SimTime::from_nanos(2_050), mk(2_000, 2, 1, 0));
        st.ingest(SimTime::from_nanos(4_050), mk(4_000, 2, 1, 1));
        // Heal at 5_000; host 1 flushes its outage buffer shortly after.
        st.ingest_kernel(
            SimTime::from_nanos(5_000),
            &KernelEvent::PartitionHeal {
                a: vec![HostId(1)],
                b: vec![HostId(0)],
                oneway: false,
            },
        );
        st.ingest(SimTime::from_nanos(5_100), mk(1_500, 1, 1, 0));
        st.ingest(SimTime::from_nanos(5_100), mk(3_500, 1, 1, 1));
        // Grace expires at 6_000; the next arrival lifts the hold.
        st.ingest(SimTime::from_nanos(7_000), mk(6_800, 2, 1, 2));
        assert_eq!(
            st.late, 0,
            "flushed events must not land behind the watermark"
        );
        let got = st.pull(sub, 32);
        let times: Vec<u64> = got.iter().map(|e| e.time_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "released order must equal publish order");
        assert!(times.contains(&1_500) && times.contains(&3_500));
        assert_eq!(st.violation_count(), 0);
    }

    #[test]
    fn oneway_cut_away_from_channel_does_not_hold() {
        use simnet::HostId;
        let mut st = state();
        // Channel host 0 -> host 1 drops; pushes from host 1 still arrive,
        // so no hold is installed and the watermark advances normally.
        st.ingest_kernel(
            SimTime::from_nanos(1_000),
            &KernelEvent::PartitionStart {
                a: vec![HostId(0)],
                b: vec![HostId(1)],
                oneway: true,
            },
        );
        assert!(st.holds.is_empty());
        // The reverse direction cut does hold host 1's stream.
        st.ingest_kernel(
            SimTime::from_nanos(2_000),
            &KernelEvent::PartitionStart {
                a: vec![HostId(1)],
                b: vec![HostId(0)],
                oneway: true,
            },
        );
        assert_eq!(st.holds.len(), 1);
        assert!(st.holds.contains_key(&1));
    }

    #[test]
    fn late_event_is_processed_not_lost() {
        let mut st = state();
        st.ingest(SimTime::from_nanos(10_000), mk(9_000, 1, 1, 0));
        // Watermark is now 9_900; this one publishes at 50 — late.
        st.ingest(SimTime::from_nanos(10_001), mk(50, 2, 1, 0));
        st.finalize(SimTime::from_nanos(20_000));
        assert_eq!(st.stats().0, 2);
        assert_eq!(st.late, 1);
    }
}

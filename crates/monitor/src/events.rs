//! Wire types of the monitoring event channel (CDR-encoded, carried over
//! the ORB as `oneway push` batches).
//!
//! Corresponding IDL (also compilable with `idlc`):
//!
//! ```idl
//! module Monitor {
//!   struct Event {
//!     unsigned long long time_ns;   // publisher's virtual clock
//!     unsigned long host;           // publishing host
//!     unsigned long pid;            // publishing process
//!     unsigned long long seq;       // per-publisher monotone sequence
//!     // body: tagged union, see EventBody below
//!   };
//!   typedef sequence<Event> EventSeq;
//!   interface EventChannel {
//!     oneway void push(in EventSeq batch);
//!     unsigned long subscribe(in unsigned long depth);
//!     EventSeq pull(in unsigned long sub_id, in unsigned long max);
//!     void stats(out unsigned long long received, out unsigned long long dropped);
//!   };
//! };
//! ```
//!
//! `EventBody` is a tagged union with per-variant payloads, which
//! `cdr_enum!` (C-like enums only) cannot derive — the `CdrWrite`/`CdrRead`
//! impls below hand-encode a `u32` discriminant followed by the variant
//! fields, exactly the layout an IDL `union` switch would produce.
//!
//! Loads travel as **milli-units** (`load_avg * 1000`, rounded) so every
//! consumer formats them with integer arithmetic — a determinism
//! constraint, not a bandwidth one (DESIGN.md §10).

use cdr::{cdr_struct, CdrDecoder, CdrEncoder, CdrError, CdrRead, CdrResult, CdrWrite, Epoch};

/// Repository id of the event channel interface.
pub const EVENT_CHANNEL_TYPE: &str = "IDL:Monitor/EventChannel:1.0";

/// Convert a non-negative float quantity (a load average, a utilization)
/// to milli-units for the wire. All downstream formatting is integer.
pub fn milli(value: f64) -> u64 {
    (value.max(0.0) * 1000.0).round() as u64
}

/// The well-known name the channel is registered under in the naming
/// service (a plain object binding — resolvable like everything else).
pub const EVENT_CHANNEL_NAME: &str = "MonitorChannel";

/// Operation names of the `EventChannel` interface.
pub mod ops {
    /// `oneway void push(in EventSeq batch)` — publish a batch of events.
    pub const PUSH: &str = "push";
    /// `ulong subscribe(in ulong depth)` — register a subscriber with a
    /// bounded ring of `depth` events; returns the subscriber id.
    pub const SUBSCRIBE: &str = "subscribe";
    /// `boolean unsubscribe(in ulong sub_id)` — drop a subscriber's ring;
    /// returns whether the id was live.
    pub const UNSUBSCRIBE: &str = "unsubscribe";
    /// `EventSeq pull(in ulong sub_id, in ulong max)` — drain up to `max`
    /// events from the subscriber's ring, in processed order.
    pub const PULL: &str = "pull";
    /// `(ulonglong received, ulonglong dropped) stats()` — events ingested
    /// and subscriber-ring drops so far.
    pub const STATS: &str = "stats";
}

cdr_struct!(
    /// One monitoring event: who published it, when on the virtual clock,
    /// and what happened.
    Event {
        /// Publisher's virtual time at the moment of publication.
        time_ns: u64,
        /// Publishing host (or the subject host for kernel events).
        host: u32,
        /// Publishing pid (`u32::MAX` for kernel-origin events).
        pid: u32,
        /// Per-publisher monotone sequence number.
        seq: u64,
        /// What happened.
        body: EventBody,
    }
);

impl Event {
    /// Total order of the event stream: virtual publish time, ties broken
    /// by publisher identity and per-publisher sequence.
    pub fn key(&self) -> (u64, u32, u32, u64) {
        (self.time_ns, self.host, self.pid, self.seq)
    }
}

/// The typed payload of an [`Event`]. Variant set = the union of what the
/// subsystems can report (DESIGN.md §10 taxonomy).
#[derive(Clone, Debug, PartialEq)]
pub enum EventBody {
    /// A Winner node manager's periodic load sample.
    LoadReport {
        /// Runnable processes on the host.
        runnable: u32,
        /// Load average in milli-units (`load_avg * 1000`).
        load_milli: u64,
        /// CPU utilization in milli-units (`cpu_util * 1000`).
        cpu_milli: u64,
    },
    /// The Winner system manager answered a `select`.
    Placement {
        /// Host the policy chose.
        chosen: u32,
        /// Effective load of the chosen host, milli-units.
        chosen_load_milli: u64,
        /// Minimum effective load among the candidates, milli-units.
        min_load_milli: u64,
    },
    /// The FT proxy classified a call failure as a dead target.
    FailureDetected {
        /// Object id of the failed target.
        target: String,
        /// Exception kind that triggered detection.
        reason: String,
    },
    /// The FT proxy began a recovery attempt.
    RecoveryStarted {
        /// Object id being recovered.
        target: String,
        /// 1-based attempt number within the episode.
        attempt: u32,
    },
    /// A call succeeded after one or more recoveries.
    RecoveryFinished {
        /// Object id that recovered.
        target: String,
        /// Episode duration: first failure to first post-recovery success.
        dur_ns: u64,
    },
    /// The FT proxy stored a checkpoint.
    CheckpointStored {
        /// Object id checkpointed.
        target: String,
        /// Checkpoint epoch.
        epoch: Epoch,
        /// Serialized checkpoint size.
        bytes: u64,
        /// Time spent storing it.
        dur_ns: u64,
    },
    /// A store coordinator observed a changed membership view.
    ViewChange {
        /// Live replicas in the new view.
        members: u32,
        /// Effective write quorum under the new view.
        quorum: u32,
    },
    /// A store coordinator completed (or failed) a quorum write.
    QuorumWrite {
        /// Object id written.
        object: String,
        /// Checkpoint epoch written.
        epoch: Epoch,
        /// Replicas that acked (counting the coordinator).
        acks: u32,
        /// View size at the time of the write.
        view: u32,
        /// Effective quorum the write needed.
        quorum: u32,
    },
    /// The FT proxy completed one logical request (critical-path
    /// attribution, measured client-side on the virtual clock).
    RequestDone {
        /// Object id the request went to.
        target: String,
        /// Queue-wait share: backoff sleeps + resolve/re-create time.
        wait_ns: u64,
        /// Service share: the successful invocation round-trip.
        service_ns: u64,
        /// Checkpoint overhead appended to the request.
        ckpt_ns: u64,
    },
    /// Kernel: a process was spawned.
    ProcSpawn {
        /// Process name.
        name: String,
    },
    /// Kernel: a process exited cleanly.
    ProcExit {
        /// Process name.
        name: String,
    },
    /// Kernel: a process was killed.
    ProcKill {
        /// Process name.
        name: String,
    },
    /// Kernel: a host crashed.
    HostCrash,
    /// Kernel: a crashed host came back up.
    HostRestart,
    /// Kernel: a partition cut the network between two host sets (for a
    /// one-way drop, traffic from `a_hosts` to `b_hosts` is lost while the
    /// reverse direction still flows).
    PartitionStart {
        /// Hosts on one side of the cut (the sending side for one-way).
        a_hosts: Vec<u32>,
        /// Hosts on the other side.
        b_hosts: Vec<u32>,
        /// Whether only the `a_hosts` → `b_hosts` direction is cut.
        oneway: bool,
    },
    /// Kernel: a previously announced partition healed.
    PartitionHeal {
        /// Hosts on one side of the healed cut.
        a_hosts: Vec<u32>,
        /// Hosts on the other side.
        b_hosts: Vec<u32>,
        /// Whether the healed cut was one-way.
        oneway: bool,
    },
    /// Kernel: a link entered gray-failure degradation (extra latency
    /// and/or probabilistic drops).
    LinkDegraded {
        /// One endpoint host.
        peer_a: u32,
        /// The other endpoint host.
        peer_b: u32,
    },
    /// Kernel: a degraded link returned to its healthy profile.
    LinkRestored {
        /// One endpoint host.
        peer_a: u32,
        /// The other endpoint host.
        peer_b: u32,
    },
    /// Kernel: a host's wall clock was skewed relative to virtual time.
    ClockSkew {
        /// Signed offset applied to the host clock, nanoseconds.
        skew_ns: i64,
    },
}

impl EventBody {
    /// Stable kind label used in counters, flight-recorder lines, and the
    /// doctor report.
    pub fn kind(&self) -> &'static str {
        match self {
            EventBody::LoadReport { .. } => "load-report",
            EventBody::Placement { .. } => "placement",
            EventBody::FailureDetected { .. } => "failure-detected",
            EventBody::RecoveryStarted { .. } => "recovery-started",
            EventBody::RecoveryFinished { .. } => "recovery-finished",
            EventBody::CheckpointStored { .. } => "checkpoint-stored",
            EventBody::ViewChange { .. } => "view-change",
            EventBody::QuorumWrite { .. } => "quorum-write",
            EventBody::RequestDone { .. } => "request-done",
            EventBody::ProcSpawn { .. } => "proc-spawn",
            EventBody::ProcExit { .. } => "proc-exit",
            EventBody::ProcKill { .. } => "proc-kill",
            EventBody::HostCrash => "host-crash",
            EventBody::HostRestart => "host-restart",
            EventBody::PartitionStart { .. } => "partition-start",
            EventBody::PartitionHeal { .. } => "partition-heal",
            EventBody::LinkDegraded { .. } => "link-degraded",
            EventBody::LinkRestored { .. } => "link-restored",
            EventBody::ClockSkew { .. } => "clock-skew",
        }
    }

    /// Deterministic label of a partition: sorted host lists plus the
    /// direction marker. Used as the episode key in the doctor so a heal
    /// matches exactly the cut that opened it.
    pub fn partition_key(a_hosts: &[u32], b_hosts: &[u32], oneway: bool) -> String {
        let render = |hosts: &[u32]| {
            let mut sorted = hosts.to_vec();
            sorted.sort_unstable();
            sorted
                .iter()
                .map(|h| format!("h{h}"))
                .collect::<Vec<_>>()
                .join("+")
        };
        let (a, b) = (render(a_hosts), render(b_hosts));
        if oneway {
            format!("{a}->{b}")
        } else if a <= b {
            format!("{a}|{b}")
        } else {
            format!("{b}|{a}")
        }
    }

    /// Deterministic one-line detail rendering (integers only) for the
    /// flight recorder.
    pub fn detail(&self) -> String {
        match self {
            EventBody::LoadReport {
                runnable,
                load_milli,
                cpu_milli,
            } => format!("runnable={runnable} load_milli={load_milli} cpu_milli={cpu_milli}"),
            EventBody::Placement {
                chosen,
                chosen_load_milli,
                min_load_milli,
            } => format!(
                "chosen=h{chosen} load_milli={chosen_load_milli} min_milli={min_load_milli}"
            ),
            EventBody::FailureDetected { target, reason } => {
                format!("target={target} reason={reason}")
            }
            EventBody::RecoveryStarted { target, attempt } => {
                format!("target={target} attempt={attempt}")
            }
            EventBody::RecoveryFinished { target, dur_ns } => {
                format!("target={target} dur_ns={dur_ns}")
            }
            EventBody::CheckpointStored {
                target,
                epoch,
                bytes,
                dur_ns,
            } => format!("target={target} epoch={epoch} bytes={bytes} dur_ns={dur_ns}"),
            EventBody::ViewChange { members, quorum } => {
                format!("members={members} quorum={quorum}")
            }
            EventBody::QuorumWrite {
                object,
                epoch,
                acks,
                view,
                quorum,
            } => format!("object={object} epoch={epoch} acks={acks} view={view} quorum={quorum}"),
            EventBody::RequestDone {
                target,
                wait_ns,
                service_ns,
                ckpt_ns,
            } => format!(
                "target={target} wait_ns={wait_ns} service_ns={service_ns} ckpt_ns={ckpt_ns}"
            ),
            EventBody::ProcSpawn { name }
            | EventBody::ProcExit { name }
            | EventBody::ProcKill { name } => format!("name={name}"),
            EventBody::HostCrash | EventBody::HostRestart => String::new(),
            EventBody::PartitionStart {
                a_hosts,
                b_hosts,
                oneway,
            }
            | EventBody::PartitionHeal {
                a_hosts,
                b_hosts,
                oneway,
            } => format!(
                "cut={}",
                EventBody::partition_key(a_hosts, b_hosts, *oneway)
            ),
            EventBody::LinkDegraded { peer_a, peer_b }
            | EventBody::LinkRestored { peer_a, peer_b } => {
                format!("link=h{peer_a}-h{peer_b}")
            }
            EventBody::ClockSkew { skew_ns } => format!("skew_ns={skew_ns}"),
        }
    }
}

// Discriminants of the hand-encoded union. Kept explicit (not derived from
// declaration order) so reordering variants cannot silently change the
// wire format.
const TAG_LOAD_REPORT: u32 = 0;
const TAG_PLACEMENT: u32 = 1;
const TAG_FAILURE_DETECTED: u32 = 2;
const TAG_RECOVERY_STARTED: u32 = 3;
const TAG_RECOVERY_FINISHED: u32 = 4;
const TAG_CHECKPOINT_STORED: u32 = 5;
const TAG_VIEW_CHANGE: u32 = 6;
const TAG_QUORUM_WRITE: u32 = 7;
const TAG_REQUEST_DONE: u32 = 8;
const TAG_PROC_SPAWN: u32 = 9;
const TAG_PROC_EXIT: u32 = 10;
const TAG_PROC_KILL: u32 = 11;
const TAG_HOST_CRASH: u32 = 12;
const TAG_HOST_RESTART: u32 = 13;
const TAG_PARTITION_START: u32 = 14;
const TAG_PARTITION_HEAL: u32 = 15;
const TAG_LINK_DEGRADED: u32 = 16;
const TAG_LINK_RESTORED: u32 = 17;
const TAG_CLOCK_SKEW: u32 = 18;

impl CdrWrite for EventBody {
    fn write(&self, enc: &mut CdrEncoder) {
        match self {
            EventBody::LoadReport {
                runnable,
                load_milli,
                cpu_milli,
            } => {
                TAG_LOAD_REPORT.write(enc);
                runnable.write(enc);
                load_milli.write(enc);
                cpu_milli.write(enc);
            }
            EventBody::Placement {
                chosen,
                chosen_load_milli,
                min_load_milli,
            } => {
                TAG_PLACEMENT.write(enc);
                chosen.write(enc);
                chosen_load_milli.write(enc);
                min_load_milli.write(enc);
            }
            EventBody::FailureDetected { target, reason } => {
                TAG_FAILURE_DETECTED.write(enc);
                target.write(enc);
                reason.write(enc);
            }
            EventBody::RecoveryStarted { target, attempt } => {
                TAG_RECOVERY_STARTED.write(enc);
                target.write(enc);
                attempt.write(enc);
            }
            EventBody::RecoveryFinished { target, dur_ns } => {
                TAG_RECOVERY_FINISHED.write(enc);
                target.write(enc);
                dur_ns.write(enc);
            }
            EventBody::CheckpointStored {
                target,
                epoch,
                bytes,
                dur_ns,
            } => {
                TAG_CHECKPOINT_STORED.write(enc);
                target.write(enc);
                epoch.write(enc);
                bytes.write(enc);
                dur_ns.write(enc);
            }
            EventBody::ViewChange { members, quorum } => {
                TAG_VIEW_CHANGE.write(enc);
                members.write(enc);
                quorum.write(enc);
            }
            EventBody::QuorumWrite {
                object,
                epoch,
                acks,
                view,
                quorum,
            } => {
                TAG_QUORUM_WRITE.write(enc);
                object.write(enc);
                epoch.write(enc);
                acks.write(enc);
                view.write(enc);
                quorum.write(enc);
            }
            EventBody::RequestDone {
                target,
                wait_ns,
                service_ns,
                ckpt_ns,
            } => {
                TAG_REQUEST_DONE.write(enc);
                target.write(enc);
                wait_ns.write(enc);
                service_ns.write(enc);
                ckpt_ns.write(enc);
            }
            EventBody::ProcSpawn { name } => {
                TAG_PROC_SPAWN.write(enc);
                name.write(enc);
            }
            EventBody::ProcExit { name } => {
                TAG_PROC_EXIT.write(enc);
                name.write(enc);
            }
            EventBody::ProcKill { name } => {
                TAG_PROC_KILL.write(enc);
                name.write(enc);
            }
            EventBody::HostCrash => TAG_HOST_CRASH.write(enc),
            EventBody::HostRestart => TAG_HOST_RESTART.write(enc),
            EventBody::PartitionStart {
                a_hosts,
                b_hosts,
                oneway,
            } => {
                TAG_PARTITION_START.write(enc);
                a_hosts.write(enc);
                b_hosts.write(enc);
                oneway.write(enc);
            }
            EventBody::PartitionHeal {
                a_hosts,
                b_hosts,
                oneway,
            } => {
                TAG_PARTITION_HEAL.write(enc);
                a_hosts.write(enc);
                b_hosts.write(enc);
                oneway.write(enc);
            }
            EventBody::LinkDegraded { peer_a, peer_b } => {
                TAG_LINK_DEGRADED.write(enc);
                peer_a.write(enc);
                peer_b.write(enc);
            }
            EventBody::LinkRestored { peer_a, peer_b } => {
                TAG_LINK_RESTORED.write(enc);
                peer_a.write(enc);
                peer_b.write(enc);
            }
            EventBody::ClockSkew { skew_ns } => {
                TAG_CLOCK_SKEW.write(enc);
                skew_ns.write(enc);
            }
        }
    }
}

impl CdrRead for EventBody {
    fn read(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        let tag = u32::read(dec)?;
        Ok(match tag {
            TAG_LOAD_REPORT => EventBody::LoadReport {
                runnable: u32::read(dec)?,
                load_milli: u64::read(dec)?,
                cpu_milli: u64::read(dec)?,
            },
            TAG_PLACEMENT => EventBody::Placement {
                chosen: u32::read(dec)?,
                chosen_load_milli: u64::read(dec)?,
                min_load_milli: u64::read(dec)?,
            },
            TAG_FAILURE_DETECTED => EventBody::FailureDetected {
                target: String::read(dec)?,
                reason: String::read(dec)?,
            },
            TAG_RECOVERY_STARTED => EventBody::RecoveryStarted {
                target: String::read(dec)?,
                attempt: u32::read(dec)?,
            },
            TAG_RECOVERY_FINISHED => EventBody::RecoveryFinished {
                target: String::read(dec)?,
                dur_ns: u64::read(dec)?,
            },
            TAG_CHECKPOINT_STORED => EventBody::CheckpointStored {
                target: String::read(dec)?,
                epoch: Epoch::read(dec)?,
                bytes: u64::read(dec)?,
                dur_ns: u64::read(dec)?,
            },
            TAG_VIEW_CHANGE => EventBody::ViewChange {
                members: u32::read(dec)?,
                quorum: u32::read(dec)?,
            },
            TAG_QUORUM_WRITE => EventBody::QuorumWrite {
                object: String::read(dec)?,
                epoch: Epoch::read(dec)?,
                acks: u32::read(dec)?,
                view: u32::read(dec)?,
                quorum: u32::read(dec)?,
            },
            TAG_REQUEST_DONE => EventBody::RequestDone {
                target: String::read(dec)?,
                wait_ns: u64::read(dec)?,
                service_ns: u64::read(dec)?,
                ckpt_ns: u64::read(dec)?,
            },
            TAG_PROC_SPAWN => EventBody::ProcSpawn {
                name: String::read(dec)?,
            },
            TAG_PROC_EXIT => EventBody::ProcExit {
                name: String::read(dec)?,
            },
            TAG_PROC_KILL => EventBody::ProcKill {
                name: String::read(dec)?,
            },
            TAG_HOST_CRASH => EventBody::HostCrash,
            TAG_HOST_RESTART => EventBody::HostRestart,
            TAG_PARTITION_START => EventBody::PartitionStart {
                a_hosts: Vec::read(dec)?,
                b_hosts: Vec::read(dec)?,
                oneway: bool::read(dec)?,
            },
            TAG_PARTITION_HEAL => EventBody::PartitionHeal {
                a_hosts: Vec::read(dec)?,
                b_hosts: Vec::read(dec)?,
                oneway: bool::read(dec)?,
            },
            TAG_LINK_DEGRADED => EventBody::LinkDegraded {
                peer_a: u32::read(dec)?,
                peer_b: u32::read(dec)?,
            },
            TAG_LINK_RESTORED => EventBody::LinkRestored {
                peer_a: u32::read(dec)?,
                peer_b: u32::read(dec)?,
            },
            TAG_CLOCK_SKEW => EventBody::ClockSkew {
                skew_ns: i64::read(dec)?,
            },
            other => return Err(CdrError::InvalidEnumTag(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(body: EventBody) {
        let ev = Event {
            time_ns: 42,
            host: 3,
            pid: 7,
            seq: 9,
            body,
        };
        let bytes = cdr::to_bytes(&ev);
        let back: Event = cdr::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, ev);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(EventBody::LoadReport {
            runnable: 2,
            load_milli: 1500,
            cpu_milli: 900,
        });
        roundtrip(EventBody::Placement {
            chosen: 4,
            chosen_load_milli: 100,
            min_load_milli: 100,
        });
        roundtrip(EventBody::FailureDetected {
            target: "w".into(),
            reason: "COMM_FAILURE".into(),
        });
        roundtrip(EventBody::RecoveryStarted {
            target: "w".into(),
            attempt: 1,
        });
        roundtrip(EventBody::RecoveryFinished {
            target: "w".into(),
            dur_ns: 5,
        });
        roundtrip(EventBody::CheckpointStored {
            target: "w".into(),
            epoch: Epoch(3),
            bytes: 128,
            dur_ns: 7,
        });
        roundtrip(EventBody::ViewChange {
            members: 3,
            quorum: 2,
        });
        roundtrip(EventBody::QuorumWrite {
            object: "o".into(),
            epoch: Epoch(1),
            acks: 2,
            view: 3,
            quorum: 2,
        });
        roundtrip(EventBody::RequestDone {
            target: "w".into(),
            wait_ns: 1,
            service_ns: 2,
            ckpt_ns: 3,
        });
        roundtrip(EventBody::ProcSpawn { name: "p".into() });
        roundtrip(EventBody::ProcExit { name: "p".into() });
        roundtrip(EventBody::ProcKill { name: "p".into() });
        roundtrip(EventBody::HostCrash);
        roundtrip(EventBody::HostRestart);
        roundtrip(EventBody::PartitionStart {
            a_hosts: vec![0, 2],
            b_hosts: vec![1, 3],
            oneway: false,
        });
        roundtrip(EventBody::PartitionHeal {
            a_hosts: vec![0],
            b_hosts: vec![1],
            oneway: true,
        });
        roundtrip(EventBody::LinkDegraded {
            peer_a: 0,
            peer_b: 2,
        });
        roundtrip(EventBody::LinkRestored {
            peer_a: 0,
            peer_b: 2,
        });
        roundtrip(EventBody::ClockSkew { skew_ns: -750_000 });
    }

    #[test]
    fn partition_key_is_order_insensitive_for_two_way_cuts() {
        assert_eq!(EventBody::partition_key(&[2, 0], &[1], false), "h0+h2|h1");
        assert_eq!(EventBody::partition_key(&[1], &[0, 2], false), "h0+h2|h1");
        // One-way cuts keep their direction.
        assert_eq!(EventBody::partition_key(&[1], &[0], true), "h1->h0");
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let bytes = cdr::to_bytes(&99u32);
        assert!(matches!(
            cdr::from_bytes::<EventBody>(&bytes),
            Err(CdrError::InvalidEnumTag(99))
        ));
    }
}

//! The publisher half: a small client any process (or servant) embeds to
//! push typed events at the channel.
//!
//! Publishers learn the channel's address from a [`Shared`] cell the
//! channel fills once it is serving (the same pattern the Winner system
//! manager uses for its IOR). Until the cell is filled, events buffer
//! locally and flush — original timestamps intact — on the first publish
//! after the address appears; the channel counts any that arrive behind
//! its watermark as late instead of dropping them.
//!
//! Pushes are `oneway`, so publishing never blocks: servants can publish
//! from inside `dispatch` without nesting a synchronous call.

use std::cell::RefCell;
use std::rc::Rc;

use orb::{Ior, Orb};
use simnet::{Ctx, Shared, SimResult};

use crate::events::{ops, Event, EventBody};

struct PubInner {
    cell: Shared<Option<String>>,
    ior: Option<Ior>,
    pending: Vec<Event>,
    seq: u64,
    host: u32,
    pid: u32,
}

/// A handle for publishing events. Cheap to clone; clones share one
/// per-process sequence counter, so several publishers in one process
/// (e.g. the manager's per-worker FT proxies) never collide on the
/// `(time, host, pid, seq)` stream key.
#[derive(Clone)]
pub struct Publisher(Rc<RefCell<PubInner>>);

impl Publisher {
    /// Publisher for the process behind `ctx`, pushing to the channel
    /// whose IOR will appear in `cell`.
    pub fn new(cell: Shared<Option<String>>, ctx: &Ctx) -> Self {
        Publisher(Rc::new(RefCell::new(PubInner {
            cell,
            ior: None,
            pending: Vec::new(),
            seq: 0,
            host: ctx.host().0,
            pid: ctx.pid().0,
        })))
    }

    /// Stamp and push one event. Buffered while the channel address is
    /// unknown; otherwise sent immediately as a `oneway` batch.
    pub fn publish(&self, orb: &mut Orb, ctx: &mut Ctx, body: EventBody) -> SimResult<()> {
        let mut inner = self.0.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let ev = Event {
            time_ns: ctx.now().as_nanos(),
            host: inner.host,
            pid: inner.pid,
            seq,
            body,
        };
        inner.pending.push(ev);
        inner.flush(orb, ctx)
    }
}

impl PubInner {
    fn flush(&mut self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<()> {
        if self.ior.is_none() {
            let Some(s) = self.cell.get() else {
                return Ok(()); // channel not up yet; keep buffering
            };
            match Ior::destringify(&s) {
                Ok(ior) => self.ior = Some(ior),
                Err(_) => {
                    // The cell is only ever written with `Ior::stringify`
                    // output; an unparsable value means monitoring is
                    // broken — drop the buffer rather than grow forever.
                    self.pending.clear();
                    return Ok(());
                }
            }
        }
        let Some(ior) = self.ior.clone() else {
            return Ok(());
        };
        let batch = std::mem::take(&mut self.pending);
        orb.invoke_oneway(ctx, &ior, ops::PUSH, cdr::to_bytes(&(batch,)))
    }
}

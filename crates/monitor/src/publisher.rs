//! The publisher half: a small client any process (or servant) embeds to
//! push typed events at the channel.
//!
//! Publishers learn the channel's address from a [`Shared`] cell the
//! channel fills once it is serving (the same pattern the Winner system
//! manager uses for its IOR). Until the cell is filled, events buffer
//! locally and flush — original timestamps intact — on the first publish
//! after the address appears; the channel counts any that arrive behind
//! its watermark as late instead of dropping them.
//!
//! Pushes are `oneway` by default, so publishing never blocks: servants
//! can publish from inside `dispatch` without nesting a synchronous call.
//!
//! # Reliable mode
//!
//! Oneway pushes vanish silently when the path to the channel is cut, so
//! a publisher behind a partition loses its outage window entirely. The
//! opt-in **reliable** mode ([`Publisher::reliable`]) instead pushes each
//! batch as a deferred DII request and keeps the batch buffered until the
//! channel acks it; a failed push (`COMM_FAILURE` on timeout) re-queues
//! the batch ahead of newer events, original timestamps intact, and the
//! next publish (or an explicit [`Publisher::pump`]) re-sends it.
//! Publishing still never blocks — the ack is polled, not awaited.
//! Delivery is at-least-once: a push that applied but whose ack was lost
//! is re-sent, and the channel's pending `BTreeMap` dedups re-sends by
//! the `(time, host, pid, seq)` key while they sit behind the watermark.

use std::cell::RefCell;
use std::rc::Rc;

use orb::{DiiRequest, Ior, Orb};
use simnet::{Ctx, Shared, SimResult};

use crate::events::{ops, Event, EventBody};

struct PubInner {
    cell: Shared<Option<String>>,
    ior: Option<Ior>,
    pending: Vec<Event>,
    seq: u64,
    host: u32,
    pid: u32,
    /// `false` = classic oneway pushes; `true` = acked deferred pushes
    /// with retry.
    reliable: bool,
    /// Reliable mode only: the outstanding push and the batch it carries,
    /// kept for re-queueing if the push fails.
    inflight: Option<(DiiRequest, Vec<Event>)>,
    /// Reliable mode only: batches re-queued after a failed push.
    retries: u64,
}

/// A handle for publishing events. Cheap to clone; clones share one
/// per-process sequence counter, so several publishers in one process
/// (e.g. the manager's per-worker FT proxies) never collide on the
/// `(time, host, pid, seq)` stream key.
#[derive(Clone)]
pub struct Publisher(Rc<RefCell<PubInner>>);

impl Publisher {
    /// Publisher for the process behind `ctx`, pushing to the channel
    /// whose IOR will appear in `cell`.
    pub fn new(cell: Shared<Option<String>>, ctx: &Ctx) -> Self {
        Self::with_mode(cell, ctx, false)
    }

    /// Like [`Publisher::new`], but pushes are acked and retried (see the
    /// module docs on reliable mode). Use for publishers that must survive
    /// a partition between them and the channel with their event stream
    /// intact.
    pub fn reliable(cell: Shared<Option<String>>, ctx: &Ctx) -> Self {
        Self::with_mode(cell, ctx, true)
    }

    fn with_mode(cell: Shared<Option<String>>, ctx: &Ctx, reliable: bool) -> Self {
        Publisher(Rc::new(RefCell::new(PubInner {
            cell,
            ior: None,
            pending: Vec::new(),
            seq: 0,
            host: ctx.host().0,
            pid: ctx.pid().0,
            reliable,
            inflight: None,
            retries: 0,
        })))
    }

    /// Stamp and push one event. Buffered while the channel address is
    /// unknown; otherwise sent immediately as a `oneway` batch (default
    /// mode) or an acked deferred batch (reliable mode).
    pub fn publish(&self, orb: &mut Orb, ctx: &mut Ctx, body: EventBody) -> SimResult<()> {
        let mut inner = self.0.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let ev = Event {
            time_ns: ctx.now().as_nanos(),
            host: inner.host,
            pid: inner.pid,
            seq,
            body,
        };
        inner.pending.push(ev);
        inner.flush(orb, ctx)
    }

    /// Drive the retry machinery without publishing anything: poll the
    /// outstanding push and (re-)send the buffer if the path is free.
    /// Call periodically from publishers that go quiet for long stretches;
    /// a no-op in oneway mode and when nothing is buffered.
    pub fn pump(&self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<()> {
        self.0.borrow_mut().flush(orb, ctx)
    }

    /// `(buffered events, failed pushes re-queued)` — both 0 in oneway
    /// mode once the channel address is known.
    pub fn backlog(&self) -> (usize, u64) {
        let inner = self.0.borrow();
        let inflight = inner.inflight.as_ref().map_or(0, |(_, b)| b.len());
        (inner.pending.len() + inflight, inner.retries)
    }
}

impl PubInner {
    fn flush(&mut self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<()> {
        if self.ior.is_none() {
            let Some(s) = self.cell.get() else {
                return Ok(()); // channel not up yet; keep buffering
            };
            match Ior::destringify(&s) {
                Ok(ior) => self.ior = Some(ior),
                Err(_) => {
                    // The cell is only ever written with `Ior::stringify`
                    // output; an unparsable value means monitoring is
                    // broken — drop the buffer rather than grow forever.
                    self.pending.clear();
                    return Ok(());
                }
            }
        }
        let Some(ior) = self.ior.clone() else {
            return Ok(());
        };
        if !self.reliable {
            let batch = std::mem::take(&mut self.pending);
            return orb.invoke_oneway(ctx, &ior, ops::PUSH, cdr::to_bytes(&(batch,)));
        }
        // Reliable mode: at most one push outstanding, so batches arrive
        // in order and a failure re-queues cleanly.
        if let Some((mut req, batch)) = self.inflight.take() {
            if !req.poll_response(orb, ctx)? {
                self.inflight = Some((req, batch));
                return Ok(()); // ack still outstanding; keep buffering
            }
            if !matches!(req.result::<()>(), Some(Ok(()))) {
                // Push failed (timeout across the cut, channel restarting,
                // …): everything it carried goes back in front of newer
                // events, original stamps intact.
                self.retries += 1;
                let mut restored = batch;
                restored.append(&mut self.pending);
                self.pending = restored;
            }
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        let mut req = DiiRequest::new(ior, ops::PUSH);
        req.add_encoded(&cdr::to_bytes(&(batch.clone(),)));
        req.send_deferred(orb, ctx)?;
        self.inflight = Some((req, batch));
        Ok(())
    }
}

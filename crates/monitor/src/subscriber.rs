//! The pull half: a remote subscriber any tool process embeds to drain
//! the channel over the ORB (`IDL:Monitor/EventChannel:1.0`, ops
//! `subscribe`/`pull`/`stats` — see `idl/monitor.idl`).
//!
//! In-process consumers (the doctor, the channel's own tests) read
//! [`crate::ChannelState`] directly; this client exists for consumers on
//! *other* hosts — dashboards, the flight-recorder dump tool — which must
//! go through the wire like everyone else.

use orb::{Exception, ObjectRef, Orb};
use simnet::{Ctx, SimResult};

use crate::events::{ops, Event};

/// A registered remote subscription: the channel reference plus the
/// subscriber id `subscribe` returned.
pub struct Subscription {
    obj: ObjectRef,
    id: u32,
}

impl Subscription {
    /// Register with the channel behind `obj`, keeping a bounded ring of
    /// `depth` events server-side.
    pub fn attach(
        obj: ObjectRef,
        orb: &mut Orb,
        ctx: &mut Ctx,
        depth: u32,
    ) -> SimResult<Result<Subscription, Exception>> {
        let r: Result<u32, Exception> = obj.call(orb, ctx, ops::SUBSCRIBE, &(depth,))?;
        Ok(r.map(|id| Subscription { obj, id }))
    }

    /// The server-assigned subscriber id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Drain up to `max` events from this subscription's ring, in
    /// watermark (processed) order.
    pub fn pull(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        max: u32,
    ) -> SimResult<Result<Vec<Event>, Exception>> {
        self.obj.call(orb, ctx, ops::PULL, &(self.id, max))
    }

    /// Channel-wide `(events ingested, subscriber-ring drops)`.
    pub fn stats(&self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Result<(u64, u64), Exception>> {
        self.obj.call(orb, ctx, ops::STATS, &())
    }

    /// Deregister: drop the server-side ring. Consumes the subscription;
    /// returns whether the id was still live on the channel.
    pub fn detach(self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Result<bool, Exception>> {
        self.obj.call(orb, ctx, ops::UNSUBSCRIBE, &(self.id,))
    }
}

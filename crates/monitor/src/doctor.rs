//! The online doctor: streaming analyses over the ordered event stream.
//!
//! The doctor is the channel's built-in subscriber. It consumes events in
//! virtual-time publish order (the channel's watermark guarantees that,
//! see [`crate::channel`]) and maintains:
//!
//! * **critical-path latency attribution** — per-target queue-wait vs
//!   service vs checkpoint-overhead shares, from `request-done` events the
//!   FT proxy measures client-side on the virtual clock, and
//! * **runtime invariants** checked as events arrive; every violation is a
//!   deterministic one-line verdict and triggers a flight-recorder
//!   post-mortem.
//!
//! All aggregates are integers (nanoseconds, milli-loads, counts), so the
//! rendered report is byte-identical across same-seed runs.

use std::collections::BTreeMap;

use crate::events::{Event, EventBody};

/// Invariant thresholds and channel tuning. One struct, because the places
/// that opt in (`ClusterConfig`/`ExperimentSpec`) want a single knob.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Reordering slack of the channel's watermark: events are analyzed
    /// once they are at least this far behind the channel's clock, which
    /// must exceed the maximum network delivery delay for the analysis
    /// order to equal publish order. The default (2 ms) is ~13x the remote
    /// one-way latency.
    pub reorder_slack: simnet::SimDuration,
    /// Flight-recorder ring depth per host (last N events).
    pub flight_ring: usize,
    /// Post-mortem dumps retained verbatim; later triggers only count.
    pub max_dumps: usize,
    /// Recovery-time budget: a recovery episode must finish within this
    /// multiple of the mean service latency observed so far.
    pub recovery_budget_multiple: u64,
    /// Quorum-health floor: a quorum write must collect at least this many
    /// acks while the membership view still holds that many replicas.
    pub quorum_floor: u32,
    /// Checkpoint freshness: consecutive stored checkpoints of one target
    /// must not be further apart than this.
    pub checkpoint_freshness: simnet::SimDuration,
    /// Load-placement sanity: the chosen host's effective load may exceed
    /// the candidates' minimum by at most this many milli-load-units.
    pub placement_tolerance_milli: u64,
    /// Healing-time budget: a partition episode (cut to heal) must close
    /// within this long. Also the bound the finalize pass uses to flag
    /// partitions still open when the run ends.
    pub healing_budget: simnet::SimDuration,
    /// Host the event channel runs on — the channel uses this to work out
    /// which publishers a partition cuts off from it (watermark holds).
    pub channel_host: u32,
    /// How long after a partition heal the channel keeps the watermark
    /// held, waiting for cut-off publishers to flush their outage buffers.
    /// Must cover a publisher retry interval plus network delivery.
    pub heal_flush_grace: simnet::SimDuration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            reorder_slack: simnet::SimDuration::from_millis(2),
            flight_ring: 32,
            max_dumps: 4,
            // Generous: recoveries wait out restart backoffs that dwarf a
            // single call, so the default budget only catches pathological
            // episodes. Experiments tighten it deliberately.
            recovery_budget_multiple: 10_000,
            quorum_floor: 1,
            checkpoint_freshness: simnet::SimDuration::from_secs(30),
            placement_tolerance_milli: 1_500,
            // Chaos schedules heal their cuts within a few seconds; a
            // partition outliving this is a stuck heal, not slow healing.
            healing_budget: simnet::SimDuration::from_secs(10),
            channel_host: 0,
            heal_flush_grace: simnet::SimDuration::from_secs(1),
        }
    }
}

/// Per-target latency-attribution accumulator.
#[derive(Clone, Copy, Debug, Default)]
struct Attribution {
    calls: u64,
    wait_ns: u64,
    service_ns: u64,
    ckpt_ns: u64,
}

/// Names of the six invariants, in report order.
const INVARIANTS: [&str; 6] = [
    "checkpoint-freshness",
    "healing-time",
    "load-placement",
    "partition-health",
    "quorum-health",
    "recovery-budget",
];

/// The streaming analysis state. Owned by the channel; fed one event at a
/// time, in stream order.
#[derive(Debug)]
pub struct Doctor {
    cfg: MonitorConfig,
    kind_counts: BTreeMap<&'static str, u64>,
    per_target: BTreeMap<String, Attribution>,
    total: Attribution,
    /// Recovery episodes currently open: target -> (start_ns, attempts).
    open_recoveries: BTreeMap<String, (u64, u32)>,
    /// Hosts currently down: host -> crash time.
    down_hosts: BTreeMap<u32, u64>,
    /// Partitions currently open: partition key -> cut time.
    open_partitions: BTreeMap<String, u64>,
    /// Last stored checkpoint per target: target -> (time_ns, epoch).
    last_ckpt: BTreeMap<String, (u64, cdr::Epoch)>,
    /// Per-invariant (checks, violations).
    invariants: BTreeMap<&'static str, (u64, u64)>,
    /// One line per recovery episode (budget verdicts, OK or not).
    verdicts: Vec<String>,
    /// One line per invariant violation.
    violations: Vec<String>,
}

impl Doctor {
    /// Fresh doctor with the given thresholds.
    pub fn new(cfg: MonitorConfig) -> Self {
        let invariants = INVARIANTS.iter().map(|&n| (n, (0, 0))).collect();
        Doctor {
            cfg,
            kind_counts: BTreeMap::new(),
            per_target: BTreeMap::new(),
            total: Attribution::default(),
            open_recoveries: BTreeMap::new(),
            down_hosts: BTreeMap::new(),
            open_partitions: BTreeMap::new(),
            last_ckpt: BTreeMap::new(),
            invariants,
            verdicts: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Total invariant violations so far.
    pub fn violation_count(&self) -> u64 {
        self.invariants.values().map(|&(_, v)| v).sum()
    }

    fn check(&mut self, name: &'static str, time_ns: u64, ok: bool, detail: String) -> bool {
        let e = self.invariants.entry(name).or_insert((0, 0));
        e.0 += 1;
        if !ok {
            e.1 += 1;
            self.violations
                .push(format!("{time_ns}ns {name}: {detail}"));
        }
        !ok
    }

    /// Ingest one event (in stream order). Returns the descriptions of any
    /// invariant violations this event fired.
    pub fn on_event(&mut self, ev: &Event) -> Vec<String> {
        *self.kind_counts.entry(ev.body.kind()).or_insert(0) += 1;
        let t = ev.time_ns;
        let mut fired = Vec::new();
        match &ev.body {
            EventBody::RequestDone {
                target,
                wait_ns,
                service_ns,
                ckpt_ns,
            } => {
                fn bump(a: &mut Attribution, wait: u64, service: u64, ckpt: u64) {
                    a.calls += 1;
                    a.wait_ns += wait;
                    a.service_ns += service;
                    a.ckpt_ns += ckpt;
                }
                let per = self.per_target.entry(target.clone()).or_default();
                bump(per, *wait_ns, *service_ns, *ckpt_ns);
                bump(&mut self.total, *wait_ns, *service_ns, *ckpt_ns);
            }
            EventBody::RecoveryStarted { target, attempt } => {
                let e = self.open_recoveries.entry(target.clone()).or_insert((t, 0));
                e.1 = (*attempt).max(e.1);
            }
            EventBody::RecoveryFinished { target, dur_ns } => {
                self.open_recoveries.remove(target);
                // Budget = multiple x mean service latency observed so far.
                // Without a single completed call there is no baseline;
                // record the episode but skip the check.
                if let Some(mean) = self.total.service_ns.checked_div(self.total.calls) {
                    let budget = mean.saturating_mul(self.cfg.recovery_budget_multiple);
                    let ok = *dur_ns <= budget;
                    let verdict = if ok { "OK" } else { "VIOLATION" };
                    self.verdicts.push(format!(
                        "{t}ns recovery-budget {target}: episode {dur_ns}ns budget {budget}ns \
                         ({}x mean {mean}ns) -> {verdict}",
                        self.cfg.recovery_budget_multiple
                    ));
                    if self.check(
                        "recovery-budget",
                        t,
                        ok,
                        format!("{target} episode {dur_ns}ns exceeds budget {budget}ns"),
                    ) {
                        fired.push(format!("recovery-budget {target}"));
                    }
                } else {
                    self.verdicts.push(format!(
                        "{t}ns recovery-budget {target}: episode {dur_ns}ns, no completed \
                         calls yet -> NO-BASELINE"
                    ));
                }
            }
            EventBody::CheckpointStored { target, epoch, .. } => {
                if let Some(&(prev_t, prev_epoch)) = self.last_ckpt.get(target) {
                    let gap = t.saturating_sub(prev_t);
                    let bound = self.cfg.checkpoint_freshness.as_nanos();
                    if self.check(
                        "checkpoint-freshness",
                        t,
                        gap <= bound,
                        format!(
                            "{target} epoch {epoch} stored {gap}ns after epoch {prev_epoch} \
                             (bound {bound}ns)"
                        ),
                    ) {
                        fired.push(format!("checkpoint-freshness {target}"));
                    }
                }
                self.last_ckpt.insert(target.clone(), (t, *epoch));
            }
            EventBody::QuorumWrite {
                object,
                acks,
                view,
                quorum,
                ..
            } => {
                let floor = self.cfg.quorum_floor;
                // Degradation is only an invariant breach while enough
                // replicas are still in the view to have met the floor.
                let ok = *acks >= floor || *view < floor;
                if self.check(
                    "quorum-health",
                    t,
                    ok,
                    format!(
                        "{object} write got {acks}/{quorum} acks with view {view} \
                         (floor {floor})"
                    ),
                ) {
                    fired.push(format!("quorum-health {object}"));
                }
            }
            EventBody::Placement {
                chosen,
                chosen_load_milli,
                min_load_milli,
            } => {
                let tol = self.cfg.placement_tolerance_milli;
                if self.check(
                    "load-placement",
                    t,
                    *chosen_load_milli <= min_load_milli.saturating_add(tol),
                    format!(
                        "h{chosen} picked at load {chosen_load_milli}m, minimum was \
                         {min_load_milli}m (tolerance {tol}m)"
                    ),
                ) {
                    fired.push(format!("load-placement h{chosen}"));
                }
            }
            EventBody::HostCrash => {
                self.down_hosts.insert(ev.host, t);
            }
            EventBody::HostRestart => {
                self.down_hosts.remove(&ev.host);
            }
            EventBody::PartitionStart {
                a_hosts,
                b_hosts,
                oneway,
            } => {
                let key = EventBody::partition_key(a_hosts, b_hosts, *oneway);
                // Re-cutting an already open partition keeps the original
                // cut time; the episode is the full outage.
                self.open_partitions.entry(key).or_insert(t);
            }
            EventBody::PartitionHeal {
                a_hosts,
                b_hosts,
                oneway,
            } => {
                let key = EventBody::partition_key(a_hosts, b_hosts, *oneway);
                let opened = self.open_partitions.remove(&key);
                if self.check(
                    "partition-health",
                    t,
                    opened.is_some(),
                    format!("heal of {key} without a matching cut"),
                ) {
                    fired.push(format!("partition-health {key}"));
                }
                if let Some(since) = opened {
                    let dur = t.saturating_sub(since);
                    let budget = self.cfg.healing_budget.as_nanos();
                    if self.check(
                        "healing-time",
                        t,
                        dur <= budget,
                        format!("{key} stayed cut {dur}ns (budget {budget}ns)"),
                    ) {
                        fired.push(format!("healing-time {key}"));
                    }
                }
            }
            _ => {}
        }
        fired
    }

    /// End-of-run pass: every partition still open has no heal coming, so
    /// it is a partition-health violation. Returns the fired invariants
    /// like [`Doctor::on_event`] does.
    pub fn finalize(&mut self, now_ns: u64) -> Vec<String> {
        let open: Vec<(String, u64)> = std::mem::take(&mut self.open_partitions)
            .into_iter()
            .collect();
        let mut fired = Vec::new();
        for (key, since) in open {
            self.check(
                "partition-health",
                now_ns,
                false,
                format!("{key} cut at {since}ns never healed"),
            );
            fired.push(format!("partition-health {key}"));
        }
        fired
    }

    /// Episodes open at this instant (recoveries in flight, hosts down) —
    /// the "open span stack" component of a post-mortem.
    pub fn open_episodes(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (target, &(since, attempts)) in &self.open_recoveries {
            out.push(format!(
                "recovery of {target} open since {since}ns ({attempts} attempts)"
            ));
        }
        for (&host, &since) in &self.down_hosts {
            out.push(format!("host h{host} down since {since}ns"));
        }
        for (key, &since) in &self.open_partitions {
            out.push(format!("partition {key} open since {since}ns"));
        }
        out
    }

    /// Recovery-budget verdict lines so far.
    pub fn verdicts(&self) -> &[String] {
        &self.verdicts
    }

    /// Render the doctor's report: event census, latency attribution,
    /// invariant summary, verdicts, violations. Deterministic (integer
    /// formatting, sorted maps).
    pub fn render_report(&self, out: &mut String) {
        use std::fmt::Write as _;
        let total_events: u64 = self.kind_counts.values().sum();
        let _ = writeln!(out, "events: {total_events}");
        for (kind, n) in &self.kind_counts {
            let _ = writeln!(out, "  {kind}: {n}");
        }
        let _ = writeln!(out, "latency attribution (critical path, per target):");
        let _ = writeln!(
            out,
            "  {:<28} {:>6} {:>12} {:>12} {:>12}",
            "target", "calls", "wait_ms", "service_ms", "ckpt_ms"
        );
        if self.per_target.is_empty() {
            let _ = writeln!(out, "  (no completed requests)");
        }
        for (target, a) in &self.per_target {
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>12} {:>12} {:>12}",
                target,
                a.calls,
                fmt_ms(a.wait_ns),
                fmt_ms(a.service_ns),
                fmt_ms(a.ckpt_ns)
            );
        }
        if !self.per_target.is_empty() {
            let a = &self.total;
            let _ = writeln!(
                out,
                "  {:<28} {:>6} {:>12} {:>12} {:>12}",
                "(all)",
                a.calls,
                fmt_ms(a.wait_ns),
                fmt_ms(a.service_ns),
                fmt_ms(a.ckpt_ns)
            );
        }
        let _ = writeln!(out, "invariants:");
        for (name, &(checks, violations)) in &self.invariants {
            let _ = writeln!(out, "  {name}: checks={checks} violations={violations}");
        }
        let _ = writeln!(out, "verdicts:");
        if self.verdicts.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for v in &self.verdicts {
            let _ = writeln!(out, "  {v}");
        }
        let _ = writeln!(out, "violations:");
        if self.violations.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for v in &self.violations {
            let _ = writeln!(out, "  {v}");
        }
    }
}

/// Milliseconds with microsecond precision, from integer nanoseconds —
/// deterministic (no float formatting).
pub(crate) fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ns: u64, host: u32, body: EventBody) -> Event {
        Event {
            time_ns,
            host,
            pid: 1,
            seq: 0,
            body,
        }
    }

    #[test]
    fn recovery_budget_fires_only_past_the_multiple() {
        let mut d = Doctor::new(MonitorConfig {
            recovery_budget_multiple: 10,
            ..MonitorConfig::default()
        });
        // Baseline: two calls, mean service 1000ns -> budget 10_000ns.
        for t in [10, 20] {
            d.on_event(&ev(
                t,
                1,
                EventBody::RequestDone {
                    target: "w".into(),
                    wait_ns: 0,
                    service_ns: 1_000,
                    ckpt_ns: 0,
                },
            ));
        }
        let fired = d.on_event(&ev(
            30,
            1,
            EventBody::RecoveryFinished {
                target: "w".into(),
                dur_ns: 9_000,
            },
        ));
        assert!(fired.is_empty());
        let fired = d.on_event(&ev(
            40,
            1,
            EventBody::RecoveryFinished {
                target: "w".into(),
                dur_ns: 10_001,
            },
        ));
        assert_eq!(fired, vec!["recovery-budget w".to_string()]);
        assert_eq!(d.violation_count(), 1);
        assert_eq!(d.verdicts().len(), 2);
    }

    #[test]
    fn quorum_health_respects_the_view() {
        let mut d = Doctor::new(MonitorConfig {
            quorum_floor: 2,
            ..MonitorConfig::default()
        });
        let qw = |acks, view| EventBody::QuorumWrite {
            object: "o".into(),
            epoch: cdr::Epoch(1),
            acks,
            view,
            quorum: 2,
        };
        // Enough acks: fine.
        assert!(d.on_event(&ev(1, 0, qw(2, 3))).is_empty());
        // Too few acks but the view itself shrank below the floor: the
        // floor is unreachable, not breached.
        assert!(d.on_event(&ev(2, 0, qw(1, 1))).is_empty());
        // Too few acks while the view could have met the floor: breach.
        assert_eq!(d.on_event(&ev(3, 0, qw(1, 3))).len(), 1);
    }

    #[test]
    fn placement_and_freshness_checks() {
        let mut d = Doctor::new(MonitorConfig {
            placement_tolerance_milli: 100,
            checkpoint_freshness: simnet::SimDuration::from_nanos(50),
            ..MonitorConfig::default()
        });
        assert!(d
            .on_event(&ev(
                1,
                0,
                EventBody::Placement {
                    chosen: 2,
                    chosen_load_milli: 600,
                    min_load_milli: 500,
                }
            ))
            .is_empty());
        assert_eq!(
            d.on_event(&ev(
                2,
                0,
                EventBody::Placement {
                    chosen: 2,
                    chosen_load_milli: 601,
                    min_load_milli: 500,
                }
            ))
            .len(),
            1
        );
        let ck = |t, epoch| {
            ev(
                t,
                0,
                EventBody::CheckpointStored {
                    target: "w".into(),
                    epoch: cdr::Epoch(epoch),
                    bytes: 8,
                    dur_ns: 1,
                },
            )
        };
        assert!(d.on_event(&ck(100, 1)).is_empty()); // first: no gap yet
        assert!(d.on_event(&ck(150, 2)).is_empty()); // gap 50 = bound
        assert_eq!(d.on_event(&ck(201, 3)).len(), 1); // gap 51 > bound
    }

    #[test]
    fn partition_episodes_are_attributed_and_budgeted() {
        let mut d = Doctor::new(MonitorConfig {
            healing_budget: simnet::SimDuration::from_nanos(100),
            ..MonitorConfig::default()
        });
        let cut = |a: &[u32], b: &[u32]| EventBody::PartitionStart {
            a_hosts: a.to_vec(),
            b_hosts: b.to_vec(),
            oneway: false,
        };
        let heal = |a: &[u32], b: &[u32]| EventBody::PartitionHeal {
            a_hosts: a.to_vec(),
            b_hosts: b.to_vec(),
            oneway: false,
        };
        assert!(d.on_event(&ev(10, 0, cut(&[0, 1], &[2]))).is_empty());
        assert_eq!(
            d.open_episodes(),
            vec!["partition h0+h1|h2 open since 10ns".to_string()]
        );
        // Heals within budget, sides listed in either order.
        assert!(d.on_event(&ev(100, 0, heal(&[2], &[1, 0]))).is_empty());
        assert!(d.open_episodes().is_empty());
        // Slow heal breaches healing-time.
        d.on_event(&ev(200, 0, cut(&[0], &[1])));
        assert_eq!(
            d.on_event(&ev(500, 0, heal(&[0], &[1]))),
            vec!["healing-time h0|h1".to_string()]
        );
        // A heal with no matching cut breaches partition-health.
        assert_eq!(
            d.on_event(&ev(600, 0, heal(&[3], &[4]))),
            vec!["partition-health h3|h4".to_string()]
        );
        assert_eq!(d.violation_count(), 2);
    }

    #[test]
    fn finalize_flags_partitions_that_never_heal() {
        let mut d = Doctor::new(MonitorConfig::default());
        d.on_event(&ev(
            10,
            0,
            EventBody::PartitionStart {
                a_hosts: vec![0],
                b_hosts: vec![1],
                oneway: true,
            },
        ));
        assert_eq!(
            d.finalize(1_000),
            vec!["partition-health h0->h1".to_string()]
        );
        assert_eq!(d.violation_count(), 1);
        // Idempotent: a second finalize has nothing left to flag.
        assert!(d.finalize(2_000).is_empty());
    }

    #[test]
    fn fmt_ms_is_integer_only() {
        assert_eq!(fmt_ms(0), "0.000");
        assert_eq!(fmt_ms(1_234_567), "1.234");
        assert_eq!(fmt_ms(999_999), "0.999");
    }
}

//! # ldft-lint — determinism & protocol-invariant analyzer
//!
//! A repo-specific static analyzer for the corba-ldft workspace. It parses
//! every workspace `.rs` file (a lexical pass: comments and literal
//! contents removed, brace depth and function spans tracked) and enforces
//! two invariant classes the compiler cannot see:
//!
//! * **Determinism (D1–D4)** — the whole experiment pipeline must be a
//!   pure function of the run seed. Wall-clock time, hash-ordered
//!   iteration, ambient RNG, and OS synchronization outside the kernel
//!   all smuggle host nondeterminism into sim results.
//! * **Protocol (P1–P3)** — the paper's fault-tolerance contract:
//!   failures surface as CORBA system exceptions (never panics), clients
//!   must observe `COMM_FAILURE`, and the FT proxy checkpoints after every
//!   successful invocation.
//!
//! Findings can be suppressed inline with a justified directive:
//!
//! ```text
//! // ldft-lint: allow(P1, kernel invariant: resume channel outlives process)
//! ```
//!
//! A directive with no reason is itself an error (`A1`); a directive that
//! suppresses nothing is a warning (`A2`). See `crates/lint/README.md`.

pub mod analysis;
pub mod ast;
pub mod callgraph;
pub mod failpath;
pub mod idlparse;
pub mod lexer;
pub mod lockgraph;
pub mod rules;
pub mod wire;

use analysis::FileAnalysis;
use rules::{check_file_raw, finalize, Finding, Severity, WorkspaceIndex};
use std::path::{Path, PathBuf};

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, including allowed ones (for `--verbose` display).
    pub findings: Vec<Finding>,
    /// Number of files parsed.
    pub files: usize,
    /// IDL operations cross-checked against stub/skeleton/CDR (wire pass).
    pub wire_ops: usize,
    /// `simnet::Shared` acquisition sites covered by the lock graph.
    pub lock_sites: usize,
    /// Distinct lock classes in the acquisition graph.
    pub lock_classes: usize,
    /// Function nodes in the interprocedural call graph (F pass).
    pub graph_nodes: usize,
    /// Resolved call edges in the graph.
    pub graph_edges: usize,
    /// Remote invocation sites inventoried by the graph.
    pub remote_sites: usize,
    /// The call graph itself, for `--graph-out` and the selfcheck pins.
    pub graph: callgraph::CallGraph,
}

impl Report {
    /// Findings that fail the run: errors not suppressed by an allowlist
    /// directive.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error && !f.allowed)
    }

    /// Non-fatal diagnostics (warnings, e.g. unused allows).
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning && !f.allowed)
    }

    /// Suppressed findings, for audit output.
    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed)
    }

    /// True when the run should exit nonzero.
    pub fn failed(&self) -> bool {
        self.errors().next().is_some()
    }
}

/// Derive the crate directory (`crates/<dir>/...`) from a workspace-relative
/// path, if the file lives under `crates/`.
pub fn crate_dir_of(rel_path: &str) -> Option<String> {
    let unified = rel_path.replace('\\', "/");
    let mut parts = unified.split('/');
    loop {
        match parts.next() {
            Some("crates") => return parts.next().map(str::to_string),
            Some(_) => continue,
            None => return None,
        }
    }
}

/// Analyze a single in-memory source (fixture tests and `--crate-name`
/// runs). `crate_dir` drives rule scoping. Runs the per-file rules plus a
/// single-file lock-graph pass; the wire pass needs the whole workspace
/// and only runs under [`run_workspace`].
pub fn analyze_source(
    path_label: &str,
    crate_dir: Option<&str>,
    source: &str,
    index: &WorkspaceIndex,
) -> Vec<Finding> {
    let fa = FileAnalysis::new(path_label, crate_dir, source);
    let mut findings = check_file_raw(&fa, index);
    findings.extend(lockgraph::check(std::slice::from_ref(&fa)).findings);
    finalize(&fa, findings)
}

/// Collect every workspace `.rs` file under `root`, sorted for
/// deterministic output. Skips build output, the offline shims, and this
/// crate's own test fixtures (which are violations on purpose).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            if path.is_dir() {
                if matches!(
                    name.as_str(),
                    "target" | ".git" | ".github" | "fixtures" | "shims" | "node_modules"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The workspace `idl/*.idl` contract files, sorted.
pub fn idl_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let dir = root.join("idl");
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for e in entries.flatten() {
            let path = e.path();
            if path.extension().and_then(|x| x.to_str()) == Some("idl") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Run the analyzer over the whole workspace rooted at `root`.
///
/// Three stages: the first parses every `.rs` and `.idl` file and builds
/// the [`WorkspaceIndex`] (P2's one-hop call graph over the orb stub API),
/// the second evaluates the per-file rules plus the cross-file wire
/// (W1–W4) and lock-graph (L1–L3) passes, and the third routes every
/// finding back to its file so allow directives apply uniformly.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut analyses = Vec::with_capacity(files.len());
    let mut index = WorkspaceIndex::stub_only();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_dir = crate_dir_of(&rel);
        let fa = FileAnalysis::new(&rel, crate_dir.as_deref(), &source);
        index.absorb(&fa);
        analyses.push(fa);
    }
    // IDL contracts: parsed for the wire pass, plus a pseudo-analysis per
    // file so `// ldft-lint: allow(...)` directives work in .idl comments.
    let mut idls = Vec::new();
    let mut idl_analyses = Vec::new();
    for path in idl_files(root)? {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        idls.push(idlparse::parse(&rel, &source));
        idl_analyses.push(FileAnalysis::new(&rel, None, &source));
    }

    let mut report = Report {
        findings: Vec::new(),
        files: analyses.len() + idl_analyses.len(),
        ..Report::default()
    };

    // Per-file rules, keyed by path for cross-file routing.
    let mut by_file: std::collections::BTreeMap<String, Vec<Finding>> =
        std::collections::BTreeMap::new();
    for fa in &analyses {
        by_file.insert(fa.path.clone(), check_file_raw(fa, &index));
    }
    for fa in &idl_analyses {
        by_file.insert(fa.path.clone(), Vec::new());
    }

    // Cross-file passes.
    let wire_report = wire::check(&analyses, &idls);
    report.wire_ops = wire_report.ops_checked;
    let lock_report = lockgraph::check(&analyses);
    report.lock_sites = lock_report.sites;
    report.lock_classes = lock_report.classes;
    // Interprocedural failure-path pass (F1–F4) over the call graph.
    let graph = callgraph::build(&analyses, &idls);
    let fail_findings = failpath::check(&analyses, &graph);
    report.graph_nodes = graph.nodes.len();
    report.graph_edges = graph.edges.len();
    report.remote_sites = graph.remote_sites.len();
    report.graph = graph;
    for f in wire_report
        .findings
        .into_iter()
        .chain(lock_report.findings)
        .chain(fail_findings)
    {
        by_file.entry(f.file.clone()).or_default().push(f);
    }

    // Allow application, per file. Allowlist *hygiene* (A1/A2) only runs
    // on policed files — sim crates and the IDL contracts — so that doc
    // examples quoting the directive syntax elsewhere don't trip A1.
    for fa in analyses.iter().chain(idl_analyses.iter()) {
        let mut raw = by_file.remove(&fa.path).unwrap_or_default();
        let policed = fa
            .crate_dir
            .as_deref()
            .map(|d| rules::SIM_CRATES.contains(&d))
            .unwrap_or(false)
            || fa.path.ends_with(".idl");
        if policed {
            report.findings.extend(finalize(fa, raw));
        } else {
            rules::apply_allows(fa, &mut raw);
            raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
            report.findings.extend(raw);
        }
    }
    // Findings attributed to paths we never analyzed (should not happen;
    // keep them rather than lose them).
    for (_, rest) in by_file {
        report.findings.extend(rest);
    }
    Ok(report)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(
            crate_dir_of("crates/orb/src/core.rs").as_deref(),
            Some("orb")
        );
        assert_eq!(
            crate_dir_of("crates/naming/src/context.rs").as_deref(),
            Some("naming")
        );
        assert_eq!(crate_dir_of("src/lib.rs"), None);
        assert_eq!(crate_dir_of("tests/full_stack.rs"), None);
    }

    #[test]
    fn clean_source_has_no_findings() {
        let index = WorkspaceIndex::stub_only();
        let findings = analyze_source(
            "crates/core/src/x.rs",
            Some("core"),
            "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n",
            &index,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn non_sim_crate_is_out_of_scope() {
        let index = WorkspaceIndex::stub_only();
        let findings = analyze_source(
            "crates/cdr/src/x.rs",
            Some("cdr"),
            "fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
            &index,
        );
        assert!(findings.is_empty());
    }
}

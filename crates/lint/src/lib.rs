//! # ldft-lint — determinism & protocol-invariant analyzer
//!
//! A repo-specific static analyzer for the corba-ldft workspace. It parses
//! every workspace `.rs` file (a lexical pass: comments and literal
//! contents removed, brace depth and function spans tracked) and enforces
//! two invariant classes the compiler cannot see:
//!
//! * **Determinism (D1–D4)** — the whole experiment pipeline must be a
//!   pure function of the run seed. Wall-clock time, hash-ordered
//!   iteration, ambient RNG, and OS synchronization outside the kernel
//!   all smuggle host nondeterminism into sim results.
//! * **Protocol (P1–P3)** — the paper's fault-tolerance contract:
//!   failures surface as CORBA system exceptions (never panics), clients
//!   must observe `COMM_FAILURE`, and the FT proxy checkpoints after every
//!   successful invocation.
//!
//! Findings can be suppressed inline with a justified directive:
//!
//! ```text
//! // ldft-lint: allow(P1, kernel invariant: resume channel outlives process)
//! ```
//!
//! A directive with no reason is itself an error (`A1`); a directive that
//! suppresses nothing is a warning (`A2`). See `crates/lint/README.md`.

pub mod analysis;
pub mod lexer;
pub mod rules;

use analysis::FileAnalysis;
use rules::{check_file, Finding, Severity, WorkspaceIndex};
use std::path::{Path, PathBuf};

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, including allowed ones (for `--verbose` display).
    pub findings: Vec<Finding>,
    /// Number of files parsed.
    pub files: usize,
}

impl Report {
    /// Findings that fail the run: errors not suppressed by an allowlist
    /// directive.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error && !f.allowed)
    }

    /// Non-fatal diagnostics (warnings, e.g. unused allows).
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning && !f.allowed)
    }

    /// Suppressed findings, for audit output.
    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed)
    }

    /// True when the run should exit nonzero.
    pub fn failed(&self) -> bool {
        self.errors().next().is_some()
    }
}

/// Derive the crate directory (`crates/<dir>/...`) from a workspace-relative
/// path, if the file lives under `crates/`.
pub fn crate_dir_of(rel_path: &str) -> Option<String> {
    let unified = rel_path.replace('\\', "/");
    let mut parts = unified.split('/');
    loop {
        match parts.next() {
            Some("crates") => return parts.next().map(str::to_string),
            Some(_) => continue,
            None => return None,
        }
    }
}

/// Analyze a single in-memory source (fixture tests and `--crate-name`
/// runs). `crate_dir` drives rule scoping.
pub fn analyze_source(
    path_label: &str,
    crate_dir: Option<&str>,
    source: &str,
    index: &WorkspaceIndex,
) -> Vec<Finding> {
    let fa = FileAnalysis::new(path_label, crate_dir, source);
    check_file(&fa, index)
}

/// Collect every workspace `.rs` file under `root`, sorted for
/// deterministic output. Skips build output, the offline shims, and this
/// crate's own test fixtures (which are violations on purpose).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            if path.is_dir() {
                if matches!(
                    name.as_str(),
                    "target" | ".git" | ".github" | "fixtures" | "shims" | "node_modules"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Run the analyzer over the whole workspace rooted at `root`.
///
/// Two passes: the first builds the [`WorkspaceIndex`] (P2's one-hop call
/// graph over the orb stub API), the second evaluates every rule.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut analyses = Vec::with_capacity(files.len());
    let mut index = WorkspaceIndex::stub_only();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_dir = crate_dir_of(&rel);
        let fa = FileAnalysis::new(&rel, crate_dir.as_deref(), &source);
        index.absorb(&fa);
        analyses.push(fa);
    }
    let mut report = Report {
        findings: Vec::new(),
        files: analyses.len(),
    };
    for fa in &analyses {
        report.findings.extend(check_file(fa, &index));
    }
    Ok(report)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(
            crate_dir_of("crates/orb/src/core.rs").as_deref(),
            Some("orb")
        );
        assert_eq!(
            crate_dir_of("crates/naming/src/context.rs").as_deref(),
            Some("naming")
        );
        assert_eq!(crate_dir_of("src/lib.rs"), None);
        assert_eq!(crate_dir_of("tests/full_stack.rs"), None);
    }

    #[test]
    fn clean_source_has_no_findings() {
        let index = WorkspaceIndex::stub_only();
        let findings = analyze_source(
            "crates/core/src/x.rs",
            Some("core"),
            "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n",
            &index,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn non_sim_crate_is_out_of_scope() {
        let index = WorkspaceIndex::stub_only();
        let findings = analyze_source(
            "crates/cdr/src/x.rs",
            Some("cdr"),
            "fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
            &index,
        );
        assert!(findings.is_empty());
    }
}

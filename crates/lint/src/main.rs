//! ldft-lint CLI.
//!
//! ```text
//! ldft-lint --workspace [--root DIR] [--verbose] [--format text|json]
//! ldft-lint [--crate-name NAME] [--format text|json] FILE...
//! ldft-lint --list-rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.
//!
//! Text diagnostics render as `file:line: severity[RULE]: message`, which
//! `.github/problem-matchers/ldft-lint.json` turns into GitHub
//! annotations. `--format json` emits one machine-readable object with
//! the findings and the coverage counters instead.

use ldft_lint::rules::{rule_summary, Finding, WorkspaceIndex, RULE_IDS};
use ldft_lint::{analyze_source, crate_dir_of, find_workspace_root, run_workspace, Report};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ldft-lint --workspace [--root DIR] [--verbose] [--format text|json]\n       ldft-lint [--crate-name NAME] [--format text|json] FILE...\n       ldft-lint --list-rules"
    );
    ExitCode::from(2)
}

/// Minimal JSON string escaping (the output has no exotic content, but
/// messages may quote source with backslashes and quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_finding(f: &Finding) -> String {
    let reason = match &f.allow_reason {
        Some(r) => json_str(r),
        None => "null".to_string(),
    };
    format!(
        "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{},\"allowed\":{},\"allow_reason\":{}}}",
        json_str(f.rule),
        json_str(&f.severity.to_string()),
        json_str(&f.file),
        f.line,
        json_str(&f.message),
        f.allowed,
        reason
    )
}

fn print_json(report: &Report, errors: usize, warnings: usize, allowed: usize) {
    let findings: Vec<String> = report.findings.iter().map(json_finding).collect();
    println!(
        "{{\"files\":{},\"errors\":{},\"warnings\":{},\"allowed\":{},\"wire_ops\":{},\"lock_sites\":{},\"lock_classes\":{},\"findings\":[{}]}}",
        report.files,
        errors,
        warnings,
        allowed,
        report.wire_ops,
        report.lock_sites,
        report.lock_classes,
        findings.join(",")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut verbose = false;
    let mut list_rules = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut crate_name: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--verbose" | "-v" => verbose = true,
            "--list-rules" => list_rules = true,
            "--format" => match it.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => return usage(),
            },
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--crate-name" => match it.next() {
                Some(n) => crate_name = Some(n),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }

    if list_rules {
        for id in RULE_IDS.iter().chain(["A1", "A2"].iter()) {
            println!("{id}  {}", rule_summary(id));
        }
        return ExitCode::SUCCESS;
    }

    let report = if workspace || files.is_empty() {
        let start = root
            .or_else(|| std::env::current_dir().ok())
            .unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            eprintln!(
                "ldft-lint: no workspace root found above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        match run_workspace(&ws) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ldft-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let index = WorkspaceIndex::stub_only();
        let mut report = Report::default();
        for path in &files {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ldft-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let label = path.to_string_lossy().replace('\\', "/");
            let dir = crate_name.clone().or_else(|| crate_dir_of(&label));
            report
                .findings
                .extend(analyze_source(&label, dir.as_deref(), &source, &index));
            report.files += 1;
        }
        report
    };

    let errors = report.errors().count();
    let warnings = report.warnings().count();
    let allowed = report.allowed().count();
    if json {
        print_json(&report, errors, warnings, allowed);
    } else {
        for f in report.errors() {
            println!("{}", f.render());
        }
        for f in report.warnings() {
            println!("{}", f.render());
        }
        if verbose {
            for f in report.allowed() {
                println!("{}", f.render());
            }
        }
        println!(
            "ldft-lint: {} file(s), {errors} error(s), {warnings} warning(s), {allowed} allowed",
            report.files
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! ldft-lint CLI.
//!
//! ```text
//! ldft-lint --workspace [--root DIR] [--verbose]
//! ldft-lint [--crate-name NAME] FILE...
//! ldft-lint --list-rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use ldft_lint::rules::{rule_summary, WorkspaceIndex, RULE_IDS};
use ldft_lint::{analyze_source, crate_dir_of, find_workspace_root, run_workspace, Report};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ldft-lint --workspace [--root DIR] [--verbose]\n       ldft-lint [--crate-name NAME] FILE...\n       ldft-lint --list-rules"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut verbose = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut crate_name: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--verbose" | "-v" => verbose = true,
            "--list-rules" => list_rules = true,
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--crate-name" => match it.next() {
                Some(n) => crate_name = Some(n),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }

    if list_rules {
        for id in RULE_IDS.iter().chain(["A1", "A2"].iter()) {
            println!("{id}  {}", rule_summary(id));
        }
        return ExitCode::SUCCESS;
    }

    let report = if workspace || files.is_empty() {
        let start = root
            .or_else(|| std::env::current_dir().ok())
            .unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            eprintln!(
                "ldft-lint: no workspace root found above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        match run_workspace(&ws) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ldft-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let index = WorkspaceIndex::stub_only();
        let mut report = Report::default();
        for path in &files {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ldft-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let label = path.to_string_lossy().replace('\\', "/");
            let dir = crate_name.clone().or_else(|| crate_dir_of(&label));
            report
                .findings
                .extend(analyze_source(&label, dir.as_deref(), &source, &index));
            report.files += 1;
        }
        report
    };

    let mut errors = 0usize;
    for f in report.errors() {
        println!("{}", f.render());
        errors += 1;
    }
    let mut warnings = 0usize;
    for f in report.warnings() {
        println!("{}", f.render());
        warnings += 1;
    }
    let allowed = report.allowed().count();
    if verbose {
        for f in report.allowed() {
            println!("{}", f.render());
        }
    }
    println!(
        "ldft-lint: {} file(s), {errors} error(s), {warnings} warning(s), {allowed} allowed",
        report.files
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! ldft-lint CLI.
//!
//! ```text
//! ldft-lint --workspace [--root DIR] [--verbose] [--format text|json|sarif]
//!           [--graph-out PATH]
//! ldft-lint [--crate-name NAME] [--format text|json|sarif] FILE...
//! ldft-lint --list-rules
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.
//!
//! Text diagnostics render as `file:line: severity[RULE]: message`, which
//! `.github/problem-matchers/ldft-lint.json` turns into GitHub
//! annotations. `--format json` emits one machine-readable object with
//! the findings and the coverage counters; `--format sarif` emits a SARIF
//! 2.1.0 log for code-scanning upload. `--graph-out PATH` additionally
//! writes the interprocedural call graph (Graphviz DOT when the path ends
//! in `.dot`, JSON otherwise).

use ldft_lint::rules::{rule_summary, Finding, WorkspaceIndex, RULE_IDS};
use ldft_lint::{analyze_source, crate_dir_of, find_workspace_root, run_workspace, Report};
use std::path::PathBuf;
use std::process::ExitCode;

/// Output format selected with `--format`.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ldft-lint --workspace [--root DIR] [--verbose] [--format text|json|sarif] [--graph-out PATH]\n       ldft-lint [--crate-name NAME] [--format text|json|sarif] FILE...\n       ldft-lint --list-rules"
    );
    ExitCode::from(2)
}

/// Minimal JSON string escaping (the output has no exotic content, but
/// messages may quote source with backslashes and quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_finding(f: &Finding) -> String {
    let reason = match &f.allow_reason {
        Some(r) => json_str(r),
        None => "null".to_string(),
    };
    format!(
        "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{},\"allowed\":{},\"allow_reason\":{}}}",
        json_str(f.rule),
        json_str(&f.severity.to_string()),
        json_str(&f.file),
        f.line,
        json_str(&f.message),
        f.allowed,
        reason
    )
}

fn print_json(report: &Report, errors: usize, warnings: usize, allowed: usize) {
    let findings: Vec<String> = report.findings.iter().map(json_finding).collect();
    println!(
        "{{\"files\":{},\"errors\":{},\"warnings\":{},\"allowed\":{},\"wire_ops\":{},\"lock_sites\":{},\"lock_classes\":{},\"graph_nodes\":{},\"graph_edges\":{},\"remote_sites\":{},\"findings\":[{}]}}",
        report.files,
        errors,
        warnings,
        allowed,
        report.wire_ops,
        report.lock_sites,
        report.lock_classes,
        report.graph_nodes,
        report.graph_edges,
        report.remote_sites,
        findings.join(",")
    );
}

/// Render the report as a SARIF 2.1.0 log — the schema subset GitHub
/// code scanning ingests: one run, a rule table, one result per finding.
/// Allowed findings are carried with a `suppressions` entry so they stay
/// visible but don't gate.
fn print_sarif(report: &Report) {
    let rules: Vec<String> = RULE_IDS
        .iter()
        .chain(["A1", "A2"].iter())
        .map(|id| {
            format!(
                "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
                json_str(id),
                json_str(rule_summary(id))
            )
        })
        .collect();
    let results: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let level = match f.severity.to_string().as_str() {
                "error" => "error",
                _ => "warning",
            };
            let suppressions = if f.allowed {
                let just = match &f.allow_reason {
                    Some(r) => format!(",\"justification\":{}", json_str(r)),
                    None => String::new(),
                };
                format!(",\"suppressions\":[{{\"kind\":\"inSource\"{just}}}]")
            } else {
                String::new()
            };
            format!(
                "{{\"ruleId\":{},\"level\":\"{}\",\"message\":{{\"text\":{}}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]{}}}",
                json_str(f.rule),
                level,
                json_str(&f.message),
                json_str(&f.file),
                f.line.max(1),
                suppressions
            )
        })
        .collect();
    println!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"ldft-lint\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut verbose = false;
    let mut list_rules = false;
    let mut format = Format::Text;
    let mut graph_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut crate_name: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--verbose" | "-v" => verbose = true,
            "--list-rules" => list_rules = true,
            "--format" => match it.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some("text") => format = Format::Text,
                _ => return usage(),
            },
            "--graph-out" => match it.next() {
                Some(p) => graph_out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--crate-name" => match it.next() {
                Some(n) => crate_name = Some(n),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }

    if list_rules {
        for id in RULE_IDS.iter().chain(["A1", "A2"].iter()) {
            println!("{id}  {}", rule_summary(id));
        }
        return ExitCode::SUCCESS;
    }

    let report = if workspace || files.is_empty() {
        let start = root
            .or_else(|| std::env::current_dir().ok())
            .unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            eprintln!(
                "ldft-lint: no workspace root found above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        match run_workspace(&ws) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ldft-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let index = WorkspaceIndex::stub_only();
        let mut report = Report::default();
        for path in &files {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ldft-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let label = path.to_string_lossy().replace('\\', "/");
            let dir = crate_name.clone().or_else(|| crate_dir_of(&label));
            report
                .findings
                .extend(analyze_source(&label, dir.as_deref(), &source, &index));
            report.files += 1;
        }
        report
    };

    if let Some(path) = &graph_out {
        let dot = path.extension().is_some_and(|e| e == "dot");
        let rendered = if dot {
            report.graph.to_dot()
        } else {
            report.graph.to_json()
        };
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("ldft-lint: --graph-out {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let errors = report.errors().count();
    let warnings = report.warnings().count();
    let allowed = report.allowed().count();
    match format {
        Format::Json => print_json(&report, errors, warnings, allowed),
        Format::Sarif => print_sarif(&report),
        Format::Text => {
            for f in report.errors() {
                println!("{}", f.render());
            }
            for f in report.warnings() {
                println!("{}", f.render());
            }
            if verbose {
                for f in report.allowed() {
                    println!("{}", f.render());
                }
            }
            println!(
                "ldft-lint: {} file(s), {errors} error(s), {warnings} warning(s), {allowed} allowed",
                report.files
            );
        }
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

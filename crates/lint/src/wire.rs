//! W1–W4 wire-conformance rules: `idl/*.idl` ↔ stubs ↔ skeleton dispatch
//! ↔ CDR marshalling must agree.
//!
//! The FT mechanism of the paper lives in proxies "derived from the IDL
//! stub", so drift between the IDL contract and the hand-written Rust is a
//! protocol break that no test catches until a wire mismatch corrupts a
//! run. These rules check the triple statically:
//!
//! | ID | invariant |
//! |----|-----------|
//! | W1 | every IDL operation has a client-side call site (stub evidence: the wire name as a string literal or an op-const reference outside dispatch patterns) |
//! | W2 | every IDL operation has a skeleton dispatch arm; no dispatch arm handles an op absent from the IDL |
//! | W3 | the CDR unmarshal tuple in the dispatch arm and the client-side `&(...)` request tuple match the IDL `in`-parameter list (types server-side, arity client-side) |
//! | W4 | hand-written `CdrWrite`/`CdrRead` impl pairs round-trip symmetrically: tag bijection and per-variant/struct field order equal on both sides |
//!
//! Matching is evidence-based and conservative: a check that cannot find
//! its counterpart construct (e.g. a dispatch arm that decodes through a
//! helper) is skipped, never guessed.

use crate::analysis::FileAnalysis;
use crate::ast::{split_commas, FileAst, TokKind};
use crate::idlparse::IdlFile;
use crate::rules::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Result of the wire pass.
#[derive(Debug, Default)]
pub struct WireReport {
    pub findings: Vec<Finding>,
    /// Number of IDL operations cross-checked against the Rust side.
    pub ops_checked: usize,
}

/// Stub methods whose argument list carries an op name + request tuple.
const CLIENT_CALL_METHODS: &[&str] = &[
    "call",
    "call_with_timeout",
    "oneway",
    "invoke",
    "invoke_with_timeout",
    "invoke_oneway",
];

fn is_all_caps(s: &str) -> bool {
    s.len() > 1
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

fn err(rule: &'static str, file: &str, line: usize, message: String) -> Finding {
    Finding {
        rule,
        severity: Severity::Error,
        file: file.to_string(),
        line,
        message,
        allowed: false,
        allow_reason: None,
    }
}

/// Canonicalize a Rust type string for comparison with the IDL-derived
/// spelling: drop whitespace, references, path prefixes, and resolve
/// single-field tuple-struct newtypes (`Epoch` → `u64`).
fn canon_type(raw: &str, newtypes: &BTreeMap<String, String>) -> String {
    // Tokenize into idents and punct, dropping `&`, `mut`, and `ident::`.
    let mut out = String::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0usize;
    let mut words: Vec<String> = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphanumeric() || c == '_' {
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let word: String = chars[i..j].iter().collect();
            i = j;
            // Path prefix: `ident::` — drop the prefix entirely.
            if chars.get(i) == Some(&':') && chars.get(i + 1) == Some(&':') {
                i += 2;
                continue;
            }
            if word == "mut" || word == "dyn" {
                continue;
            }
            words.push(word);
            out.push('\u{1}'); // placeholder marking a word slot
        } else {
            if !c.is_whitespace() && c != '&' && c != '\'' {
                out.push(c);
            }
            i += 1;
        }
    }
    // Resolve newtypes (fixpoint, small depth).
    for _ in 0..3 {
        let mut changed = false;
        for w in words.iter_mut() {
            if let Some(inner) = newtypes.get(w.as_str()) {
                // Only substitute when the replacement is itself a single
                // word (otherwise splice the text in directly).
                *w = inner.clone();
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Re-assemble.
    let mut res = String::new();
    let mut wi = 0usize;
    for c in out.chars() {
        if c == '\u{1}' {
            res.push_str(&words[wi]);
            wi += 1;
        } else {
            res.push(c);
        }
    }
    // A lifetime marker or leading tuple of one element `(T)` is just T.
    res
}

/// One skeleton dispatch surface: a `match op { ... }` inside
/// `impl Servant for T { fn dispatch(...) }`.
struct Surface {
    file: String,
    type_name: String,
    /// op wire name → (arm line, arm body token range).
    ops: BTreeMap<String, (usize, (usize, usize))>,
}

/// Resolve the op names an arm pattern matches: string literals plus
/// ALL-CAPS const references looked up in the workspace const table.
fn arm_ops(
    ast: &FileAst,
    pat: (usize, usize),
    consts: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<String> {
    let mut out = Vec::new();
    for t in &ast.toks[pat.0..pat.1] {
        match t.kind {
            TokKind::Lit => out.push(t.text.clone()),
            TokKind::Ident if is_all_caps(&t.text) => {
                if let Some(vals) = consts.get(&t.text) {
                    out.extend(vals.iter().cloned());
                }
            }
            _ => {}
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Collect every dispatch surface in a file.
fn surfaces_of(fa: &FileAnalysis, consts: &BTreeMap<String, BTreeSet<String>>) -> Vec<Surface> {
    let ast = &fa.ast;
    let mut out = Vec::new();
    for imp in &ast.impls {
        if imp.trait_name.as_deref() != Some("Servant") {
            continue;
        }
        for f in &ast.fns {
            if f.name != "dispatch" {
                continue;
            }
            let Some(body) = f.body else { continue };
            if !(imp.body.open < body.open && body.close < imp.body.close) {
                continue;
            }
            let mut ops: BTreeMap<String, (usize, (usize, usize))> = BTreeMap::new();
            for m in &ast.matches {
                if !(body.open < m.body.open && m.body.close < body.close) {
                    continue;
                }
                for arm in &m.arms {
                    for op in arm_ops(ast, arm.pat, consts) {
                        ops.entry(op).or_insert((arm.line, arm.body));
                    }
                }
            }
            if !ops.is_empty() {
                out.push(Surface {
                    file: fa.path.clone(),
                    type_name: imp.type_name.clone(),
                    ops,
                });
            }
        }
    }
    out
}

/// Decode-tuple types used in an arm body: turbofish on `from_bytes`, or
/// the `let (..): (T, ..) =` ascription feeding it. `None` when the arm
/// decodes through a helper we cannot see into.
fn decode_types(ast: &FileAst, body: (usize, usize)) -> Option<(Vec<String>, usize)> {
    let toks = &ast.toks;
    for c in &ast.calls {
        if c.method != "from_bytes" || c.name_tok < body.0 || c.name_tok >= body.1 {
            continue;
        }
        // Turbofish: from_bytes::<(T, U)>(...) or from_bytes::<T>(...).
        if toks
            .get(c.name_tok + 1)
            .map(|t| t.is("::"))
            .unwrap_or(false)
            && toks.get(c.name_tok + 2).map(|t| t.is("<")).unwrap_or(false)
        {
            let mut depth = 0i32;
            let mut j = c.name_tok + 2;
            while j < toks.len() {
                if toks[j].is("<") {
                    depth += 1;
                } else if toks[j].is(">") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let inner = (c.name_tok + 3, j);
            return Some((tuple_types(ast, inner), c.line));
        }
        // Ascription: walk back to the governing `let` and read `: (types) =`.
        let mut p = c.name_tok;
        let mut let_at = None;
        let mut steps = 0;
        while p > 0 && steps < 60 {
            p -= 1;
            steps += 1;
            let t = &toks[p];
            if t.is(";") || t.is("{") || t.is("}") {
                break;
            }
            if t.is("let") {
                let_at = Some(p);
                break;
            }
        }
        let let_at = let_at?;
        // Find the `=` ending the binding pattern, then the `:` before it.
        let mut eq = None;
        let mut depth = 0i32;
        for (k, t) in toks.iter().enumerate().take(c.name_tok).skip(let_at + 1) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "=" if depth == 0 => {
                        eq = Some(k);
                    }
                    _ => {}
                }
            }
            if eq.is_some() {
                break;
            }
        }
        let eq = eq?;
        let mut colon = None;
        let mut depth = 0i32;
        for (k, t) in toks.iter().enumerate().take(eq).skip(let_at + 1) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ":" if depth == 0 && !t.is("::") => colon = Some(k),
                    _ => {}
                }
            }
        }
        let colon = colon?;
        let ty = (colon + 1, eq);
        // Tuple ascription `(T, U,)` vs a single type.
        if toks.get(ty.0).map(|t| t.is("(")).unwrap_or(false) {
            let close = ast.paren_close.get(&ty.0).copied().unwrap_or(ty.1);
            return Some((tuple_types(ast, (ty.0 + 1, close)), c.line));
        }
        return Some((vec![ast.text(ty)], c.line));
    }
    None
}

/// Split a token range on top-level commas into type strings.
fn tuple_types(ast: &FileAst, range: (usize, usize)) -> Vec<String> {
    split_commas(&ast.toks, range.0, range.1)
        .into_iter()
        .map(|(s, e)| ast.text((s, e)))
        .collect()
}

/// Client-side request-tuple arity: the first `&( ... )` in the call args.
fn client_tuple_arity(ast: &FileAst, call: &crate::ast::Call) -> Option<usize> {
    for arg in &call.args {
        for i in arg.toks.0..arg.toks.1 {
            if ast.toks[i].is("&") && ast.toks.get(i + 1).map(|t| t.is("(")).unwrap_or(false) {
                let close = *ast.paren_close.get(&(i + 1))?;
                return Some(split_commas(&ast.toks, i + 2, close).len());
            }
        }
    }
    None
}

/// Workspace-wide W1–W3 plus per-file W4.
pub fn check(files: &[FileAnalysis], idls: &[IdlFile]) -> WireReport {
    let mut report = WireReport::default();

    // --- Workspace tables -------------------------------------------------
    // Const table: NAME → possible string values.
    let mut consts: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // Newtype table: Name → inner type.
    let mut newtypes: BTreeMap<String, String> = BTreeMap::new();
    for fa in files {
        for (name, value, _) in &fa.ast.str_consts {
            consts
                .entry(name.clone())
                .or_default()
                .insert(value.clone());
        }
        for (name, inner) in &fa.ast.newtypes {
            newtypes
                .entry(name.clone())
                .or_insert_with(|| canon_type(inner, &BTreeMap::new()));
        }
    }
    // IDL typedefs that name Rust-side types also act as aliases.
    for idl in idls {
        for (alias, target) in &idl.typedefs {
            newtypes
                .entry(alias.clone())
                .or_insert_with(|| target.clone());
        }
    }

    // --- W1 evidence: op wire names referenced outside dispatch patterns --
    let mut evidenced: BTreeSet<String> = BTreeSet::new();
    for fa in files {
        let ast = &fa.ast;
        // Lines that *declare* a string const don't count as call evidence.
        let const_decl_lines: BTreeSet<(usize, &str)> = ast
            .str_consts
            .iter()
            .map(|(_, v, l)| (*l, v.as_str()))
            .collect();
        for (i, t) in ast.toks.iter().enumerate() {
            match t.kind {
                TokKind::Lit
                    if !ast.in_match_pattern(i)
                        && !const_decl_lines.contains(&(t.line, t.text.as_str())) =>
                {
                    evidenced.insert(t.text.clone());
                }
                TokKind::Ident if is_all_caps(&t.text) => {
                    if ast.in_match_pattern(i) {
                        continue;
                    }
                    if let Some(vals) = consts.get(&t.text) {
                        // Skip the const's own declaration.
                        let own_decl = ast
                            .str_consts
                            .iter()
                            .any(|(n, _, l)| n == &t.text && *l == t.line);
                        if !own_decl {
                            evidenced.extend(vals.iter().cloned());
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // --- Dispatch surfaces ------------------------------------------------
    let mut surfaces: Vec<Surface> = Vec::new();
    let mut surface_ast: Vec<&FileAst> = Vec::new();
    for fa in files {
        for s in surfaces_of(fa, &consts) {
            surfaces.push(s);
            surface_ast.push(&fa.ast);
        }
    }
    let all_idl_ops: BTreeSet<&str> = idls
        .iter()
        .flat_map(|f| f.all_ops().map(|(_, o)| o.name.as_str()))
        .collect();

    // --- Per-interface W1/W2/W3 -------------------------------------------
    let mut best_surfaces: BTreeSet<usize> = BTreeSet::new();
    for idl in idls {
        for iface in &idl.interfaces {
            let op_names: BTreeSet<&str> = iface.ops.iter().map(|o| o.name.as_str()).collect();
            // Best dispatch surface: maximum op overlap.
            let best = surfaces
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let overlap = s
                        .ops
                        .keys()
                        .filter(|k| op_names.contains(k.as_str()))
                        .count();
                    (overlap, i)
                })
                .filter(|(overlap, _)| *overlap > 0)
                .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            let Some((_, si)) = best else {
                report.findings.push(err(
                    "W2",
                    &idl.path,
                    iface.line,
                    format!(
                        "interface `{}` has no skeleton: no `impl Servant` dispatch arm handles any of its {} operation(s)",
                        iface.name,
                        iface.ops.len()
                    ),
                ));
                report.ops_checked += iface.ops.len();
                continue;
            };
            best_surfaces.insert(si);
            let surface = &surfaces[si];
            let ast = surface_ast[si];
            for op in &iface.ops {
                report.ops_checked += 1;
                // W1: client stub evidence.
                if !evidenced.contains(&op.name) {
                    report.findings.push(err(
                        "W1",
                        &idl.path,
                        op.line,
                        format!(
                            "operation `{}::{}` ({}) has no client-side call site: the wire name never appears outside dispatch patterns",
                            iface.name, op.name, idl.path
                        ),
                    ));
                }
                // W2: dispatch arm present.
                let Some(&(_, arm_body)) = surface.ops.get(&op.name) else {
                    report.findings.push(err(
                        "W2",
                        &idl.path,
                        op.line,
                        format!(
                            "operation `{}::{}` has no dispatch arm in skeleton `{}` ({})",
                            iface.name, op.name, surface.type_name, surface.file
                        ),
                    ));
                    continue;
                };
                // W3 (server): decode tuple must match the IDL in-params.
                if !op.ins.is_empty() {
                    if let Some((types, line)) = decode_types(ast, arm_body) {
                        let got: Vec<String> =
                            types.iter().map(|t| canon_type(t, &newtypes)).collect();
                        let want: Vec<String> =
                            op.ins.iter().map(|t| canon_type(t, &newtypes)).collect();
                        if got != want {
                            report.findings.push(err(
                                "W3",
                                &surface.file,
                                line,
                                format!(
                                    "dispatch arm for `{}::{}` unmarshals ({}) but the IDL in-params are ({})",
                                    iface.name,
                                    op.name,
                                    got.join(", "),
                                    want.join(", ")
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // W2: dispatch arms handling ops absent from every IDL interface
    // (checked only on surfaces that matched an interface — test doubles
    // and partial demo servants are not contract-bearing).
    for &si in &best_surfaces {
        let surface = &surfaces[si];
        for (op, (line, _)) in &surface.ops {
            if !all_idl_ops.contains(op.as_str()) {
                report.findings.push(err(
                    "W2",
                    &surface.file,
                    *line,
                    format!(
                        "skeleton `{}` dispatches op `{}` which no idl/*.idl operation declares",
                        surface.type_name, op
                    ),
                ));
            }
        }
    }

    // --- W3 (client): request-tuple arity at call sites --------------------
    // IDL op name → in-param count (only unambiguous names).
    let mut in_counts: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for idl in idls {
        for (_, op) in idl.all_ops() {
            in_counts.entry(&op.name).or_default().insert(op.ins.len());
        }
    }
    for fa in files {
        let ast = &fa.ast;
        for call in &ast.calls {
            if !CLIENT_CALL_METHODS.contains(&call.method.as_str()) {
                continue;
            }
            // Which op does this call name?
            let mut named: Option<&str> = None;
            for arg in &call.args {
                // An op-name arg is short: a literal or a const path.
                if arg.toks.1 - arg.toks.0 > 3 {
                    continue;
                }
                for t in &ast.toks[arg.toks.0..arg.toks.1] {
                    let vals: Vec<&str> = match t.kind {
                        TokKind::Lit => vec![t.text.as_str()],
                        TokKind::Ident if is_all_caps(&t.text) => consts
                            .get(&t.text)
                            .map(|v| v.iter().map(|s| s.as_str()).collect())
                            .unwrap_or_default(),
                        _ => Vec::new(),
                    };
                    for v in vals {
                        if in_counts.contains_key(v) {
                            named = Some(in_counts.keys().find(|k| **k == v).copied().unwrap_or(v));
                        }
                    }
                }
                if named.is_some() {
                    break;
                }
            }
            let Some(op_name) = named else { continue };
            let counts = &in_counts[op_name];
            if counts.len() != 1 {
                continue; // ambiguous op name across interfaces
            }
            let want = *counts.iter().next().expect("nonempty");
            if let Some(got) = client_tuple_arity(ast, call) {
                if got != want {
                    report.findings.push(err(
                        "W3",
                        &fa.path,
                        call.line,
                        format!(
                            "request tuple for op `{op_name}` has {got} element(s) but the IDL declares {want} in-param(s)"
                        ),
                    ));
                }
            }
        }
    }

    // --- W4: CdrWrite/CdrRead symmetry -------------------------------------
    for fa in files {
        check_w4(fa, &mut report.findings);
    }

    report
}

/// Per-variant marshalling shape extracted from one side of a CDR impl.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct VariantShape {
    tag: String,
    fields: Vec<String>,
}

/// First-occurrence order of `names` among the Ident tokens of `range`.
fn field_order(ast: &FileAst, range: (usize, usize), names: &BTreeSet<&str>) -> Vec<String> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for t in &ast.toks[range.0..range.1] {
        if t.kind == TokKind::Ident
            && names.contains(t.text.as_str())
            && seen.insert(t.text.clone())
        {
            out.push(t.text.clone());
        }
    }
    out
}

/// The innermost `fn` body inside an impl block, by name preference.
fn impl_fn_body(ast: &FileAst, imp: &crate::ast::ImplBlock) -> Option<(usize, usize)> {
    ast.fns
        .iter()
        .filter(|f| {
            f.body
                .map(|b| imp.body.open < b.open && b.close < imp.body.close)
                .unwrap_or(false)
        })
        .map(|f| {
            let b = f.body.expect("filtered");
            (b.open, b.close)
        })
        .next()
}

/// W4 for one file: every local enum/struct with hand-written `CdrWrite`
/// *and* `CdrRead` impls in this file must marshal symmetrically.
fn check_w4(fa: &FileAnalysis, findings: &mut Vec<Finding>) {
    let ast = &fa.ast;
    let write_impls: Vec<&crate::ast::ImplBlock> = ast
        .impls
        .iter()
        .filter(|i| i.trait_name.as_deref() == Some("CdrWrite"))
        .collect();
    let read_impls: Vec<&crate::ast::ImplBlock> = ast
        .impls
        .iter()
        .filter(|i| i.trait_name.as_deref() == Some("CdrRead"))
        .collect();

    // Enums --------------------------------------------------------------
    for en in &ast.enums {
        let Some(w) = write_impls.iter().find(|i| i.type_name == en.name) else {
            continue;
        };
        let Some(r) = read_impls.iter().find(|i| i.type_name == en.name) else {
            continue;
        };
        let variant_names: BTreeSet<&str> = en.variants.iter().map(|v| v.name.as_str()).collect();

        // Write side: match over self → variant arms; tag = first TAG_*
        // ident in the body; field order = first occurrence of the
        // variant's field names.
        let mut write_shape: BTreeMap<String, (VariantShape, usize)> = BTreeMap::new();
        for m in &ast.matches {
            if !(w.body.open < m.body.open && m.body.close < w.body.close) {
                continue;
            }
            for arm in &m.arms {
                let vname = ast.toks[arm.pat.0..arm.pat.1]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && variant_names.contains(t.text.as_str()));
                let Some(vname) = vname else { continue };
                let variant = en
                    .variants
                    .iter()
                    .find(|v| v.name == vname.text)
                    .expect("variant name matched");
                let fnames: BTreeSet<&str> =
                    variant.fields.iter().map(|f| f.name.as_str()).collect();
                let tag = ast.toks[arm.body.0..arm.body.1]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && t.text.starts_with("TAG_"))
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                write_shape.insert(
                    vname.text.clone(),
                    (
                        VariantShape {
                            tag,
                            fields: field_order(ast, arm.body, &fnames),
                        },
                        arm.line,
                    ),
                );
            }
        }

        // Read side: match over the decoded tag → arms keyed by TAG_*
        // pattern, constructing a variant.
        let mut read_shape: BTreeMap<String, (VariantShape, usize)> = BTreeMap::new();
        for m in &ast.matches {
            if !(r.body.open < m.body.open && m.body.close < r.body.close) {
                continue;
            }
            for arm in &m.arms {
                let tag = ast.toks[arm.pat.0..arm.pat.1]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && t.text.starts_with("TAG_"))
                    .map(|t| t.text.clone());
                let Some(tag) = tag else { continue };
                let vname = ast.toks[arm.body.0..arm.body.1]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && variant_names.contains(t.text.as_str()));
                let Some(vname) = vname else { continue };
                let variant = en
                    .variants
                    .iter()
                    .find(|v| v.name == vname.text)
                    .expect("variant name matched");
                let fnames: BTreeSet<&str> =
                    variant.fields.iter().map(|f| f.name.as_str()).collect();
                read_shape.insert(
                    vname.text.clone(),
                    (
                        VariantShape {
                            tag,
                            fields: field_order(ast, arm.body, &fnames),
                        },
                        arm.line,
                    ),
                );
            }
        }
        if write_shape.is_empty() || read_shape.is_empty() {
            continue;
        }

        for v in &en.variants {
            match (write_shape.get(&v.name), read_shape.get(&v.name)) {
                (Some((ws, wline)), Some((rs, _))) => {
                    if !ws.tag.is_empty() && !rs.tag.is_empty() && ws.tag != rs.tag {
                        findings.push(err(
                            "W4",
                            &fa.path,
                            *wline,
                            format!(
                                "`{}::{}` encodes tag `{}` but decodes under `{}` — round-trip breaks",
                                en.name, v.name, ws.tag, rs.tag
                            ),
                        ));
                    }
                    if ws.fields != rs.fields {
                        findings.push(err(
                            "W4",
                            &fa.path,
                            *wline,
                            format!(
                                "`{}::{}` writes fields [{}] but reads [{}] — field order must match",
                                en.name,
                                v.name,
                                ws.fields.join(", "),
                                rs.fields.join(", ")
                            ),
                        ));
                    }
                }
                (Some((_, wline)), None) => findings.push(err(
                    "W4",
                    &fa.path,
                    *wline,
                    format!(
                        "`{}::{}` is encoded by CdrWrite but no CdrRead arm reconstructs it",
                        en.name, v.name
                    ),
                )),
                (None, Some((_, rline))) => findings.push(err(
                    "W4",
                    &fa.path,
                    *rline,
                    format!(
                        "`{}::{}` is decoded by CdrRead but never encoded by CdrWrite",
                        en.name, v.name
                    ),
                )),
                (None, None) => findings.push(err(
                    "W4",
                    &fa.path,
                    v.line,
                    format!(
                        "`{}::{}` appears in neither the CdrWrite nor the CdrRead match — the taxonomy drifted from its codec",
                        en.name, v.name
                    ),
                )),
            }
        }
        // Tag bijection: a tag read for one variant but written for another.
        let mut tag_to_wvariant: BTreeMap<&str, &str> = BTreeMap::new();
        for (v, (ws, _)) in &write_shape {
            if !ws.tag.is_empty() {
                tag_to_wvariant.insert(&ws.tag, v);
            }
        }
        for (v, (rs, rline)) in &read_shape {
            if rs.tag.is_empty() {
                continue;
            }
            if let Some(wv) = tag_to_wvariant.get(rs.tag.as_str()) {
                if *wv != v {
                    findings.push(err(
                        "W4",
                        &fa.path,
                        *rline,
                        format!(
                            "tag `{}` decodes to `{}::{}` but encodes `{}::{}`",
                            rs.tag, en.name, v, en.name, wv
                        ),
                    ));
                }
            }
        }
    }

    // Structs (hand-written impl pairs only) ------------------------------
    for st in &ast.structs {
        if st.fields.is_empty() {
            continue;
        }
        let Some(w) = write_impls.iter().find(|i| i.type_name == st.name) else {
            continue;
        };
        let Some(r) = read_impls.iter().find(|i| i.type_name == st.name) else {
            continue;
        };
        let fnames: BTreeSet<&str> = st.fields.iter().map(|f| f.name.as_str()).collect();
        let Some(wb) = impl_fn_body(ast, w) else {
            continue;
        };
        let Some(rb) = impl_fn_body(ast, r) else {
            continue;
        };
        let worder = field_order(ast, wb, &fnames);
        let rorder = field_order(ast, rb, &fnames);
        if !worder.is_empty() && !rorder.is_empty() && worder != rorder {
            findings.push(err(
                "W4",
                &fa.path,
                st.line,
                format!(
                    "`{}` CdrWrite emits fields [{}] but CdrRead consumes [{}] — order must match",
                    st.name,
                    worder.join(", "),
                    rorder.join(", ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_types() {
        let mut nt = BTreeMap::new();
        nt.insert("Epoch".to_string(), "u64".to_string());
        assert_eq!(canon_type("&cdr::Any", &nt), "Any");
        assert_eq!(canon_type("Vec < monitor::Event >", &nt), "Vec<Event>");
        assert_eq!(canon_type("Epoch", &nt), "u64");
        assert_eq!(canon_type("& mut Vec<u8>", &nt), "Vec<u8>");
    }
}

//! Line-oriented lexical preprocessing for the analyzer.
//!
//! Rust has enough lexical regularity that the invariants ldft-lint checks
//! (banned paths, method calls, macro invocations) can be matched reliably
//! on *code text* once comments and literal contents are removed. This
//! module produces, per source line:
//!
//! - `code`: the line with comments stripped and string/char literal
//!   contents blanked (quotes kept, contents replaced by spaces), so rule
//!   patterns never match inside literals or docs;
//! - `comment`: the comment text on that line, used to parse
//!   `// ldft-lint: allow(RULE, reason)` directives;
//! - `depth`: the brace depth at the *start* of the line, used for
//!   `#[cfg(test)]` region tracking and function spans.

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// Code text: comments removed, literal contents blanked.
    pub code: String,
    /// Comment text appearing on this line (without `//` / `/* */` markers).
    pub comment: String,
    /// Brace depth at the start of the line.
    pub depth: u32,
    /// True when the line's `code` is all whitespace (comment/blank line).
    pub comment_only: bool,
    /// Contents of each string literal *starting* on this line, in source
    /// order. Literal contents are blanked in `code`, but the AST layer
    /// needs the values to resolve operation names.
    pub literals: Vec<String>,
}

/// Strip comments and literal contents from `source`, preserving line
/// structure. The output has exactly one entry per input line.
pub fn preprocess(source: &str) -> Vec<SourceLine> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Normal,
        Block(u32),  // nested block comment depth
        Str,         // inside "..."
        RawStr(u32), // inside r##"..."## with N hashes
    }

    let mut out = Vec::new();
    let mut state = State::Normal;
    let mut depth: u32 = 0;
    // String-literal capture: value being accumulated, the 0-based line it
    // started on, and all completed (line, value) pairs.
    let mut cur_lit = String::new();
    let mut lit_start = 0usize;
    let mut lit_events: Vec<(usize, String)> = Vec::new();

    for (line_idx, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let start_depth = depth;
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;

        while i < bytes.len() {
            let c = bytes[i];
            match state {
                State::Block(n) => {
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(n + 1);
                        i += 2;
                    } else if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if n == 1 {
                            State::Normal
                        } else {
                            State::Block(n - 1)
                        };
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        code.push(' ');
                        if i + 1 < bytes.len() {
                            code.push(' ');
                            cur_lit.push(c);
                            cur_lit.push(bytes[i + 1]);
                        }
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Normal;
                        lit_events.push((lit_start, std::mem::take(&mut cur_lit)));
                        i += 1;
                    } else {
                        code.push(' ');
                        cur_lit.push(c);
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            state = State::Normal;
                            lit_events.push((lit_start, std::mem::take(&mut cur_lit)));
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    code.push(' ');
                    cur_lit.push(c);
                    i += 1;
                }
                State::Normal => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: rest of line is comment text.
                        let text: String = bytes[i + 2..].iter().collect();
                        comment.push_str(&text);
                        i = bytes.len();
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        i += 2;
                    } else if c == 'r' && prev_nonident(&code) && is_raw_string_start(&bytes, i) {
                        // r"..." or r#"..."# (also br"...")
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        code.push('r');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        code.push('"');
                        state = State::RawStr(hashes);
                        lit_start = line_idx;
                        cur_lit.clear();
                        i = j + 1;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Str;
                        lit_start = line_idx;
                        cur_lit.clear();
                        i += 1;
                    } else if c == '\'' {
                        // Char literal vs lifetime. A char literal is 'x',
                        // '\n', '\u{..}': detect by looking for a closing
                        // quote after one (possibly escaped) element.
                        if let Some(len) = char_literal_len(&bytes, i) {
                            code.push('\'');
                            for _ in 0..len.saturating_sub(2) {
                                code.push(' ');
                            }
                            code.push('\'');
                            i += len;
                        } else {
                            // Lifetime: keep as-is (harmless for matching).
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        if c == '{' {
                            depth += 1;
                        } else if c == '}' {
                            depth = depth.saturating_sub(1);
                        }
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }

        if matches!(state, State::Str | State::RawStr(_)) {
            // Multi-line literal: keep line structure inside the value.
            cur_lit.push('\n');
        }
        let comment_only = code.trim().is_empty();
        out.push(SourceLine {
            code,
            comment: comment.trim().to_string(),
            depth: start_depth,
            comment_only,
            literals: Vec::new(),
        });
    }
    for (line, value) in lit_events {
        if let Some(sl) = out.get_mut(line) {
            sl.literals.push(value);
        }
    }
    out
}

/// True when the character before the current position (end of `code` so
/// far) is not part of an identifier — i.e. a standalone `r` can start a
/// raw string here rather than ending an identifier like `var`.
fn prev_nonident(code: &str) -> bool {
    match code.chars().last() {
        None => true,
        Some(p) => !(p.is_alphanumeric() || p == '_'),
    }
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// If position `i` (at a `'`) starts a char literal, return its total
/// length in chars (including both quotes); otherwise `None` (lifetime).
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        '\\' => {
            // Escaped: scan to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != '\'' {
                j += 1;
            }
            if j < bytes.len() {
                Some(j - i + 1)
            } else {
                None
            }
        }
        '\'' => None, // '' is not a char literal
        _ => {
            if bytes.get(i + 2) == Some(&'\'') {
                Some(3)
            } else {
                None // lifetime like 'a or 'static
            }
        }
    }
}

/// Normalize a code line for pattern matching: collapse whitespace so that
/// `std :: time :: Instant` and `. unwrap (` match their canonical
/// spellings. A single space is kept only between two identifier
/// characters (so `let x` does not become `letx`).
pub fn normalize(code: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let mut pending_space = false;
    for c in code.chars() {
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space {
            let prev_ident = out
                .chars()
                .last()
                .map(|p| p.is_alphanumeric() || p == '_')
                .unwrap_or(false);
            let cur_ident = c.is_alphanumeric() || c == '_';
            if prev_ident && cur_ident {
                out.push(' ');
            }
            pending_space = false;
        }
        out.push(c);
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find `pattern` in normalized code `hay` with identifier-boundary checks
/// at both ends: a pattern starting (or ending) with an identifier char
/// must not be preceded (or followed) by one. Returns the byte offset of
/// the first boundary-respecting match.
pub fn find_word(hay: &str, pattern: &str) -> Option<usize> {
    let first_ident = pattern.chars().next().map(is_ident_char).unwrap_or(false);
    let last_ident = pattern.chars().last().map(is_ident_char).unwrap_or(false);
    let mut from = 0;
    while let Some(pos) = hay[from..].find(pattern) {
        let at = from + pos;
        let before_ok = !first_ident
            || hay[..at]
                .chars()
                .last()
                .map(|c| !is_ident_char(c))
                .unwrap_or(true);
        let after_ok = !last_ident
            || hay[at + pattern.len()..]
                .chars()
                .next()
                .map(|c| !is_ident_char(c))
                .unwrap_or(true);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + pattern.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_keeps_text() {
        let lines = preprocess("let x = 1; // ldft-lint: allow(D1, why)\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("allow(D1, why)"));
    }

    #[test]
    fn blanks_string_contents() {
        let lines = preprocess("let s = \"std::time::Instant\";\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn handles_block_comments_across_lines() {
        let src = "a /* start\nstd::time::Instant\nend */ b\n";
        let lines = preprocess(src);
        assert_eq!(lines[0].code.trim(), "a");
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[1].comment.contains("Instant"));
        assert_eq!(lines[2].code.trim(), "b");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = preprocess("let s = r#\"HashMap::new()\"#;\n");
        assert!(!lines[0].code.contains("HashMap"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = preprocess("fn f<'a>(c: char) -> &'a str { if c == '\"' { x } else { y } }\n");
        // The quote char literal must not open a string state.
        assert!(lines[0].code.contains("else"));
    }

    #[test]
    fn depth_tracking() {
        let lines = preprocess("mod m {\n fn f() {\n }\n}\n");
        assert_eq!(lines[0].depth, 0);
        assert_eq!(lines[1].depth, 1);
        assert_eq!(lines[2].depth, 2);
        assert_eq!(lines[3].depth, 1);
    }

    #[test]
    fn normalize_collapses_method_calls() {
        assert_eq!(normalize(" . unwrap ( )"), ".unwrap()");
        assert_eq!(normalize("let  x"), "let x");
        assert_eq!(normalize("std :: time"), "std::time");
    }

    #[test]
    fn literal_values_are_captured() {
        let lines = preprocess("call(orb, \"add\", x); let s = \"two\";\n");
        assert_eq!(
            lines[0].literals,
            vec!["add".to_string(), "two".to_string()]
        );
        let raw = preprocess("let s = r#\"raw body\"#;\n");
        assert_eq!(raw[0].literals, vec!["raw body".to_string()]);
    }

    #[test]
    fn find_word_boundaries() {
        assert!(find_word("FxHashMap::new()", "HashMap").is_none());
        assert!(find_word("HashMap::new()", "HashMap").is_some());
        assert!(find_word("my_thread::spawn()", "thread::spawn").is_none());
        assert!(find_word("std::thread::spawn()", "thread::spawn").is_some());
        assert!(find_word("x.unwrap()", ".unwrap(").is_some());
        assert!(find_word("x.unwrap_or(0)", ".unwrap(").is_none());
    }
}

//! Permissive OMG-IDL parser for `idl/*.idl`.
//!
//! The wire-conformance rules (W1–W4) need to know, for every IDL
//! operation, its wire name and the Rust-side types of its `in`
//! parameters. This parser extracts exactly that — modules, interfaces,
//! operations (including `oneway` and `raises` clauses), attributes
//! (expanded to the `_get_x`/`_set_x` pseudo-operations the ORB uses on
//! the wire), typedefs, structs, enums, exceptions, and `native`
//! declarations — and maps IDL types onto the canonical Rust spellings
//! used by `crates/cdr`.
//!
//! It is *permissive*: unknown constructs are skipped at brace/semicolon
//! granularity rather than rejected, so the lint never hard-fails on an
//! IDL file the real `idlc` would accept.

use std::collections::BTreeMap;

/// One operation as it appears on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlOp {
    /// Wire name (`add`, `_get_op_count`, ...).
    pub name: String,
    /// Canonical Rust types of the `in`/`inout` parameters, in IDL order.
    pub ins: Vec<String>,
    /// Canonical Rust return type (`()` for void / attribute setters).
    pub ret: String,
    /// True for `oneway` operations (fire-and-forget; no reply).
    pub oneway: bool,
    /// 1-indexed line of the declaration in the IDL file.
    pub line: usize,
    /// True when this op was synthesized from an `attribute` declaration.
    pub from_attribute: bool,
}

/// One `interface` block.
#[derive(Debug, Clone)]
pub struct IdlInterface {
    /// Enclosing module path (`Demo`), empty if at top level.
    pub module: String,
    /// Interface name (`Calculator`).
    pub name: String,
    /// 1-indexed declaration line.
    pub line: usize,
    /// All operations, attributes already expanded.
    pub ops: Vec<IdlOp>,
}

/// One `struct`/`exception` body (used by W4 field-order checks).
#[derive(Debug, Clone)]
pub struct IdlStruct {
    /// Type name.
    pub name: String,
    /// `(field name, canonical Rust type)` in declaration order.
    pub fields: Vec<(String, String)>,
    /// 1-indexed declaration line.
    pub line: usize,
    /// True when declared with `exception` rather than `struct`.
    pub is_exception: bool,
}

/// Parse result for one `.idl` file.
#[derive(Debug, Clone, Default)]
pub struct IdlFile {
    /// Path as reported in diagnostics.
    pub path: String,
    /// All interfaces, in declaration order.
    pub interfaces: Vec<IdlInterface>,
    /// `typedef` table: alias → canonical Rust type.
    pub typedefs: BTreeMap<String, String>,
    /// Structs and exceptions.
    pub structs: Vec<IdlStruct>,
    /// `native` opaque type names (mapped to themselves in Rust).
    pub natives: Vec<String>,
    /// Enum names (mapped to themselves in Rust).
    pub enums: Vec<String>,
}

impl IdlFile {
    /// Every operation across all interfaces.
    pub fn all_ops(&self) -> impl Iterator<Item = (&IdlInterface, &IdlOp)> {
        self.interfaces
            .iter()
            .flat_map(|i| i.ops.iter().map(move |o| (i, o)))
    }
}

/// One token of IDL source.
#[derive(Debug, Clone, PartialEq, Eq)]
enum T {
    Ident(String),
    Punct(char),
}

impl T {
    fn ident(&self) -> Option<&str> {
        match self {
            T::Ident(s) => Some(s),
            T::Punct(_) => None,
        }
    }
}

/// Tokenize IDL source, stripping `//` and `/* */` comments and `#pragma`
/// lines. Returns tokens plus each token's 1-indexed line.
fn tokenize(src: &str) -> Vec<(T, usize)> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                chars.next();
                let mut prev = ' ';
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                    }
                    if prev == '*' && c2 == '/' {
                        break;
                    }
                    prev = c2;
                }
            }
            '#' => {
                // Preprocessor directive: skip to end of line.
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut word = String::new();
                word.push(c);
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        word.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((T::Ident(word), line));
            }
            c if c.is_whitespace() => {}
            _ => out.push((T::Punct(c), line)),
        }
    }
    out
}

/// Cursor over the token stream.
struct Cur<'a> {
    toks: &'a [(T, usize)],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn peek(&self) -> Option<&'a T> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }
    fn next(&mut self) -> Option<&'a T> {
        let t = self.toks.get(self.pos).map(|(t, _)| t);
        self.pos += 1;
        t
    }
    fn eat_ident(&mut self, word: &str) -> bool {
        if self.peek().and_then(T::ident) == Some(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn eat_punct(&mut self, p: char) -> bool {
        if self.peek() == Some(&T::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    /// Skip forward past the next `;`, balancing braces on the way (so a
    /// skipped `union X { ... };` is consumed whole).
    fn skip_item(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.next() {
            match t {
                T::Punct('{') => depth += 1,
                T::Punct('}') => depth = depth.saturating_sub(1),
                T::Punct(';') if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Map a parsed IDL type (already joined, e.g. `unsigned long` or
/// `sequence<double>`) to its canonical Rust spelling.
fn rust_type(idl: &str, file: &IdlFile) -> String {
    let idl = idl.trim();
    // sequence<T> → Vec<T>
    if let Some(inner) = idl
        .strip_prefix("sequence<")
        .and_then(|s| s.strip_suffix('>'))
    {
        return format!("Vec<{}>", rust_type(inner, file));
    }
    match idl {
        "void" => "()".into(),
        "boolean" => "bool".into(),
        "octet" | "char" => "u8".into(),
        "short" => "i16".into(),
        "unsigned short" => "u16".into(),
        "long" => "i32".into(),
        "unsigned long" => "u32".into(),
        "long long" => "i64".into(),
        "unsigned long long" => "u64".into(),
        "float" => "f32".into(),
        "double" => "f64".into(),
        "string" => "String".into(),
        "any" => "Any".into(),
        "Object" => "Ior".into(),
        other => {
            // Strip module scoping (`Demo::DoubleSeq` arrives as the last
            // segment because `::` tokenizes as two puncts we joined out).
            let last = other.rsplit(' ').next().unwrap_or(other);
            if let Some(t) = file.typedefs.get(last) {
                t.clone()
            } else {
                last.to_string()
            }
        }
    }
}

/// Read one type from the cursor: handles multi-word integer types,
/// `sequence<...>` (possibly nested) and scoped names `A::B`.
fn read_type(cur: &mut Cur) -> String {
    let mut words: Vec<String> = Vec::new();
    while let Some(t) = cur.peek() {
        match t {
            T::Ident(w) => {
                let w = w.clone();
                cur.pos += 1;
                if w == "sequence" {
                    // sequence < type [, bound] >
                    let mut s = String::from("sequence<");
                    if cur.eat_punct('<') {
                        s.push_str(&read_type(cur));
                        // Optional bound: `, 10`
                        if cur.eat_punct(',') {
                            while !matches!(cur.peek(), Some(T::Punct('>')) | None) {
                                cur.pos += 1;
                            }
                        }
                        cur.eat_punct('>');
                    }
                    s.push('>');
                    words.push(s);
                    break;
                }
                let multiword = matches!(w.as_str(), "unsigned" | "long" | "short");
                words.push(w);
                if !multiword {
                    // A scoped name `A::B` continues; anything else ends it.
                    if cur.peek() == Some(&T::Punct(':')) {
                        continue;
                    }
                    break;
                }
                // `long` may be followed by `long` or end the type; `unsigned`
                // must be followed by more. Peek: if next is one of the
                // integer words, continue, else stop.
                match cur.peek().and_then(T::ident) {
                    Some("long") | Some("short") => continue,
                    _ => break,
                }
            }
            T::Punct(':') => {
                // Scoped name `A::B` — keep only the tail.
                cur.pos += 1;
                cur.eat_punct(':');
                words.clear();
            }
            _ => break,
        }
    }
    words.join(" ")
}

/// Parse a parameter list `( in T a, out U b, ... )`; returns canonical
/// Rust types of `in`/`inout` params.
fn read_params(cur: &mut Cur, file: &IdlFile) -> Vec<String> {
    let mut ins = Vec::new();
    if !cur.eat_punct('(') {
        return ins;
    }
    loop {
        match cur.peek() {
            None | Some(T::Punct(')')) => {
                cur.eat_punct(')');
                break;
            }
            Some(T::Punct(',')) => {
                cur.pos += 1;
            }
            _ => {
                let dir_in = if cur.eat_ident("in") || cur.eat_ident("inout") {
                    true
                } else {
                    // `out` params never travel in the request body.
                    !cur.eat_ident("out")
                };
                let ty = read_type(cur);
                // Parameter name.
                if matches!(cur.peek(), Some(T::Ident(_))) {
                    cur.pos += 1;
                }
                if dir_in && !ty.is_empty() {
                    ins.push(rust_type(&ty, file));
                }
            }
        }
    }
    ins
}

/// Parse an `interface` body after its `{`.
fn parse_interface(cur: &mut Cur, module: &str, name: String, line: usize, file: &mut IdlFile) {
    let mut iface = IdlInterface {
        module: module.to_string(),
        name,
        line,
        ops: Vec::new(),
    };
    loop {
        let line = cur.line();
        match cur.peek() {
            None => break,
            Some(T::Punct('}')) => {
                cur.pos += 1;
                cur.eat_punct(';');
                break;
            }
            _ => {}
        }
        if cur.eat_ident("readonly") {
            // readonly attribute T name [, name]* ;
            cur.eat_ident("attribute");
            let ty = read_type(cur);
            let rty = rust_type(&ty, file);
            while let Some(T::Ident(attr)) = cur.peek() {
                iface.ops.push(IdlOp {
                    name: format!("_get_{attr}"),
                    ins: Vec::new(),
                    ret: rty.clone(),
                    oneway: false,
                    line,
                    from_attribute: true,
                });
                cur.pos += 1;
                if !cur.eat_punct(',') {
                    break;
                }
            }
            cur.eat_punct(';');
        } else if cur.eat_ident("attribute") {
            let ty = read_type(cur);
            let rty = rust_type(&ty, file);
            while let Some(T::Ident(attr)) = cur.peek() {
                iface.ops.push(IdlOp {
                    name: format!("_get_{attr}"),
                    ins: Vec::new(),
                    ret: rty.clone(),
                    oneway: false,
                    line,
                    from_attribute: true,
                });
                iface.ops.push(IdlOp {
                    name: format!("_set_{attr}"),
                    ins: vec![rty.clone()],
                    ret: "()".into(),
                    oneway: false,
                    line,
                    from_attribute: true,
                });
                cur.pos += 1;
                if !cur.eat_punct(',') {
                    break;
                }
            }
            cur.eat_punct(';');
        } else {
            // Operation: [oneway] ret name ( params ) [raises (...)] ;
            let oneway = cur.eat_ident("oneway");
            let ret = read_type(cur);
            let Some(T::Ident(op_name)) = cur.peek() else {
                cur.skip_item();
                continue;
            };
            let op_name = op_name.clone();
            cur.pos += 1;
            if cur.peek() != Some(&T::Punct('(')) {
                cur.skip_item();
                continue;
            }
            let ins = read_params(cur, file);
            if cur.eat_ident("raises") {
                // raises ( Exc [, Exc]* )
                if cur.eat_punct('(') {
                    while !matches!(cur.peek(), Some(T::Punct(')')) | None) {
                        cur.pos += 1;
                    }
                    cur.eat_punct(')');
                }
            }
            cur.eat_punct(';');
            iface.ops.push(IdlOp {
                name: op_name,
                ins,
                ret: rust_type(&ret, file),
                oneway,
                line,
                from_attribute: false,
            });
        }
    }
    file.interfaces.push(iface);
}

/// Parse a `struct`/`exception` body after the name.
fn parse_struct(cur: &mut Cur, name: String, line: usize, is_exception: bool, file: &mut IdlFile) {
    let mut fields = Vec::new();
    if cur.eat_punct('{') {
        loop {
            match cur.peek() {
                None => break,
                Some(T::Punct('}')) => {
                    cur.pos += 1;
                    cur.eat_punct(';');
                    break;
                }
                Some(T::Punct(_)) => {
                    cur.pos += 1;
                }
                Some(T::Ident(_)) => {
                    let ty = read_type(cur);
                    let rty = rust_type(&ty, file);
                    while let Some(T::Ident(fname)) = cur.peek() {
                        fields.push((fname.clone(), rty.clone()));
                        cur.pos += 1;
                        if !cur.eat_punct(',') {
                            break;
                        }
                    }
                    cur.eat_punct(';');
                }
            }
        }
    }
    file.structs.push(IdlStruct {
        name,
        fields,
        line,
        is_exception,
    });
}

/// Parse one `.idl` source file.
pub fn parse(path: &str, src: &str) -> IdlFile {
    let toks = tokenize(src);
    let mut cur = Cur {
        toks: &toks,
        pos: 0,
    };
    let mut file = IdlFile {
        path: path.to_string(),
        ..IdlFile::default()
    };
    let mut modules: Vec<String> = Vec::new();
    loop {
        let line = cur.line();
        let Some(t) = cur.peek() else { break };
        match t {
            T::Punct('}') => {
                cur.pos += 1;
                cur.eat_punct(';');
                modules.pop();
            }
            T::Punct(_) => {
                cur.pos += 1;
            }
            T::Ident(w) => match w.as_str() {
                "module" => {
                    cur.pos += 1;
                    if let Some(T::Ident(name)) = cur.peek() {
                        modules.push(name.clone());
                        cur.pos += 1;
                    }
                    cur.eat_punct('{');
                }
                "interface" => {
                    cur.pos += 1;
                    let Some(T::Ident(name)) = cur.peek() else {
                        cur.skip_item();
                        continue;
                    };
                    let name = name.clone();
                    cur.pos += 1;
                    // Optional inheritance: `: Base [, Base]*`
                    if cur.eat_punct(':') {
                        while !matches!(cur.peek(), Some(T::Punct('{')) | None) {
                            cur.pos += 1;
                        }
                    }
                    if cur.eat_punct('{') {
                        parse_interface(&mut cur, &modules.join("::"), name, line, &mut file);
                    } else {
                        // Forward declaration `interface X;`.
                        cur.eat_punct(';');
                    }
                }
                "typedef" => {
                    cur.pos += 1;
                    let ty = read_type(&mut cur);
                    let rty = rust_type(&ty, &file);
                    if let Some(T::Ident(alias)) = cur.peek() {
                        file.typedefs.insert(alias.clone(), rty);
                        cur.pos += 1;
                    }
                    cur.skip_item();
                }
                "struct" | "exception" => {
                    let is_exception = w == "exception";
                    cur.pos += 1;
                    let Some(T::Ident(name)) = cur.peek() else {
                        cur.skip_item();
                        continue;
                    };
                    let name = name.clone();
                    cur.pos += 1;
                    parse_struct(&mut cur, name, line, is_exception, &mut file);
                }
                "enum" => {
                    cur.pos += 1;
                    if let Some(T::Ident(name)) = cur.peek() {
                        file.enums.push(name.clone());
                        cur.pos += 1;
                    }
                    cur.skip_item();
                }
                "native" => {
                    cur.pos += 1;
                    if let Some(T::Ident(name)) = cur.peek() {
                        file.natives.push(name.clone());
                        cur.pos += 1;
                    }
                    cur.skip_item();
                }
                "const" => {
                    cur.pos += 1;
                    cur.skip_item();
                }
                _ => {
                    // Unknown top-level construct; skip conservatively.
                    cur.skip_item();
                }
            },
        }
    }
    file
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calculator_shape() {
        let src = r#"
module Demo {
    typedef sequence<double> DoubleSeq;
    typedef sequence<octet> OctetSeq;
    exception MathError { string reason; };
    interface Calculator {
        readonly attribute unsigned long op_count;
        attribute double precision;
        double add(in double a, in double b);
        double div(in double a, in double b) raises (MathError);
        DoubleSeq scale(in DoubleSeq values, in double factor);
        void stats(out unsigned long ops, out double last);
        oneway void log(in string message);
        OctetSeq get_checkpoint();
        void restore_checkpoint(in OctetSeq state);
    };
};
"#;
        let f = parse("idl/calculator.idl", src);
        assert_eq!(f.interfaces.len(), 1);
        let calc = &f.interfaces[0];
        assert_eq!(calc.module, "Demo");
        assert_eq!(calc.name, "Calculator");
        let names: Vec<&str> = calc.ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "_get_op_count",
                "_get_precision",
                "_set_precision",
                "add",
                "div",
                "scale",
                "stats",
                "log",
                "get_checkpoint",
                "restore_checkpoint",
            ]
        );
        let add = calc.ops.iter().find(|o| o.name == "add").unwrap();
        assert_eq!(add.ins, vec!["f64", "f64"]);
        assert_eq!(add.ret, "f64");
        let scale = calc.ops.iter().find(|o| o.name == "scale").unwrap();
        assert_eq!(scale.ins, vec!["Vec<f64>", "f64"]);
        let stats = calc.ops.iter().find(|o| o.name == "stats").unwrap();
        assert!(stats.ins.is_empty());
        let log = calc.ops.iter().find(|o| o.name == "log").unwrap();
        assert!(log.oneway);
        assert_eq!(log.ins, vec!["String"]);
        let get = calc
            .ops
            .iter()
            .find(|o| o.name == "get_checkpoint")
            .unwrap();
        assert_eq!(get.ret, "Vec<u8>");
        let err = f.structs.iter().find(|s| s.name == "MathError").unwrap();
        assert!(err.is_exception);
        assert_eq!(err.fields, vec![("reason".into(), "String".into())]);
    }

    #[test]
    fn native_struct_enum_and_scoped_names() {
        let src = r#"
module Mon {
    native EventBody;
    enum Severity { INFO, WARN };
    typedef unsigned long long Epoch;
    struct Event {
        unsigned long long seq;
        EventBody body;
        Severity sev;
    };
    interface Channel {
        void push(in sequence<Event> batch);
        Epoch epoch_of(in Mon::Event e);
    };
};
"#;
        let f = parse("idl/mon.idl", src);
        assert_eq!(f.natives, vec!["EventBody"]);
        assert_eq!(f.enums, vec!["Severity"]);
        let ev = &f.structs[0];
        assert_eq!(
            ev.fields,
            vec![
                ("seq".into(), "u64".into()),
                ("body".into(), "EventBody".into()),
                ("sev".into(), "Severity".into()),
            ]
        );
        let ch = &f.interfaces[0];
        assert_eq!(ch.ops[0].ins, vec!["Vec<Event>"]);
        assert_eq!(ch.ops[1].ins, vec!["Event"]);
        assert_eq!(ch.ops[1].ret, "u64");
    }

    #[test]
    fn unknown_constructs_are_skipped() {
        let src = "union U switch(long) { case 1: long a; };\ninterface I { void f(); };\n";
        let f = parse("x.idl", src);
        assert_eq!(f.interfaces.len(), 1);
        assert_eq!(f.interfaces[0].ops[0].name, "f");
    }
}

//! The v3 workspace call graph: function nodes keyed by
//! `(crate, impl type, fn name)`, edges from the AST's call sites.
//!
//! Call resolution is evidence-based and layered, cheapest first:
//!
//! 1. `self.m(...)` binds to the enclosing impl's own `m`, then to any
//!    same-crate `m`.
//! 2. `recv.m(...)` is resolved through the *receiver's type* where the
//!    type is locally recoverable: a fn parameter `recv: T`, a
//!    `let recv = T::...` / `let recv: T = ...` binding, or — for
//!    `self.field.m(...)` — the owner struct's field type (struct shapes
//!    are indexed workspace-wide).
//! 3. Calls into the orb stub API ([`REMOTE_API`]) bind to the orb
//!    crate's implementations and are recorded as **remote invocation
//!    sites**; when the operation name is evidenced in the argument list
//!    (string literal or ALL-CAPS op const), the site additionally gets a
//!    *dispatch edge* to every `Servant::dispatch` skeleton that handles
//!    that IDL operation — the IDL op table links client to server.
//! 4. A method implemented only by impls of one trait fans out to every
//!    impl (trait-virtual dispatch, e.g. `servant.dispatch(...)`).
//! 5. A workspace-unique free-fn/method name resolves globally.
//!
//! Unresolvable calls get no edge (never guessed). The graph covers the
//! sim-facing crates (minus `simnet`, which sits below the stub layer),
//! the `bench` harness that drives them, and the workspace-level
//! integration tests (crate label `tests`); test functions are kept as
//! nodes (they are the experiment roots reachability starts from) but
//! flagged so the failure-path rules skip them.

use crate::analysis::FileAnalysis;
use crate::ast::TokKind;
use crate::idlparse::IdlFile;
use crate::rules::SIM_CRATES;
use std::collections::{BTreeMap, BTreeSet};

/// Orb stub methods that perform (or complete) a remote invocation.
/// `Ctx`-receiver calls are excluded at the use site: `ctx.call(..)` is
/// the simnet syscall underneath the stub layer, not a remote invocation.
pub const REMOTE_API: &[&str] = &[
    "invoke",
    "invoke_oneway",
    "invoke_with_timeout",
    "call",
    "call_with_timeout",
    "oneway",
    "ping",
    "locate",
    "send_deferred",
    "get_response",
];

/// Stub methods whose argument list names the IDL operation (literal or
/// op-const) — the evidence the dispatch edges key on.
const OP_CARRYING: &[&str] = &[
    "call",
    "call_with_timeout",
    "oneway",
    "invoke",
    "invoke_with_timeout",
    "invoke_oneway",
];

/// Method names too generic to resolve by name: std-library vocabulary
/// that would alias unrelated functions across the workspace.
const RESOLVE_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "write",
    "read",
    "with",
    "take",
    "put",
    "replace",
    "lock",
    "from",
    "into",
    "to_string",
    "to_vec",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_deref",
    "contains",
    "contains_key",
    "clear",
    "extend",
    "send",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "ok_or",
    "err",
    "min",
    "max",
    "abs",
    "collect",
    "filter",
    "filter_map",
    "flat_map",
    "any",
    "all",
    "find",
    "position",
    "sum",
    "count",
    "join",
    "split",
    "trim",
    "sort",
    "sort_by",
    "sort_by_key",
    "entry",
    "or_default",
    "or_insert",
    "values",
    "values_mut",
    "keys",
    "cmp",
    "eq",
    "ne",
    "hash",
    "retain",
    "drain",
    "chunks",
    "windows",
    "rev",
    "enumerate",
    "zip",
    "chain",
    "copied",
    "cloned",
    "first",
    "last",
    "expect",
    "unwrap",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "then",
    "then_some",
    "saturating_add",
    "saturating_sub",
    "wrapping_mul",
    "checked_sub",
];

/// Which graph crate a file belongs to, if any. `simnet` is excluded (it
/// implements the transport the stub layer sits on); files outside
/// `crates/` (the root `tests/` harness) get the pseudo-crate `tests`.
pub fn graph_crate(crate_dir: Option<&str>) -> Option<String> {
    match crate_dir {
        Some("simnet") => None,
        Some("bench") => Some("bench".to_string()),
        Some(d) if SIM_CRATES.contains(&d) => Some(d.to_string()),
        Some(_) => None,
        None => Some("tests".to_string()),
    }
}

/// How an edge was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Free fn or `self.` method resolved within one crate (sound subset).
    Static,
    /// Receiver-type, trait-fan-out, or workspace-unique-name resolution.
    Method,
    /// Call into the orb stub API (client side of a remote invocation).
    Stub,
    /// Client op routed to the `Servant::dispatch` skeleton handling it.
    Dispatch,
}

/// One function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Graph crate (`orb`, `ft`, ..., `bench`, `tests`).
    pub krate: String,
    /// Enclosing impl's type name, `""` for free functions.
    pub owner: String,
    /// Function name.
    pub name: String,
    /// Trait the enclosing impl implements, if any.
    pub trait_name: Option<String>,
    pub file: String,
    pub line: usize,
    /// Declared in test code (test roots; exempt from the F rules).
    pub is_test: bool,
    /// Index into the analyses slice this node was parsed from.
    pub file_idx: usize,
    /// Body token range (brace indices, exclusive content).
    pub body: (usize, usize),
    /// Body mentions a reply deadline (`deadline` / `request_timeout`).
    pub has_deadline: bool,
    /// Body sleeps or backs off (`sleep` / `*backoff*`).
    pub has_sleep: bool,
    /// Body contains a remote invocation site.
    pub has_remote: bool,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    /// Token index of the call-name identifier in `from`'s file.
    pub call_tok: usize,
    pub line: usize,
    pub kind: EdgeKind,
}

/// One remote invocation site (a call into [`REMOTE_API`]).
#[derive(Debug, Clone)]
pub struct RemoteSite {
    /// Enclosing fn node.
    pub node: usize,
    /// Token index of the method-name identifier.
    pub tok: usize,
    pub line: usize,
    pub method: String,
    /// IDL operation the site names, when evidenced in the arguments.
    pub op: Option<String>,
    /// Resolved callee nodes (empty when resolution failed).
    pub targets: Vec<usize>,
    pub is_test: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    pub edges: Vec<Edge>,
    pub remote_sites: Vec<RemoteSite>,
    /// Edge indices grouped by `from` node.
    adj: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Nodes reachable from `starts` over edges whose kind passes `allow`
    /// (including the start nodes themselves).
    pub fn reachable(
        &self,
        starts: impl IntoIterator<Item = usize>,
        allow: impl Fn(EdgeKind) -> bool,
    ) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<usize> = starts.into_iter().collect();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for &ei in &self.adj[n] {
                let e = &self.edges[ei];
                if allow(e.kind) && !seen.contains(&e.to) {
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Outgoing edges of one node.
    pub fn edges_from(&self, n: usize) -> impl Iterator<Item = &Edge> {
        self.adj[n].iter().map(move |&ei| &self.edges[ei])
    }

    /// Per-crate `(nodes, edges-from)` counts, for the selfcheck pin.
    pub fn crate_counts(&self) -> BTreeMap<String, (usize, usize)> {
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for n in &self.nodes {
            out.entry(n.krate.clone()).or_default().0 += 1;
        }
        for e in &self.edges {
            out.entry(self.nodes[e.from].krate.clone()).or_default().1 += 1;
        }
        out
    }

    /// Graphviz rendering: one cluster per crate, dispatch edges dashed.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            by_crate.entry(&n.krate).or_default().push(i);
        }
        for (krate, nodes) in &by_crate {
            let _ = writeln!(
                out,
                "  subgraph \"cluster_{krate}\" {{\n    label=\"{krate}\";"
            );
            for &i in nodes {
                let n = &self.nodes[i];
                let label = if n.owner.is_empty() {
                    n.name.clone()
                } else {
                    format!("{}::{}", n.owner, n.name)
                };
                let style = if n.is_test { ", style=dotted" } else { "" };
                let _ = writeln!(out, "    n{i} [label=\"{label}\"{style}];");
            }
            out.push_str("  }\n");
        }
        for e in &self.edges {
            let style = match e.kind {
                EdgeKind::Dispatch => " [style=dashed, color=blue]",
                EdgeKind::Stub => " [color=red]",
                _ => "",
            };
            let _ = writeln!(out, "  n{} -> n{}{style};", e.from, e.to);
        }
        out.push_str("}\n");
        out
    }

    /// Machine-readable rendering (nodes, edges, remote sites).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"crate\":{},\"impl\":{},\"fn\":{},\"file\":{},\"line\":{},\"test\":{}}}",
                    esc(&n.krate),
                    esc(&n.owner),
                    esc(&n.name),
                    esc(&n.file),
                    n.line,
                    n.is_test
                )
            })
            .collect();
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                format!(
                    "{{\"from\":{},\"to\":{},\"line\":{},\"kind\":{}}}",
                    e.from,
                    e.to,
                    e.line,
                    esc(&format!("{:?}", e.kind).to_ascii_lowercase())
                )
            })
            .collect();
        let sites: Vec<String> = self
            .remote_sites
            .iter()
            .map(|s| {
                let op = s.op.as_deref().map(esc).unwrap_or_else(|| "null".into());
                format!(
                    "{{\"node\":{},\"line\":{},\"method\":{},\"op\":{}}}",
                    s.node,
                    s.line,
                    esc(&s.method),
                    op
                )
            })
            .collect();
        format!(
            "{{\"nodes\":[{}],\"edges\":[{}],\"remote_sites\":[{}]}}",
            nodes.join(","),
            edges.join(","),
            sites.join(",")
        )
    }
}

/// Last path segment of a type spelling: `&mut orb::ObjectRef` →
/// `ObjectRef`, `Option<Shared<T>>` → `Option`.
fn ty_tail(raw: &str) -> String {
    let t = raw.replace('&', "").replace("mut ", "");
    let t = t.trim();
    let cut = t.find('<').unwrap_or(t.len());
    let head = &t[..cut];
    head.rsplit("::").next().unwrap_or(head).trim().to_string()
}

/// Build the graph over the analyzed workspace.
pub fn build(files: &[FileAnalysis], idls: &[IdlFile]) -> CallGraph {
    let mut g = CallGraph::default();

    // --- Nodes -------------------------------------------------------------
    for (fi, fa) in files.iter().enumerate() {
        let Some(krate) = graph_crate(fa.crate_dir.as_deref()) else {
            continue;
        };
        for f in &fa.ast.fns {
            let Some(body) = f.body else { continue };
            let imp = fa
                .ast
                .impls
                .iter()
                .filter(|im| im.body.open < body.open && body.close < im.body.close)
                .min_by_key(|im| im.body.close - im.body.open);
            let mut has_deadline = false;
            let mut has_sleep = false;
            for t in &fa.ast.toks[body.open..body.close] {
                if t.kind != TokKind::Ident {
                    continue;
                }
                let lower = t.text.to_ascii_lowercase();
                if lower.contains("deadline") || t.text == "request_timeout" {
                    has_deadline = true;
                }
                if t.text == "sleep" || lower.contains("backoff") {
                    has_sleep = true;
                }
            }
            g.nodes.push(Node {
                krate: krate.clone(),
                owner: imp.map(|i| i.type_name.clone()).unwrap_or_default(),
                name: f.name.clone(),
                trait_name: imp.and_then(|i| i.trait_name.clone()),
                file: fa.path.clone(),
                line: f.line,
                is_test: fa.is_test_line(f.line),
                file_idx: fi,
                body: (body.open, body.close),
                has_deadline,
                has_sleep,
                has_remote: false,
            });
        }
    }

    // --- Indexes -----------------------------------------------------------
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_krate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, n) in g.nodes.iter().enumerate() {
        by_name.entry(&n.name).or_default().push(i);
        by_krate_name
            .entry((&n.krate, &n.name))
            .or_default()
            .push(i);
        if !n.owner.is_empty() {
            by_owner.entry((&n.owner, &n.name)).or_default().push(i);
        }
    }
    // ALL-CAPS string consts (op names) across the workspace.
    let mut consts: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    // Struct shapes: type name → field name → field type tail.
    let mut fields: BTreeMap<&str, BTreeMap<&str, String>> = BTreeMap::new();
    for fa in files {
        for (name, value, _) in &fa.ast.str_consts {
            consts.entry(name).or_default().insert(value);
        }
        for st in &fa.ast.structs {
            let entry = fields.entry(&st.name).or_default();
            for f in &st.fields {
                entry.insert(&f.name, ty_tail(&f.ty));
            }
        }
    }
    // Types the workspace knows the shape of: a typed-resolution miss on
    // one of these is final (the method is off-graph, e.g. on `simnet`),
    // while a miss on an unknown type (generic param, boxed trait object)
    // may still fall through to trait fan-out.
    let mut known_types: BTreeSet<&str> = fields.keys().copied().collect();
    for n in &g.nodes {
        if !n.owner.is_empty() {
            known_types.insert(&n.owner);
        }
    }
    // Return-type index: fn name → the workspace types its declared return
    // type mentions first (`SimResult<Result<NamingClient, Exception>>` →
    // `NamingClient`, the success position). Lets `let c = helper(...)`
    // and `let c = recv.method(...)` initializers type their binding when
    // every fn of that name agrees.
    let mut ret_types: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for fa in files {
        // Only graphed crates: an off-graph fn that shadows a std method
        // name (`expect`, `unwrap`) must not type graph-crate bindings.
        if graph_crate(fa.crate_dir.as_deref()).is_none() {
            continue;
        }
        for f in &fa.ast.fns {
            if f.ret.is_empty() || RESOLVE_STOPLIST.contains(&f.name.as_str()) {
                continue;
            }
            if let Some(ty) = first_known_type(&f.ret, &known_types) {
                ret_types.entry(&f.name).or_default().insert(ty);
            }
        }
    }
    // IDL op names, and per-op dispatch skeleton nodes: a `dispatch` fn in
    // an `impl Servant` whose body evidences the op (literal or op const).
    let idl_ops: BTreeSet<&str> = idls
        .iter()
        .flat_map(|i| i.all_ops().map(|(_, op)| op.name.as_str()))
        .collect();
    let mut dispatchers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in g.nodes.iter().enumerate() {
        if n.name != "dispatch" || n.trait_name.as_deref() != Some("Servant") {
            continue;
        }
        let fa = &files[n.file_idx];
        for t in &fa.ast.toks[n.body.0..n.body.1] {
            match t.kind {
                TokKind::Lit => {
                    if let Some(op) = idl_ops.get(t.text.as_str()) {
                        dispatchers.entry(op).or_default().push(i);
                    }
                }
                TokKind::Ident => {
                    for v in consts.get(t.text.as_str()).into_iter().flatten() {
                        if let Some(op) = idl_ops.get(*v) {
                            dispatchers.entry(op).or_default().push(i);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // --- Edges -------------------------------------------------------------
    let mut edge_set: BTreeSet<Edge> = BTreeSet::new();
    let mut remote_flags: BTreeSet<usize> = BTreeSet::new();
    for ni in 0..g.nodes.len() {
        let n = g.nodes[ni].clone();
        let fa = &files[n.file_idx];
        let ast = &fa.ast;
        for c in &ast.calls {
            if c.name_tok <= n.body.0 || c.name_tok >= n.body.1 {
                continue;
            }
            // Innermost-fn ownership (nested fns own their own calls).
            if ast
                .enclosing_fn(c.name_tok)
                .map(|o| o.line != n.line || o.name != n.name)
                .unwrap_or(true)
            {
                continue;
            }
            if RESOLVE_STOPLIST.contains(&c.method.as_str()) {
                continue;
            }
            // `ctx.*` is the simnet syscall layer below the graph — never
            // resolve it (a `ctx.call` is a channel send, not a stub call).
            if c.recv_tail.as_deref() == Some("ctx") {
                continue;
            }
            let is_remote = c.is_method && REMOTE_API.contains(&c.method.as_str());

            // Resolve the call to candidate nodes.
            let mut kind = EdgeKind::Method;
            let mut targets: Vec<usize> = Vec::new();
            if !c.is_method {
                if let Some(v) = by_krate_name.get(&(n.krate.as_str(), c.method.as_str())) {
                    targets = v.clone();
                    kind = EdgeKind::Static;
                } else if let Some(v) = by_name.get(c.method.as_str()) {
                    if v.len() == 1 {
                        targets = v.clone();
                    }
                }
            } else if c.recv_tail.as_deref() == Some("self") {
                if !n.owner.is_empty() {
                    if let Some(v) = by_owner.get(&(n.owner.as_str(), c.method.as_str())) {
                        // Same-crate impls of the owner type win.
                        let local: Vec<usize> = v
                            .iter()
                            .copied()
                            .filter(|&t| g.nodes[t].krate == n.krate)
                            .collect();
                        targets = if local.is_empty() { v.clone() } else { local };
                        kind = EdgeKind::Static;
                    }
                }
                if targets.is_empty() {
                    if let Some(v) = by_krate_name.get(&(n.krate.as_str(), c.method.as_str())) {
                        targets = v.clone();
                        kind = EdgeKind::Static;
                    }
                }
            } else {
                // Receiver-typed resolution; a recovered type is trusted
                // (no name-based fallback past it, except the stub API).
                let ty = recv_type(fa, &n, c, &fields, &ret_types);
                if let Some(ty) = &ty {
                    if let Some(v) = by_owner.get(&(ty.as_str(), c.method.as_str())) {
                        targets = v.clone();
                    }
                }
                // Stub API: the orb crate implements these.
                if targets.is_empty() && is_remote {
                    if let Some(v) = by_krate_name.get(&("orb", c.method.as_str())) {
                        targets = v.clone();
                        kind = EdgeKind::Stub;
                    }
                }
                // Name-based: trait fan-out (every candidate impls the
                // same trait) or workspace-unique — only for receivers
                // whose type is unrecovered or unknown to the workspace.
                let ty_is_final = ty
                    .as_deref()
                    .map(|t| known_types.contains(t))
                    .unwrap_or(false);
                if targets.is_empty() && !ty_is_final {
                    if let Some(v) = by_name.get(c.method.as_str()) {
                        let traits: BTreeSet<&str> = v
                            .iter()
                            .filter_map(|&t| g.nodes[t].trait_name.as_deref())
                            .collect();
                        if v.len() == 1 {
                            targets = v.clone();
                        } else if traits.len() == 1
                            && v.iter().all(|&t| g.nodes[t].trait_name.is_some())
                        {
                            targets = v.clone();
                            // Fanning out through `Servant` is the POA
                            // handing a request to a skeleton: that edge
                            // crosses the wire, and client-side facts
                            // (deadlines, backoff) must not flow over it.
                            if traits.contains("Servant") {
                                kind = EdgeKind::Dispatch;
                            }
                        }
                    }
                }
            }
            for &t in &targets {
                // Keep soundly-resolved self-recursion (it is a real retry
                // cycle); drop self-edges from name-based fan-out noise.
                if t == ni && kind != EdgeKind::Static {
                    continue;
                }
                edge_set.insert(Edge {
                    from: ni,
                    to: t,
                    call_tok: c.name_tok,
                    line: c.line,
                    kind,
                });
            }

            if is_remote {
                // Op evidence: a short argument that is a string literal
                // or an ALL-CAPS const naming an IDL operation.
                let mut op: Option<String> = None;
                if OP_CARRYING.contains(&c.method.as_str()) {
                    'args: for arg in &c.args {
                        if arg.toks.1 - arg.toks.0 > 3 {
                            continue;
                        }
                        for t in &ast.toks[arg.toks.0..arg.toks.1] {
                            let found = match t.kind {
                                TokKind::Lit => idl_ops.get(t.text.as_str()).copied(),
                                TokKind::Ident => consts
                                    .get(t.text.as_str())
                                    .and_then(|vals| vals.iter().find(|v| idl_ops.contains(**v)))
                                    .copied(),
                                _ => None,
                            };
                            if let Some(o) = found {
                                op = Some(o.to_string());
                                break 'args;
                            }
                        }
                    }
                }
                if let Some(o) = &op {
                    for &d in dispatchers.get(o.as_str()).into_iter().flatten() {
                        if d != ni {
                            edge_set.insert(Edge {
                                from: ni,
                                to: d,
                                call_tok: c.name_tok,
                                line: c.line,
                                kind: EdgeKind::Dispatch,
                            });
                        }
                    }
                }
                remote_flags.insert(ni);
                g.remote_sites.push(RemoteSite {
                    node: ni,
                    tok: c.name_tok,
                    line: c.line,
                    method: c.method.clone(),
                    op,
                    targets: targets.clone(),
                    is_test: n.is_test || fa.is_test_line(c.line),
                });
            }
        }
    }

    for ni in remote_flags {
        g.nodes[ni].has_remote = true;
    }
    g.edges = edge_set.into_iter().collect();
    g.adj = vec![Vec::new(); g.nodes.len()];
    for (ei, e) in g.edges.iter().enumerate() {
        g.adj[e.from].push(ei);
    }
    g.remote_sites.sort_by_key(|s| (s.node, s.tok));
    g
}

/// First workspace-known type named in a return-type string — the success
/// position of `SimResult<Result<T, Exception>>` wrappers.
fn first_known_type(ret: &str, known: &BTreeSet<&str>) -> Option<String> {
    ret.split(|c: char| !c.is_alphanumeric() && c != '_')
        .find(|seg| known.contains(seg))
        .map(str::to_string)
}

/// Recover the receiver's type for `recv.m(...)`: fn parameter, local
/// `let` binding, or — for `self.field.m(...)` — the owner struct's field.
fn recv_type(
    fa: &FileAnalysis,
    node: &Node,
    call: &crate::ast::Call,
    fields: &BTreeMap<&str, BTreeMap<&str, String>>,
    ret_types: &BTreeMap<&str, BTreeSet<String>>,
) -> Option<String> {
    let recv = call.recv_tail.as_deref()?;
    let ast = &fa.ast;
    let toks = &ast.toks;
    // `self.field.m(...)`: tokens walk `m ( ← . ← field ← . ← self`.
    if call.name_tok >= 4
        && toks[call.name_tok - 1].is(".")
        && toks[call.name_tok - 2].text == recv
        && toks[call.name_tok - 3].is(".")
        && toks[call.name_tok - 4].is("self")
        && !node.owner.is_empty()
    {
        if let Some(ty) = fields.get(node.owner.as_str()).and_then(|m| m.get(recv)) {
            return Some(ty.clone());
        }
    }
    // Fn parameter `recv: T`.
    let item = ast
        .fns
        .iter()
        .find(|f| f.line == node.line && f.name == node.name)?;
    for p in &item.params {
        if p.name == recv && !p.ty.is_empty() {
            return Some(ty_tail(&p.ty));
        }
    }
    // `let [mut] recv [: T] = [T2 ::|{] ...` inside the body.
    let body = item.body?;
    let mut i = body.open;
    while i + 2 < body.close {
        if !toks[i].is("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).map(|t| t.is("mut")).unwrap_or(false) {
            j += 1;
        }
        if toks.get(j).map(|t| t.text != recv).unwrap_or(true) {
            i += 1;
            continue;
        }
        j += 1;
        // Explicit ascription: `: T =`.
        if toks.get(j).map(|t| t.is(":")).unwrap_or(false) {
            let ty_start = j + 1;
            let mut k = ty_start;
            while k < body.close && !toks[k].is("=") && !toks[k].is(";") {
                k += 1;
            }
            if k > ty_start {
                return Some(ty_tail(&crate::ast::join_tokens(&toks[ty_start..k])));
            }
        }
        // Initializer: `= T::...`, `= T { ...`, or a call whose declared
        // return type names a workspace type (`= helper(...)`,
        // `= recv.method(...).unwrap()...`).
        if toks.get(j).map(|t| t.is("=")).unwrap_or(false) {
            // Walk a path `A :: B :: C` or a chain `a . b . c` up to the
            // call paren / struct-literal brace.
            let mut segs: Vec<&str> = Vec::new();
            let mut pure_path = true;
            let mut k = j + 1;
            while k < body.close {
                let t = &toks[k];
                if t.kind == TokKind::Ident {
                    segs.push(&t.text);
                    k += 1;
                    if toks.get(k).map(|t| t.is("::")).unwrap_or(false) {
                        k += 1;
                        continue;
                    }
                    if toks.get(k).map(|t| t.is(".")).unwrap_or(false) {
                        pure_path = false;
                        k += 1;
                        continue;
                    }
                    break;
                }
                break;
            }
            let ends_call = toks.get(k).map(|t| t.is("(")).unwrap_or(false);
            let ends_lit = toks.get(k).map(|t| t.is("{")).unwrap_or(false);
            // `T::f(...)`: associated constructor — the type is the
            // segment before the fn.
            if pure_path && segs.len() >= 2 && ends_call {
                return Some(segs[segs.len() - 2].to_string());
            }
            if pure_path && segs.len() == 1 && ends_lit {
                return Some(segs[0].to_string());
            }
            // Any other call head: type from the callee's declared return
            // when every fn of that name agrees on one workspace type.
            if ends_call {
                if let Some(tys) = segs.last().and_then(|f| ret_types.get(f)) {
                    if tys.len() == 1 {
                        return Some(tys.iter().next().unwrap().clone());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(sources: &[(&str, &str)]) -> CallGraph {
        let files: Vec<FileAnalysis> = sources
            .iter()
            .map(|(path, src)| {
                let dir = crate::crate_dir_of(path);
                FileAnalysis::new(path, dir.as_deref(), src)
            })
            .collect();
        build(&files, &[])
    }

    #[test]
    fn nodes_keyed_by_crate_impl_fn() {
        let g = graph_of(&[(
            "crates/ft/src/a.rs",
            "struct P;\nimpl P {\n fn go(&self) { self.step(); }\n fn step(&self) {}\n}\nfn free() {}\n",
        )]);
        assert_eq!(g.nodes.len(), 3);
        let go = g.nodes.iter().find(|n| n.name == "go").unwrap();
        assert_eq!(go.owner, "P");
        assert_eq!(go.krate, "ft");
        let free = g.nodes.iter().find(|n| n.name == "free").unwrap();
        assert_eq!(free.owner, "");
        // self.step() resolved within the impl.
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].kind, EdgeKind::Static);
    }

    #[test]
    fn receiver_type_resolution_via_param_and_field() {
        let g = graph_of(&[
            (
                "crates/orb/src/object.rs",
                "pub struct ObjectRef;\nimpl ObjectRef {\n pub fn call(&self) { let deadline = 1; let _ = deadline; }\n}\n",
            ),
            (
                "crates/ft/src/client.rs",
                "pub struct C { obj: ObjectRef }\nimpl C {\n pub fn hit(&self) { self.obj.call(); }\n}\n",
            ),
        ]);
        let hit = g.nodes.iter().position(|n| n.name == "hit").unwrap();
        let call = g.nodes.iter().position(|n| n.name == "call").unwrap();
        assert!(g.edges.iter().any(|e| e.from == hit && e.to == call));
        assert!(g.nodes[call].has_deadline);
        assert_eq!(g.remote_sites.len(), 1);
        assert_eq!(g.remote_sites[0].targets, vec![call]);
    }

    #[test]
    fn trait_fanout_resolves_dispatch() {
        let g = graph_of(&[(
            "crates/orb/src/poa.rs",
            "struct A; struct B;\nimpl Servant for A {\n fn dispatch(&mut self) {}\n}\nimpl Servant for B {\n fn dispatch(&mut self) {}\n}\nfn route(s: &mut S) { s.dispatch(); }\n",
        )]);
        let route = g.nodes.iter().position(|n| n.name == "route").unwrap();
        let outs: Vec<_> = g.edges_from(route).collect();
        assert_eq!(outs.len(), 2, "{outs:?}");
    }

    #[test]
    fn ctx_call_is_not_a_remote_site() {
        let g = graph_of(&[(
            "crates/orb/src/core.rs",
            "fn f(ctx: &mut Ctx) { ctx.call(1); }\n",
        )]);
        assert!(g.remote_sites.is_empty());
    }
}

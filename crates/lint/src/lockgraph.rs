//! L1–L3 concurrency rules: a static lock-acquisition graph over
//! `simnet::Shared`.
//!
//! `Shared` is scheduler-serialized, but its inner `Mutex` is real: a sim
//! process that blocks (yields to the kernel) while holding a guard can
//! deadlock another process that tries to lock the same cell, and two
//! cells locked in opposite orders by different processes deadlock each
//! other the classic way. The kernel cannot detect this statically; this
//! pass can.
//!
//! | ID | invariant |
//! |----|-----------|
//! | L1 | lock classes must be acquired in one consistent global order (no cycles in the acquisition graph) |
//! | L2 | no re-entrant acquisition of a lock class while its guard is live (std `Mutex` self-deadlocks), directly or via a callee |
//! | L3 | no blocking call (`ctx.sleep`/`recv`/`compute`/remote invoke) while any guard is live — a blocked holder wedges every other process needing the cell |
//!
//! A *lock class* is `(crate, cell name)`: every `Shared` cell reached
//! through a field or binding of that name in that crate. Guard liveness:
//! a `let g = cell.lock()` guard lives to the end of its scope (or an
//! explicit `drop(g)`); a temporary `cell.lock().x` lives to the end of
//! the statement; `cell.with(|v| ...)` holds for the closure's extent;
//! `get`/`take`/`put`/`replace` acquire and release instantaneously.
//! `simnet` itself is exempt: the kernel implements the serialization
//! guarantee and its internals are the sanctioned lock site.

use crate::analysis::FileAnalysis;
use crate::ast::{FileAst, TokKind};
use crate::rules::{Finding, Severity, SIM_CRATES};
use std::collections::{BTreeMap, BTreeSet};

/// Result of the lock-graph pass.
#[derive(Debug, Default)]
pub struct LockReport {
    pub findings: Vec<Finding>,
    /// Number of `Shared` acquisition sites covered by the graph.
    pub sites: usize,
    /// Number of distinct lock classes discovered.
    pub classes: usize,
    /// Which crates acquire each `Shared` cell name — `ldft-explore`
    /// derives its cross-crate shared-state coupling (part of the DPOR
    /// independence relation) from cells acquired by more than one crate.
    pub class_crates: BTreeMap<String, BTreeSet<String>>,
}

/// A lock class: `(crate, cell name)`.
type Class = (String, String);

/// Methods that block the calling process (yield to the kernel) when
/// invoked on a receiver. `invoke_oneway`/`oneway` are fire-and-forget
/// sends and deliberately absent.
const BLOCKING_METHODS: &[&str] = &[
    "sleep",
    "recv",
    "recv_timeout",
    "compute",
    "invoke",
    "invoke_with_timeout",
    "call",
    "call_with_timeout",
    "locate",
    "ping",
    "send_deferred",
    "get_response",
];

/// Callee names too generic to resolve through the effects table.
const EFFECTS_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "len",
    "is_empty",
    "get",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "next",
    "write",
    "read",
    "with",
    "take",
    "put",
    "replace",
    "lock",
    "from",
    "into",
    "to_string",
    "as_ref",
    "as_mut",
    "contains",
    "clear",
    "extend",
    "send",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "ok",
    "err",
    "min",
    "max",
    "abs",
];

/// Shared acquisition methods and whether they need a declared class.
fn acquisition_kind(method: &str, n_args: usize) -> Option<AcqKind> {
    match (method, n_args) {
        ("lock", 0) => Some(AcqKind::Lock),
        ("with", 1) => Some(AcqKind::With),
        ("replace", 1) | ("put", 1) => Some(AcqKind::Instant),
        ("get", 0) | ("take", 0) => Some(AcqKind::Instant),
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcqKind {
    /// `.lock()` — produces a guard (let-bound or temporary).
    Lock,
    /// `.with(|v| ...)` — holds for the closure.
    With,
    /// `get`/`take`/`put`/`replace` — acquire and release inside the call.
    Instant,
}

/// One acquisition event inside a function.
#[derive(Debug, Clone)]
struct Event {
    class: Class,
    /// Token index of the method-name identifier.
    tok: usize,
    line: usize,
    /// Guard-liveness token range, `None` for instantaneous acquisitions.
    span: Option<(usize, usize)>,
}

/// Per-function summary used for interprocedural propagation.
#[derive(Debug, Default, Clone)]
struct Effect {
    acquires: BTreeSet<Class>,
    may_block: bool,
}

/// A function's locally-computed facts.
struct FnFacts<'a> {
    file: &'a FileAnalysis,
    krate: String,
    name: String,
    body: (usize, usize),
    events: Vec<Event>,
}

/// Names of `Shared`-typed cells declared in a file: struct fields, fn
/// params, `let x = Shared::new(..)` bindings, struct-literal fields
/// initialized with `Shared::new`, and `let a = <cell>.clone()` aliases.
fn declared_cells(fa: &FileAnalysis) -> BTreeSet<String> {
    let ast = &fa.ast;
    let mut out = BTreeSet::new();
    for st in &ast.structs {
        for f in &st.fields {
            if f.ty.contains("Shared") {
                out.insert(f.name.clone());
            }
        }
    }
    for f in &ast.fns {
        for p in &f.params {
            if p.ty.contains("Shared") {
                out.insert(p.name.clone());
            }
        }
    }
    // `Shared::new(` occurrences: walk back to a `let NAME` or a
    // struct-literal `name:` immediately preceding.
    let toks = &ast.toks;
    for i in 0..toks.len() {
        if !(toks[i].is("Shared")
            && toks.get(i + 1).map(|t| t.is("::")).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.text == "new").unwrap_or(false))
        {
            continue;
        }
        // Struct literal / typed binding: `name : [ty =] Shared::new`.
        let mut p = i;
        let mut steps = 0;
        while p > 0 && steps < 24 {
            p -= 1;
            steps += 1;
            let t = &toks[p];
            if t.is(";") || t.is("{") || t.is("}") || t.is(",") {
                break;
            }
            if t.is("let") {
                // `let [mut] NAME [: ty] = ...`
                let mut q = p + 1;
                if toks.get(q).map(|t| t.is("mut")).unwrap_or(false) {
                    q += 1;
                }
                if let Some(name) = toks.get(q) {
                    if name.kind == TokKind::Ident {
                        out.insert(name.text.clone());
                    }
                }
                break;
            }
        }
        // `field: Shared::new(...)` in a struct literal.
        if i >= 2 && toks[i - 1].is(":") && toks[i - 2].kind == TokKind::Ident {
            out.insert(toks[i - 2].text.clone());
        }
    }
    // Clone aliases: `let a = <cell>.clone()` where `<cell>` is declared.
    for _ in 0..2 {
        for c in &ast.calls {
            if c.method != "clone" || !c.is_method {
                continue;
            }
            let Some(tail) = &c.recv_tail else { continue };
            if !out.contains(tail) {
                continue;
            }
            // Walk back to the `let` of this statement.
            let mut p = c.name_tok;
            let mut steps = 0;
            while p > 0 && steps < 24 {
                p -= 1;
                steps += 1;
                let t = &toks[p];
                if t.is(";") || t.is("{") || t.is("}") {
                    break;
                }
                if t.is("let") {
                    let mut q = p + 1;
                    if toks.get(q).map(|t| t.is("mut")).unwrap_or(false) {
                        q += 1;
                    }
                    if let Some(name) = toks.get(q) {
                        if name.kind == TokKind::Ident && name.text != "_" {
                            out.insert(name.text.clone());
                        }
                    }
                    break;
                }
            }
        }
    }
    out
}

/// Compute the guard-liveness span for a `.lock()` call: let-bound guards
/// live to the end of the enclosing scope (or `drop(name)`), temporaries
/// to the end of the statement.
fn lock_span(ast: &FileAst, call: &crate::ast::Call, body: (usize, usize)) -> (usize, usize) {
    let toks = &ast.toks;
    let open = call.name_tok + 1;
    let close = ast.paren_close.get(&open).copied().unwrap_or(call.name_tok);
    let bound_to_let = toks.get(close + 1).map(|t| t.is(";")).unwrap_or(false);
    if bound_to_let {
        // Find `let [mut] NAME =` at the start of this statement.
        let mut p = call.name_tok;
        let mut steps = 0;
        let mut guard_name: Option<String> = None;
        while p > 0 && steps < 24 {
            p -= 1;
            steps += 1;
            let t = &toks[p];
            if t.is(";") || t.is("{") || t.is("}") {
                break;
            }
            if t.is("let") {
                let mut q = p + 1;
                if toks.get(q).map(|t| t.is("mut")).unwrap_or(false) {
                    q += 1;
                }
                if let Some(name) = toks.get(q) {
                    if name.kind == TokKind::Ident {
                        guard_name = Some(name.text.clone());
                    }
                }
                break;
            }
        }
        if let Some(gname) = guard_name {
            let scope_end = ast
                .enclosing_scope(call.name_tok)
                .map(|s| s.close)
                .unwrap_or(body.1)
                .min(body.1);
            // Explicit `drop(gname)` ends the guard early.
            for c in &ast.calls {
                if c.method == "drop"
                    && !c.is_method
                    && c.name_tok > close
                    && c.name_tok < scope_end
                    && c.args.len() == 1
                    && ast.text(c.args[0].toks) == gname
                {
                    return (close, c.name_tok);
                }
            }
            return (close, scope_end);
        }
    }
    // Temporary (`cell.lock().x += 1`, `*cell.lock() = v`, or an
    // unrecognized binding): guard lives to the end of the statement.
    let mut q = close;
    let stmt_end = loop {
        q += 1;
        match toks.get(q) {
            None => break q,
            Some(t) if t.is(";") => break q,
            Some(t) if t.is("{") || t.is("}") => break q,
            _ => {}
        }
    };
    (close, stmt_end.min(body.1))
}

/// Build the per-function facts for one file.
fn facts_of<'a>(fa: &'a FileAnalysis, cells: &BTreeSet<String>, krate: &str) -> Vec<FnFacts<'a>> {
    let ast = &fa.ast;
    let mut out = Vec::new();
    for f in &ast.fns {
        let Some(body) = f.body else { continue };
        if fa.is_test_line(f.line) {
            continue;
        }
        // Skip nested fns here; their own entry covers them. Events inside
        // a nested fn belong to the nested fn (innermost wins below).
        let mut events = Vec::new();
        for c in &ast.calls {
            if c.name_tok <= body.open || c.name_tok >= body.close {
                continue;
            }
            // Innermost-function ownership.
            let owner = ast.enclosing_fn(c.name_tok);
            if owner.map(|o| o.line != f.line).unwrap_or(false) {
                continue;
            }
            if !c.is_method {
                continue;
            }
            let Some(kind) = acquisition_kind(&c.method, c.args.len()) else {
                continue;
            };
            let Some(tail) = &c.recv_tail else { continue };
            // `.lock()` is unambiguous (D4 bans Mutex outside the kernel);
            // the generic names need a declared Shared cell to bind to.
            if kind != AcqKind::Lock && !cells.contains(tail) {
                continue;
            }
            let span = match kind {
                AcqKind::Lock => Some(lock_span(ast, c, (body.open, body.close))),
                AcqKind::With => {
                    let open = c.name_tok + 1;
                    let close = ast.paren_close.get(&open).copied().unwrap_or(open);
                    Some((open, close))
                }
                AcqKind::Instant => None,
            };
            events.push(Event {
                class: (krate.to_string(), tail.clone()),
                tok: c.name_tok,
                line: c.line,
                span,
            });
        }
        out.push(FnFacts {
            file: fa,
            krate: krate.to_string(),
            name: f.name.clone(),
            body: (body.open, body.close),
            events,
        });
    }
    out
}

fn finding(rule: &'static str, file: &str, line: usize, message: String) -> Finding {
    Finding {
        rule,
        severity: Severity::Error,
        file: file.to_string(),
        line,
        message,
        allowed: false,
        allow_reason: None,
    }
}

/// Run the lock-graph pass over the workspace.
pub fn check(files: &[FileAnalysis]) -> LockReport {
    let mut report = LockReport::default();

    // --- Per-file facts ----------------------------------------------------
    let mut all_facts: Vec<FnFacts<'_>> = Vec::new();
    for fa in files {
        let Some(dir) = fa.crate_dir.as_deref() else {
            continue;
        };
        if !SIM_CRATES.contains(&dir) || dir == "simnet" {
            continue;
        }
        let cells = declared_cells(fa);
        all_facts.extend(facts_of(fa, &cells, dir));
    }
    report.sites = all_facts.iter().map(|f| f.events.len()).sum();
    report.classes = all_facts
        .iter()
        .flat_map(|f| f.events.iter().map(|e| e.class.clone()))
        .collect::<BTreeSet<_>>()
        .len();
    for f in &all_facts {
        for ev in &f.events {
            report
                .class_crates
                .entry(ev.class.1.clone())
                .or_default()
                .insert(ev.class.0.clone());
        }
    }

    // --- Effects fixpoint (same-crate call resolution, 2 rounds) -----------
    let mut effects: BTreeMap<(String, String), Effect> = BTreeMap::new();
    for f in &all_facts {
        let e = effects
            .entry((f.krate.clone(), f.name.clone()))
            .or_default();
        for ev in &f.events {
            e.acquires.insert(ev.class.clone());
        }
        let ast = &f.file.ast;
        for c in &ast.calls {
            if c.name_tok > f.body.0
                && c.name_tok < f.body.1
                && c.is_method
                && BLOCKING_METHODS.contains(&c.method.as_str())
            {
                e.may_block = true;
            }
        }
    }
    for _ in 0..2 {
        let snapshot = effects.clone();
        for f in &all_facts {
            let ast = &f.file.ast;
            let mut add = Effect::default();
            for c in &ast.calls {
                if c.name_tok <= f.body.0 || c.name_tok >= f.body.1 {
                    continue;
                }
                if EFFECTS_STOPLIST.contains(&c.method.as_str()) {
                    continue;
                }
                // Name-based resolution is only sound for free calls and
                // `self.` methods: `guard.finalize()` on a locked value
                // must not alias an unrelated `Handle::finalize`.
                if c.is_method && c.recv_tail.as_deref() != Some("self") {
                    continue;
                }
                if let Some(callee) = snapshot.get(&(f.krate.clone(), c.method.clone())) {
                    add.acquires.extend(callee.acquires.iter().cloned());
                    add.may_block |= callee.may_block;
                }
            }
            let e = effects
                .entry((f.krate.clone(), f.name.clone()))
                .or_default();
            e.acquires.extend(add.acquires);
            e.may_block |= add.may_block;
        }
    }

    // --- Per-function L2/L3 + L1 edge collection ---------------------------
    // Edge: (held class → acquired class) with one evidence site.
    let mut edges: BTreeMap<(Class, Class), (String, usize)> = BTreeMap::new();
    let mut dedup: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    for f in &all_facts {
        let ast = &f.file.ast;
        let path = &f.file.path;
        for held in &f.events {
            let Some(span) = held.span else { continue };
            // Direct acquisitions inside the held span.
            for e2 in &f.events {
                if e2.tok <= span.0 || e2.tok >= span.1 || e2.tok == held.tok {
                    continue;
                }
                if e2.class == held.class {
                    if dedup.insert((path.clone(), e2.line, "L2")) {
                        report.findings.push(finding(
                            "L2",
                            path,
                            e2.line,
                            format!(
                                "re-entrant acquisition of `{}` while its guard (taken line {}) is live — std::sync::Mutex self-deadlocks",
                                held.class.1, held.line
                            ),
                        ));
                    }
                } else {
                    edges
                        .entry((held.class.clone(), e2.class.clone()))
                        .or_insert((path.clone(), e2.line));
                }
            }
            // Calls inside the held span: blocking set + callee effects.
            for c in &ast.calls {
                if c.name_tok <= span.0 || c.name_tok >= span.1 {
                    continue;
                }
                if c.is_method && BLOCKING_METHODS.contains(&c.method.as_str()) {
                    if dedup.insert((path.clone(), c.line, "L3")) {
                        report.findings.push(finding(
                            "L3",
                            path,
                            c.line,
                            format!(
                                "blocking call `.{}(..)` while holding the `{}` guard (taken line {}) — a blocked holder wedges every process needing the cell",
                                c.method, held.class.1, held.line
                            ),
                        ));
                    }
                    continue;
                }
                if EFFECTS_STOPLIST.contains(&c.method.as_str()) {
                    continue;
                }
                if c.is_method && c.recv_tail.as_deref() != Some("self") {
                    continue;
                }
                if let Some(callee) = effects.get(&(f.krate.clone(), c.method.clone())) {
                    if callee.may_block && dedup.insert((path.clone(), c.line, "L3")) {
                        report.findings.push(finding(
                            "L3",
                            path,
                            c.line,
                            format!(
                                "call to `{}` (which can block) while holding the `{}` guard (taken line {})",
                                c.method, held.class.1, held.line
                            ),
                        ));
                    }
                    if callee.acquires.contains(&held.class)
                        && dedup.insert((path.clone(), c.line, "L2"))
                    {
                        report.findings.push(finding(
                            "L2",
                            path,
                            c.line,
                            format!(
                                "call to `{}` re-acquires `{}` while its guard (taken line {}) is live",
                                c.method, held.class.1, held.line
                            ),
                        ));
                    }
                    for acq in &callee.acquires {
                        if *acq != held.class {
                            edges
                                .entry((held.class.clone(), acq.clone()))
                                .or_insert((path.clone(), c.line));
                        }
                    }
                }
            }
        }
    }

    // --- L1: cycles in the acquisition-order graph -------------------------
    let graph: BTreeMap<&Class, BTreeSet<&Class>> = {
        let mut g: BTreeMap<&Class, BTreeSet<&Class>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            g.entry(a).or_default().insert(b);
        }
        g
    };
    let reaches = |from: &Class, to: &Class| -> bool {
        let mut seen: BTreeSet<&Class> = BTreeSet::new();
        let mut stack: Vec<&Class> = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = graph.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((a, b), (file, line)) in &edges {
        if reaches(b, a) {
            report.findings.push(finding(
                "L1",
                file,
                *line,
                format!(
                    "lock-order inversion: `{}` acquired while holding `{}`, but the opposite order also occurs — pick one global order",
                    b.1, a.1
                ),
            ));
        }
    }

    report
        .findings
        .sort_by(|x, y| (x.file.clone(), x.line, x.rule).cmp(&(y.file.clone(), y.line, y.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::WorkspaceIndex;

    fn run(src: &str) -> LockReport {
        let _ = WorkspaceIndex::stub_only();
        let fa = FileAnalysis::new("crates/ft/src/x.rs", Some("ft"), src);
        check(std::slice::from_ref(&fa))
    }

    #[test]
    fn counts_sites_and_classes() {
        let r = run(
            "struct S { state: simnet::Shared<u32>, other: simnet::Shared<u32> }\n\
             impl S {\n fn f(&self) { let g = self.state.lock(); drop(g); self.other.with(|v| *v += 1); }\n}\n",
        );
        assert_eq!(r.sites, 2);
        assert_eq!(r.classes, 2);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn reentrant_lock_is_l2() {
        let r = run(
            "struct S { state: simnet::Shared<u32> }\n\
             impl S {\n fn f(&self) { let g = self.state.lock(); let x = self.state.get(); let _ = (g, x); }\n}\n",
        );
        assert!(
            r.findings.iter().any(|f| f.rule == "L2"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn blocking_while_held_is_l3() {
        let r = run(
            "struct S { state: simnet::Shared<u32> }\n\
             impl S {\n fn f(&self, ctx: &mut Ctx) { let g = self.state.lock(); ctx.sleep(1.0); drop(g); }\n}\n",
        );
        assert!(
            r.findings.iter().any(|f| f.rule == "L3"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn drop_releases_guard() {
        let r = run(
            "struct S { state: simnet::Shared<u32> }\n\
             impl S {\n fn f(&self, ctx: &mut Ctx) { let g = self.state.lock(); drop(g); ctx.sleep(1.0); }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn inverted_order_is_l1() {
        let r = run(
            "struct S { a: simnet::Shared<u32>, b: simnet::Shared<u32> }\n\
             impl S {\n fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); drop(h); drop(g); }\n\
             fn g2(&self) { let g = self.b.lock(); let h = self.a.lock(); drop(h); drop(g); }\n}\n",
        );
        assert!(
            r.findings.iter().any(|f| f.rule == "L1"),
            "{:?}",
            r.findings
        );
    }
}

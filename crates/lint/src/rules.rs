//! The rule set: determinism (D1–D4) and protocol (P1–P3) invariants.
//!
//! Scoping model: every rule applies to *library code* (non-test lines) of
//! the **sim-facing crates** — the crates whose code runs inside, or drives,
//! the deterministic simulation: `simnet`, `orb`, `naming`, `winner`, `ft`,
//! `optim`, `core`. Marshalling (`cdr`), the IDL compiler (`idl`), benches,
//! shims, and this analyzer itself are host-side tooling and out of scope.
//!
//! | ID | class | invariant |
//! |----|-------|-----------|
//! | D1 | determinism | no wall-clock time (`std::time::{Instant,SystemTime}`, `thread::sleep`) — sim time only |
//! | D2 | determinism | no `HashMap`/`HashSet` — hash iteration order is seed-dependent; use `BTreeMap`/`BTreeSet` |
//! | D3 | determinism | no ambient RNG (`thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`) — all randomness flows from the run seed |
//! | D4 | determinism | no OS concurrency (`std::sync::{Mutex,Condvar,RwLock}`, `thread::spawn`) outside the kernel — use `simnet::Shared` |
//! | P1 | protocol | no panicking calls (`unwrap`/`expect`/`panic!`/`unreachable!`) in library code — propagate `Exception`/`SimResult` |
//! | P2 | protocol | remote-invocation results must not be discarded (`let _ = ...invoke(...)`) — `COMM_FAILURE` is the only failure signal clients get |
//! | P3 | protocol | FT proxy methods that invoke must checkpoint after success — recovery replays from the last checkpoint |
//!
//! `simnet` is exempt from D4: the kernel *implements* the simulated-time
//! scheduler on OS threads, and that is the one place OS concurrency
//! belongs.

use crate::analysis::FileAnalysis;
use crate::lexer::find_word;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run.
    Error,
    /// Reported, does not fail the run.
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule ID (`D1`..`P3`, or `A1`/`A2` for allowlist hygiene).
    pub rule: &'static str,
    pub severity: Severity,
    /// Path as given to the analyzer.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    pub message: String,
    /// True when an allow directive suppressed this finding.
    pub allowed: bool,
    /// Reason given on the suppressing directive, if any.
    pub allow_reason: Option<String>,
}

impl Finding {
    /// `file:line: severity[RULE]: message` (+ allow note).
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: {}[{}]: {}",
            self.file, self.line, self.severity, self.rule, self.message
        );
        if self.allowed {
            let why = self.allow_reason.as_deref().unwrap_or("");
            s.push_str(&format!("  [allowed: {why}]"));
        }
        s
    }
}

/// Crates whose code runs in (or drives) the simulation.
pub const SIM_CRATES: &[&str] = &[
    "simnet", "orb", "obs", "naming", "winner", "ft", "optim", "core", "store", "monitor",
    "explore",
];

/// All rule IDs, in report order.
pub const RULE_IDS: &[&str] = &[
    "D1", "D2", "D3", "D4", "P1", "P2", "P3", "W1", "W2", "W3", "W4", "L1", "L2", "L3", "E1", "E2",
    "F1", "F2", "F3", "F4",
];

/// Human-readable one-liner per rule, for `--list-rules`.
pub fn rule_summary(id: &str) -> &'static str {
    match id {
        "D1" => "wall-clock time in sim code (std::time::Instant/SystemTime, thread::sleep)",
        "D2" => "hash-ordered collections in sim code (HashMap/HashSet; use BTreeMap/BTreeSet)",
        "D3" => "ambient/unseeded RNG in sim code (thread_rng, from_entropy, from_os_rng, OsRng)",
        "D4" => "OS concurrency outside the kernel (std::sync::Mutex/Condvar/RwLock, thread::spawn; use simnet::Shared)",
        "P1" => "panicking call in library code (unwrap/expect/panic!/unreachable!/todo!)",
        "P2" => "discarded remote-invocation result (let _ = ...invoke-like(...))",
        "P3" => "FT proxy method invokes without checkpoint-after-success",
        "W1" => "IDL operation with no client-side call site (stub drift)",
        "W2" => "IDL operation without a skeleton dispatch arm, or a dispatch arm for an op absent from the IDL",
        "W3" => "CDR request tuple disagrees with the IDL in-parameter list (server types / client arity)",
        "W4" => "CdrWrite/CdrRead pair marshals asymmetrically (tag or field-order mismatch)",
        "L1" => "lock-order inversion across simnet::Shared classes (acquisition-graph cycle)",
        "L2" => "re-entrant acquisition of a Shared cell while its guard is live",
        "L3" => "blocking call (sleep/recv/compute/invoke) while holding a Shared guard",
        "E1" => "caught COMM_FAILURE/TRANSIENT dropped on the floor (no retry, no propagation)",
        "E2" => "checkpoint epoch crossing a fn/struct boundary as bare u64 (use cdr::Epoch)",
        "F1" => "naked RPC: remote invocation site not dominated by a reply deadline on any call path",
        "F2" => "retry loop/cycle around a remote call without a provable bound or without backoff",
        "F3" => "recoverable failure caught but swallowed before reaching a recovery handler, the doctor, or the outcome (interprocedural E1)",
        "F4" => "paired-resource lifecycle unbalanced (subscribe/unsubscribe, bind/unbind, group membership)",
        "A1" => "allow directive missing a reason",
        "A2" => "allow directive names no finding (unused)",
        _ => "unknown rule",
    }
}

/// Orb stub API: methods that perform (or complete) a remote invocation and
/// whose `Result` carries the only `COMM_FAILURE` signal a client gets.
/// Tier 0 of the P2 call graph.
pub const STUB_API: &[&str] = &[
    "invoke",
    "invoke_oneway",
    "call",
    "oneway",
    "ping",
    "locate",
    "send_deferred",
    "get_response",
];

/// Identifiers too generic to propagate through the one-hop call graph —
/// flagging every `let _ = x.new()` because some constructor pings would
/// drown the rule in noise.
const CALL_GRAPH_STOPLIST: &[&str] = &["new", "default", "clone", "len", "get", "with"];

/// Workspace-level context shared by path-sensitive rules (P2's one-hop
/// call graph).
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Stub API names plus sim-crate functions that call them (one hop).
    pub invoking: std::collections::BTreeSet<String>,
}

impl WorkspaceIndex {
    /// Index with only the tier-0 stub API (used by fixture tests and
    /// single-file runs).
    pub fn stub_only() -> Self {
        WorkspaceIndex {
            invoking: STUB_API.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Extend the call graph by one hop: any sim-crate function whose body
    /// calls a tier-0 stub method becomes an invoking method itself.
    pub fn absorb(&mut self, fa: &FileAnalysis) {
        let Some(dir) = fa.crate_dir.as_deref() else {
            return;
        };
        // simnet is below the stub layer: its `Ctx::call` syscall plumbing
        // would otherwise alias the orb stub's `call` and drag transport
        // helpers (`send`, `recv`, ...) into the invoking set.
        if !SIM_CRATES.contains(&dir) || dir == "simnet" {
            return;
        }
        for span in &fa.fn_spans {
            if CALL_GRAPH_STOPLIST.contains(&span.name.as_str())
                || STUB_API.contains(&span.name.as_str())
            {
                continue;
            }
            let calls_stub = (span.start..=span.end).any(|n| {
                if fa.is_test_line(n) {
                    return false;
                }
                let code = &fa.norm[n - 1];
                STUB_API
                    .iter()
                    .any(|m| find_word(code, &format!(".{m}(")).is_some())
            });
            if calls_stub {
                self.invoking.insert(span.name.clone());
            }
        }
    }
}

/// Simple pattern rule: any listed pattern on a library line is a finding.
struct PatternRule {
    id: &'static str,
    patterns: &'static [&'static str],
    message: &'static str,
    /// Crate dirs exempt from this rule (beyond the non-sim crates).
    exempt: &'static [&'static str],
}

const PATTERN_RULES: &[PatternRule] = &[
    PatternRule {
        id: "D1",
        patterns: &[
            "std::time::Instant",
            "std::time::SystemTime",
            "Instant::now(",
            "SystemTime::now(",
            "thread::sleep(",
            "UNIX_EPOCH",
        ],
        message: "wall-clock time in sim code; use the kernel's simulated clock (SimTime/Ctx::sleep)",
        exempt: &[],
    },
    PatternRule {
        id: "D2",
        patterns: &["HashMap", "HashSet"],
        message: "hash-ordered collection in sim code; iteration order depends on the hasher seed — use BTreeMap/BTreeSet",
        exempt: &[],
    },
    PatternRule {
        id: "D3",
        patterns: &[
            "thread_rng",
            "from_entropy",
            "from_os_rng",
            "OsRng",
            "rand::random(",
            "getrandom",
        ],
        message: "ambient/unseeded RNG in sim code; derive all randomness from the run seed (SmallRng::seed_from_u64)",
        exempt: &[],
    },
    PatternRule {
        id: "D4",
        patterns: &[
            // Bare type names (ident-boundary matched) so grouped imports
            // like `use std::sync::{Arc, Mutex};` are caught too. `Arc`
            // itself is allowed: refcounting cannot affect scheduling.
            "Mutex",
            "Condvar",
            "RwLock",
            "Barrier",
            "mpsc",
            "thread::spawn(",
            "thread::Builder",
        ],
        message: "OS concurrency primitive outside the kernel; sim processes are scheduler-serialized — use simnet::Shared",
        exempt: &["simnet"],
    },
    PatternRule {
        id: "P1",
        patterns: &[
            ".unwrap(",
            ".expect(",
            "panic!(",
            "unreachable!(",
            "todo!(",
            "unimplemented!(",
            ".unwrap_unchecked(",
        ],
        message: "panicking call in library code; propagate Exception/SimResult — a panic here takes down the whole sim, not one process",
        exempt: &[],
    },
];

/// Run every *per-file* rule against one analyzed file, without applying
/// allow directives. `index` feeds P2's call graph. The workspace driver
/// merges these raw findings with the cross-file passes ([`crate::wire`],
/// [`crate::lockgraph`]) before calling [`finalize`].
pub fn check_file_raw(fa: &FileAnalysis, index: &WorkspaceIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(dir) = fa.crate_dir.as_deref() else {
        return findings;
    };
    if !SIM_CRATES.contains(&dir) {
        return findings;
    }

    for rule in PATTERN_RULES {
        if rule.exempt.contains(&dir) {
            continue;
        }
        for (idx, code) in fa.norm.iter().enumerate() {
            let line = idx + 1;
            if fa.is_test_line(line) {
                continue;
            }
            if rule.patterns.iter().any(|p| find_word(code, p).is_some()) {
                findings.push(Finding {
                    rule: rule.id,
                    severity: Severity::Error,
                    file: fa.path.clone(),
                    line,
                    message: rule.message.to_string(),
                    allowed: false,
                    allow_reason: None,
                });
            }
        }
    }

    check_p2(fa, index, &mut findings);
    check_p3(fa, &mut findings);
    check_e1(fa, &mut findings);
    check_e2(fa, &mut findings);
    findings
}

/// [`check_file_raw`] + allow application, for single-file callers.
pub fn check_file(fa: &FileAnalysis, index: &WorkspaceIndex) -> Vec<Finding> {
    let findings = check_file_raw(fa, index);
    finalize(fa, findings)
}

/// P2: a `let _ = ...` statement whose right-hand side calls an invoking
/// method throws away the only `COMM_FAILURE` signal the client will ever
/// see — the error must be handled, propagated, or the call FT-wrapped.
fn check_p2(fa: &FileAnalysis, index: &WorkspaceIndex, findings: &mut Vec<Finding>) {
    let dir = fa.crate_dir.as_deref().unwrap_or("");
    if dir == "orb" || dir == "simnet" {
        // The orb crate *implements* the stub layer and simnet sits below
        // it (transport): neither can observe a remote-invocation Result,
        // so their internal plumbing is exempt.
        return;
    }
    for (idx, code) in fa.norm.iter().enumerate() {
        let line = idx + 1;
        if fa.is_test_line(line) {
            continue;
        }
        let Some(at) = find_word(code, "let _=") else {
            continue;
        };
        // The statement may span lines (rustfmt splits long call chains):
        // accumulate until the terminating `;`.
        let mut rhs = code[at..].to_string();
        let mut k = idx;
        while !rhs.contains(';') && k + 1 < fa.norm.len() && k - idx < 10 {
            k += 1;
            rhs.push_str(&fa.norm[k]);
        }
        let discards_invoke = index
            .invoking
            .iter()
            .any(|m| find_word(&rhs, &format!(".{m}(")).is_some());
        if discards_invoke {
            findings.push(Finding {
                rule: "P2",
                severity: Severity::Error,
                file: fa.path.clone(),
                line,
                message: "remote-invocation result discarded; COMM_FAILURE is the only failure signal the client gets — handle it, propagate it, or route the call through the FT proxy".to_string(),
                allowed: false,
                allow_reason: None,
            });
        }
    }
}

/// P3: in the FT proxy implementation, any function that performs a remote
/// invocation must checkpoint after a successful reply — otherwise a later
/// failover replays from a stale state and the at-most-once contract breaks.
fn check_p3(fa: &FileAnalysis, findings: &mut Vec<Finding>) {
    if fa.crate_dir.as_deref() != Some("ft") {
        return;
    }
    let file = fa.path.replace('\\', "/");
    let name = file.rsplit('/').next().unwrap_or("");
    if !name.contains("proxy") {
        return;
    }
    for span in &fa.fn_spans {
        // Only outermost proxy methods: nested helpers inherit the outer
        // method's obligation.
        if fa
            .fn_spans
            .iter()
            .any(|o| o.start < span.start && span.end < o.end)
        {
            continue;
        }
        if fa.is_test_line(span.start) {
            continue;
        }
        let mut invokes_at = None;
        let mut checkpoints = false;
        for n in span.start..=span.end {
            let code = &fa.norm[n - 1];
            if invokes_at.is_none()
                && (find_word(code, ".invoke(").is_some() || find_word(code, ".call(").is_some())
            {
                invokes_at = Some(n);
            }
            if code.contains("after_success") || code.to_ascii_lowercase().contains("checkpoint") {
                checkpoints = true;
            }
        }
        if let Some(line) = invokes_at {
            if !checkpoints {
                findings.push(Finding {
                    rule: "P3",
                    severity: Severity::Error,
                    file: fa.path.clone(),
                    line,
                    message: format!(
                        "FT proxy method `{}` invokes without checkpointing after success; failover would replay from a stale checkpoint",
                        span.name
                    ),
                    allowed: false,
                    allow_reason: None,
                });
            }
        }
    }
}

/// Pattern idents that mark a match arm as catching a *recoverable* CORBA
/// failure (`COMM_FAILURE`/`TRANSIENT`).
const E1_MARKERS: &[&str] = &[
    "CommFailure",
    "COMM_FAILURE",
    "Transient",
    "TRANSIENT",
    "is_recoverable",
    "is_comm_failure",
];

/// E1: a match arm that catches a recoverable CORBA failure with an empty
/// body drops the only signal that drives retry/backoff — recoverable
/// failures must flow into a retry path or propagate to the caller.
fn check_e1(fa: &FileAnalysis, findings: &mut Vec<Finding>) {
    use crate::ast::TokKind;
    let ast = &fa.ast;
    for m in &ast.matches {
        for arm in &m.arms {
            if fa.is_test_line(arm.line) {
                continue;
            }
            let marked = ast.toks[arm.pat.0..arm.pat.1]
                .iter()
                .any(|t| t.kind == TokKind::Ident && E1_MARKERS.contains(&t.text.as_str()));
            if !marked {
                continue;
            }
            let trivial = !ast.toks[arm.body.0..arm.body.1]
                .iter()
                .any(|t| matches!(t.kind, TokKind::Ident | TokKind::Lit));
            if trivial {
                findings.push(Finding {
                    rule: "E1",
                    severity: Severity::Error,
                    file: fa.path.clone(),
                    line: arm.line,
                    message: "recoverable CORBA failure (COMM_FAILURE/TRANSIENT) caught and dropped; feed it into retry-with-backoff or propagate it — silent drops hide partitions".to_string(),
                    allowed: false,
                    allow_reason: None,
                });
            }
        }
    }
}

/// True when a type spelling is bare `u64` (possibly behind `&`/`&mut` or
/// `Option<..>`).
fn is_bare_u64(ty: &str) -> bool {
    let t: String = ty.replace("&", "").replace("mut ", "").replace(' ', "");
    t == "u64" || t == "Option<u64>" || t == "mutu64"
}

/// E2: checkpoint epochs must cross fn/struct boundaries as `cdr::Epoch`,
/// never bare `u64` — the newtype keeps epoch arithmetic explicit and lets
/// the CDR layer reject mixed-epoch reassembly at the type level.
fn check_e2(fa: &FileAnalysis, findings: &mut Vec<Finding>) {
    // `simnet` sits below the wire types and cannot depend on `cdr`.
    if fa.crate_dir.as_deref() == Some("simnet") {
        return;
    }
    let ast = &fa.ast;
    let mut push = |line: usize, what: String| {
        if fa.is_test_line(line) {
            return;
        }
        findings.push(Finding {
            rule: "E2",
            severity: Severity::Error,
            file: fa.path.clone(),
            line,
            message: format!(
                "{what} carries a checkpoint epoch as bare u64; use the `cdr::Epoch` newtype so epochs cannot be confused with other counters"
            ),
            allowed: false,
            allow_reason: None,
        });
    };
    for f in &ast.fns {
        for p in &f.params {
            if p.name.to_ascii_lowercase().contains("epoch") && is_bare_u64(&p.ty) {
                push(p.line, format!("fn `{}` parameter `{}`", f.name, p.name));
            }
        }
        if f.name.to_ascii_lowercase().contains("epoch") && is_bare_u64(&f.ret) {
            push(f.line, format!("fn `{}` return type", f.name));
        }
    }
    for st in &ast.structs {
        for fld in &st.fields {
            if fld.name.to_ascii_lowercase().contains("epoch") && is_bare_u64(&fld.ty) {
                push(
                    fld.line,
                    format!("struct `{}` field `{}`", st.name, fld.name),
                );
            }
        }
    }
    for en in &ast.enums {
        for v in &en.variants {
            for fld in &v.fields {
                if fld.name.to_ascii_lowercase().contains("epoch") && is_bare_u64(&fld.ty) {
                    push(
                        fld.line,
                        format!(
                            "enum variant `{}::{}` field `{}`",
                            en.name, v.name, fld.name
                        ),
                    );
                }
            }
        }
    }
}

/// Mark findings suppressed by a matching allow directive. Returns the
/// per-directive "used" bitmap so [`finalize`] can report unused ones.
pub fn apply_allows(fa: &FileAnalysis, findings: &mut [Finding]) -> Vec<bool> {
    let mut used: Vec<bool> = vec![false; fa.allows.len()];
    for f in findings.iter_mut() {
        for a in fa.allows_for_line(f.line) {
            if a.rule == f.rule {
                f.allowed = true;
                f.allow_reason = if a.reason.is_empty() {
                    None
                } else {
                    Some(a.reason.clone())
                };
                if let Some(pos) = fa
                    .allows
                    .iter()
                    .position(|x| x.line == a.line && x.rule == a.rule)
                {
                    used[pos] = true;
                }
            }
        }
    }
    used
}

/// Apply allow directives to raw findings and append allowlist-hygiene
/// diagnostics (A1: missing reason — error; A2: unused directive —
/// warning).
pub fn finalize(fa: &FileAnalysis, mut findings: Vec<Finding>) -> Vec<Finding> {
    let used = apply_allows(fa, &mut findings);
    for (a, was_used) in fa.allows.iter().zip(used.iter()) {
        if !RULE_IDS.contains(&a.rule.as_str()) {
            findings.push(Finding {
                rule: "A1",
                severity: Severity::Error,
                file: fa.path.clone(),
                line: a.line,
                message: format!("allow directive names unknown rule `{}`", a.rule),
                allowed: false,
                allow_reason: None,
            });
            continue;
        }
        if a.reason.is_empty() {
            findings.push(Finding {
                rule: "A1",
                severity: Severity::Error,
                file: fa.path.clone(),
                line: a.line,
                message: format!(
                    "allow({}) directive has no reason; every suppression must be justified in writing",
                    a.rule
                ),
                allowed: false,
                allow_reason: None,
            });
        }
        if !*was_used {
            findings.push(Finding {
                rule: "A2",
                severity: Severity::Warning,
                file: fa.path.clone(),
                line: a.line,
                message: format!("allow({}) directive suppresses nothing; remove it", a.rule),
                allowed: false,
                allow_reason: None,
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

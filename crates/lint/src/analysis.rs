//! Per-file structural analysis: test-code regions, function spans, and
//! allowlist directives. Built once per file, consumed by every rule.

use crate::lexer::{self, SourceLine};

/// Span of a function item: `start..=end` line numbers (1-indexed).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (identifier after `fn`).
    pub name: String,
    /// Line holding the `fn` keyword.
    pub start: usize,
    /// Line holding the closing brace.
    pub end: usize,
}

/// One `// ldft-lint: allow(RULE, reason)` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule ID the directive suppresses.
    pub rule: String,
    /// The written justification (may be empty — that itself is an error).
    pub reason: String,
    /// Line the directive appears on (1-indexed).
    pub line: usize,
    /// True when the directive's line has no code (applies to next line).
    pub standalone: bool,
}

/// Preprocessed file ready for rule evaluation.
pub struct FileAnalysis {
    /// Path as reported in diagnostics.
    pub path: String,
    /// Workspace crate directory name (`simnet`, `orb`, ...), if any.
    pub crate_dir: Option<String>,
    /// Preprocessed lines (index 0 = line 1).
    pub lines: Vec<SourceLine>,
    /// Whitespace-normalized code per line, for pattern matching.
    pub norm: Vec<String>,
    /// True when the line is inside test code (`#[cfg(test)]` region, or
    /// the whole file is a test/bench/example file).
    pub test_line: Vec<bool>,
    /// All function spans (outer and nested; overlapping allowed).
    pub fn_spans: Vec<FnSpan>,
    /// All allow directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// Token-level AST (v2 rules: wire conformance, lock graph, E-rules).
    pub ast: crate::ast::FileAst,
}

impl FileAnalysis {
    /// Analyze `source`. `crate_dir` is the directory under `crates/` the
    /// file belongs to (drives rule scoping); `None` means out of scope
    /// for every crate-scoped rule.
    pub fn new(path: &str, crate_dir: Option<&str>, source: &str) -> Self {
        let lines = lexer::preprocess(source);
        let norm: Vec<String> = lines.iter().map(|l| lexer::normalize(&l.code)).collect();
        let whole_file_test = is_test_path(path);
        let (mut test_line, fn_spans) = scan_structure(&norm);
        if whole_file_test {
            for t in test_line.iter_mut() {
                *t = true;
            }
        }
        let allows = collect_allows(&lines);
        let ast = crate::ast::FileAst::parse(&lines);
        FileAnalysis {
            path: path.to_string(),
            crate_dir: crate_dir.map(str::to_string),
            lines,
            norm,
            test_line,
            fn_spans,
            allows,
            ast,
        }
    }

    /// True when line `n` (1-indexed) is test code.
    pub fn is_test_line(&self, n: usize) -> bool {
        self.test_line.get(n - 1).copied().unwrap_or(false)
    }

    /// Innermost function span containing line `n`, if any.
    pub fn enclosing_fn(&self, n: usize) -> Option<&FnSpan> {
        self.fn_spans
            .iter()
            .filter(|s| s.start <= n && n <= s.end)
            .min_by_key(|s| s.end - s.start)
    }

    /// Allow directives that govern a finding on line `n`: directives on
    /// the same line, or standalone directives on the immediately
    /// preceding run of comment-only lines.
    pub fn allows_for_line(&self, n: usize) -> Vec<&AllowDirective> {
        let mut out: Vec<&AllowDirective> = self
            .allows
            .iter()
            .filter(|a| a.line == n && !a.standalone)
            .collect();
        // Walk upward through comment-only lines.
        let mut k = n;
        while k > 1 {
            k -= 1;
            let line = &self.lines[k - 1];
            if !line.comment_only {
                break;
            }
            out.extend(self.allows.iter().filter(|a| a.line == k && a.standalone));
            if line.comment.is_empty() && line.code.trim().is_empty() {
                // Blank line ends the attached comment run.
                break;
            }
        }
        out
    }
}

/// Whole-file test classification by path convention.
pub fn is_test_path(path: &str) -> bool {
    let unified = path.replace('\\', "/");
    let file = unified.rsplit('/').next().unwrap_or(&unified);
    let in_dir =
        |d: &str| unified.contains(&format!("/{d}/")) || unified.starts_with(&format!("{d}/"));
    file.ends_with("_tests.rs")
        || file.ends_with("_test.rs")
        || in_dir("tests")
        || in_dir("benches")
        || in_dir("examples")
}

/// Single pass over normalized code lines computing `#[cfg(test)]` regions
/// and function spans via brace-depth tracking.
fn scan_structure(norm: &[String]) -> (Vec<bool>, Vec<FnSpan>) {
    let mut test_line = vec![false; norm.len()];
    let mut fn_spans: Vec<FnSpan> = Vec::new();

    let mut depth: u32 = 0;
    // Open `#[cfg(test)]` regions: the depth *of* the braced block.
    let mut test_stack: Vec<u32> = Vec::new();
    // A `#[cfg(test)]` attribute seen, item not yet opened.
    let mut pending_test_attr = false;
    // Functions whose `fn` was seen but `{` not yet reached.
    let mut pending_fns: Vec<(String, usize)> = Vec::new();
    // Open function bodies: (name, start line, block depth).
    let mut open_fns: Vec<(String, usize, u32)> = Vec::new();

    for (idx, code) in norm.iter().enumerate() {
        let line_no = idx + 1;
        if !test_stack.is_empty() || pending_test_attr {
            test_line[idx] = true;
        }
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_test_attr = true;
            test_line[idx] = true;
        }
        if let Some(name) = fn_name_on_line(code) {
            pending_fns.push((name, line_no));
        }

        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_test_attr {
                        pending_test_attr = false;
                        test_stack.push(depth);
                        test_line[idx] = true;
                    }
                    if let Some((name, start)) = pending_fns.pop() {
                        open_fns.push((name, start, depth));
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    while let Some((name, start, d)) = open_fns.last().cloned() {
                        if d == depth {
                            fn_spans.push(FnSpan {
                                name,
                                start,
                                end: line_no,
                            });
                            open_fns.pop();
                        } else {
                            break;
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // A `;` can never appear between a fn signature (or a
                    // pending `#[cfg(test)]` attribute) and its opening
                    // brace, so any pending item ending here is bodiless:
                    // `mod name;` after the attr, or a trait method decl.
                    pending_fns.clear();
                    pending_test_attr = false;
                }
                _ => {}
            }
        }
        if !test_stack.is_empty() {
            test_line[idx] = true;
        }
    }

    // Unclosed functions (truncated file): close at EOF.
    for (name, start, _) in open_fns {
        fn_spans.push(FnSpan {
            name,
            start,
            end: norm.len(),
        });
    }
    (test_line, fn_spans)
}

/// Extract the function name if this line declares one (`fn name`).
/// Returns `None` for fn-pointer types (`fn(...)`) and `fn` in strings
/// (already blanked by the lexer).
fn fn_name_on_line(code: &str) -> Option<String> {
    let at = lexer::find_word(code, "fn")?;
    let rest = &code[at + 2..];
    let rest = rest.trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Byte offset of the `)` balancing the already-consumed `allow(`, or
/// `None` if the parens never balance on this line.
fn balanced_close(body: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                if depth == 0 {
                    return Some(i);
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    None
}

/// Parse every `ldft-lint: allow(RULE, reason)` directive in the file's
/// comments.
fn collect_allows(lines: &[SourceLine]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut rest: &str = &line.comment;
        while let Some(pos) = rest.find("ldft-lint:") {
            rest = &rest[pos + "ldft-lint:".len()..];
            let Some(open) = rest.find("allow(") else {
                break;
            };
            let body = &rest[open + "allow(".len()..];
            // Match the balancing close paren so a reason may itself
            // reference calls like `send()` without being truncated.
            let Some(close) = balanced_close(body) else {
                break;
            };
            let inner = &body[..close];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                None => (inner.trim().to_string(), String::new()),
            };
            out.push(AllowDirective {
                rule,
                reason,
                line: idx + 1,
                standalone: line.comment_only,
            });
            rest = &body[close..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let fa = FileAnalysis::new("crates/x/src/a.rs", Some("x"), src);
        assert!(!fa.is_test_line(1));
        assert!(fa.is_test_line(2));
        assert!(fa.is_test_line(4));
        assert!(!fa.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_external_mod_decl_does_not_leak() {
        let src = "#[cfg(test)]\nmod kernel_tests;\nfn lib() { x.unwrap(); }\n";
        let fa = FileAnalysis::new("crates/x/src/a.rs", Some("x"), src);
        assert!(!fa.is_test_line(3));
    }

    #[test]
    fn test_file_paths() {
        assert!(is_test_path("crates/orb/src/orb_tests.rs"));
        assert!(is_test_path("tests/full_stack.rs"));
        assert!(is_test_path("crates/bench/benches/a.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/orb/src/core.rs"));
    }

    #[test]
    fn fn_spans_nest() {
        let src = "fn outer() {\n    fn inner() {\n        body();\n    }\n    more();\n}\n";
        let fa = FileAnalysis::new("crates/x/src/a.rs", Some("x"), src);
        let inner = fa.enclosing_fn(3).unwrap();
        assert_eq!(inner.name, "inner");
        let outer = fa.enclosing_fn(5).unwrap();
        assert_eq!(outer.name, "outer");
    }

    #[test]
    fn allow_same_line_and_standalone() {
        let src = "a.unwrap(); // ldft-lint: allow(P1, startup invariant)\n// ldft-lint: allow(D2, scratch map)\nlet m = HashMap::new();\n";
        let fa = FileAnalysis::new("crates/x/src/a.rs", Some("x"), src);
        let l1 = fa.allows_for_line(1);
        assert_eq!(l1.len(), 1);
        assert_eq!(l1[0].rule, "P1");
        assert_eq!(l1[0].reason, "startup invariant");
        let l3 = fa.allows_for_line(3);
        assert_eq!(l3.len(), 1);
        assert_eq!(l3[0].rule, "D2");
    }

    #[test]
    fn allow_reason_may_contain_call_parens() {
        let src = "a.unwrap(); // ldft-lint: allow(P1, args after send() are caller misuse)\n";
        let fa = FileAnalysis::new("crates/x/src/a.rs", Some("x"), src);
        let l1 = fa.allows_for_line(1);
        assert_eq!(l1.len(), 1);
        assert_eq!(l1[0].reason, "args after send() are caller misuse");
    }

    #[test]
    fn trait_method_decl_is_not_a_span() {
        let src =
            "trait T {\n    fn decl(&self);\n    fn with_body(&self) {\n        x();\n    }\n}\n";
        let fa = FileAnalysis::new("crates/x/src/a.rs", Some("x"), src);
        assert_eq!(fa.enclosing_fn(4).unwrap().name, "with_body");
        assert!(fa.fn_spans.iter().all(|s| s.name != "decl"));
    }
}

//! A lightweight hand-rolled Rust AST for the v2 rules.
//!
//! Built on top of the lexical pass ([`crate::lexer`]): comments are gone
//! and string-literal contents are blanked in `code` but preserved in
//! `SourceLine::literals`, so this module can tokenize line-by-line and
//! re-attach literal values as `Lit` tokens. On top of the token stream it
//! recognizes the handful of constructs the wire-conformance (W) and
//! lock-graph (L) rules need:
//!
//! - function items with parsed parameter lists and return types,
//! - `impl` blocks (`impl Trait for Type`),
//! - `match` expressions with per-arm pattern and body spans,
//! - call expressions with receiver chains and split argument lists,
//! - `pub const NAME: &str = "value"` string constants,
//! - struct definitions (including `cdr_struct!` bodies), tuple-struct
//!   newtypes, and enum definitions with per-variant fields,
//! - the brace-scope tree (for guard-liveness in the lock graph).
//!
//! This is *not* a general Rust parser: generics are skipped heuristically
//! and expression structure inside bodies is only recovered where a rule
//! needs it. That is enough because the workspace is rustfmt-formatted and
//! the constructs the rules inspect are all first-order.

use crate::lexer::SourceLine;
use std::collections::BTreeMap;

/// Token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier, keyword, or numeric literal.
    Ident,
    /// Punctuation; multi-char operators `::`, `->`, `=>` are one token.
    Punct,
    /// String literal; `text` is the literal *value* (no quotes).
    Lit,
}

/// One token with its source line (1-indexed).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// True when this token is the exact ident/punct `s` (never a literal).
    pub fn is(&self, s: &str) -> bool {
        self.kind != TokKind::Lit && self.text == s
    }
}

/// A brace-delimited block: token indices of `{` and `}`.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub open: usize,
    pub close: usize,
}

/// One parsed parameter or struct field: `name: ty`.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// Joined type text (normalized spacing), empty for `self` receivers.
    pub ty: String,
    /// Source line of the declaration (1-indexed).
    pub line: usize,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub params: Vec<Param>,
    /// Return type text; empty when the fn returns `()` implicitly.
    pub ret: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Body block (token indices of the braces); `None` for trait decls.
    pub body: Option<Scope>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// `impl Trait for Type` — the trait path's last segment, if any.
    pub trait_name: Option<String>,
    /// The implementing type path's last segment.
    pub type_name: String,
    pub line: usize,
    pub body: Scope,
}

/// One match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Pattern + guard text (joined tokens, literal values quoted).
    pub pattern: String,
    /// Token range of the pattern (inclusive start, exclusive end).
    pub pat: (usize, usize),
    /// Token range of the body (inclusive start, exclusive end).
    pub body: (usize, usize),
    pub line: usize,
}

/// A match expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Scrutinee text between `match` and `{`.
    pub scrutinee: String,
    pub line: usize,
    pub body: Scope,
    pub arms: Vec<Arm>,
}

/// One argument of a call: its token range (inclusive, exclusive).
#[derive(Debug, Clone, Copy)]
pub struct Arg {
    pub toks: (usize, usize),
}

/// A call expression `recv.method(args)` or `method(args)`.
#[derive(Debug, Clone)]
pub struct Call {
    /// Last identifier of the receiver chain (`self.state.lock()` → `state`);
    /// `None` for free calls or computed receivers (`f().g()`).
    pub recv_tail: Option<String>,
    pub method: String,
    pub line: usize,
    /// True for `recv.method(...)`, false for `method(...)`.
    pub is_method: bool,
    pub args: Vec<Arg>,
    /// Token index of the method-name identifier.
    pub name_tok: usize,
}

/// A struct definition (plain `struct` or a `cdr_struct!` body).
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<Param>,
    pub line: usize,
    /// Declared through the `cdr_struct!` wire-struct macro.
    pub is_cdr: bool,
}

/// One enum variant with its named fields (tuple fields get empty names).
#[derive(Debug, Clone)]
pub struct Variant {
    pub name: String,
    pub fields: Vec<Param>,
    pub line: usize,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub variants: Vec<Variant>,
    pub line: usize,
}

/// The parsed file.
#[derive(Debug, Default)]
pub struct FileAst {
    pub toks: Vec<Tok>,
    pub scopes: Vec<Scope>,
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplBlock>,
    pub matches: Vec<MatchExpr>,
    pub calls: Vec<Call>,
    /// `const NAME: &str = "value"` — (name, value, line).
    pub str_consts: Vec<(String, String, usize)>,
    pub structs: Vec<StructDef>,
    pub enums: Vec<EnumDef>,
    /// Tuple-struct newtypes: name → inner type text (`Epoch` → `u64`).
    pub newtypes: Vec<(String, String)>,
    /// Matching-close map for parens, kept for later passes (arg splits).
    pub paren_close: BTreeMap<usize, usize>,
}

const KEYWORDS_BEFORE_PAREN: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "in", "loop", "move", "else", "impl", "where",
    "as", "use", "pub", "let", "mut", "ref", "box", "await", "dyn",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize the preprocessed lines, substituting captured literal values.
pub fn tokenize(lines: &[SourceLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, sl) in lines.iter().enumerate() {
        let line = idx + 1;
        let chars: Vec<char> = sl.code.chars().collect();
        let mut lit_iter = sl.literals.iter();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_ident_start(c) {
                let mut j = i;
                while j < chars.len() && is_ident_start(chars[j]) {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                // `r` / `r#` prefix of a raw string: fold into the literal.
                if (text == "r" || text == "b" || text == "br")
                    && chars.get(j).map(|&c| c == '"' || c == '#').unwrap_or(false)
                {
                    i = j;
                    continue;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                i = j;
                continue;
            }
            if c == '"' {
                // Skip to the closing quote (contents are blanks); the
                // value comes from the captured literal list. A raw
                // string's `#` suffix chars are skipped as punctuation.
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                let value = lit_iter.next().cloned().unwrap_or_default();
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: value,
                    line,
                });
                i = (j + 1).min(chars.len());
                while i < chars.len() && chars[i] == '#' {
                    i += 1;
                }
                continue;
            }
            if c == '#' && chars.get(i + 1) == Some(&'"') {
                // Interior hash of an unterminated raw-string prefix.
                i += 1;
                continue;
            }
            if c == '\'' {
                // Char literal ('x') or lifetime ('a). Either way, skip.
                if chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                } else {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_start(chars[j]) {
                        j += 1;
                    }
                    i = j;
                }
                continue;
            }
            // Multi-char operators the parser cares about.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if two == "::" || two == "->" || two == "=>" {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: two,
                    line,
                });
                i += 2;
                continue;
            }
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    toks
}

impl FileAst {
    /// Parse the file. Never fails: unrecognized constructs are skipped.
    pub fn parse(lines: &[SourceLine]) -> FileAst {
        let toks = tokenize(lines);
        let mut ast = FileAst {
            scopes: match_braces(&toks),
            ..FileAst::default()
        };
        let brace_close = close_map(&ast.scopes);
        let paren_close = match_pairs(&toks, "(", ")");
        let bracket_close = match_pairs(&toks, "[", "]");
        ast.paren_close = paren_close.clone();

        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                // Method / free call recognition happens on the name token.
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "fn" => {
                    if let Some((item, next)) = parse_fn(&toks, i, &paren_close, &brace_close) {
                        ast.fns.push(item);
                        i = next;
                        continue;
                    }
                }
                "impl" => {
                    if let Some((block, next)) = parse_impl(&toks, i, &brace_close) {
                        ast.impls.push(block);
                        i = next;
                        continue;
                    }
                }
                "match" => {
                    if let Some(m) =
                        parse_match(&toks, i, &brace_close, &paren_close, &bracket_close)
                    {
                        ast.matches.push(m);
                        // Do not skip the body: nested matches and the
                        // calls inside arms must still be collected.
                    }
                }
                "const" => {
                    if let Some(c) = parse_str_const(&toks, i) {
                        ast.str_consts.push(c);
                    }
                }
                "struct" => {
                    parse_struct(&toks, i, &paren_close, &brace_close, &mut ast);
                }
                "cdr_struct" => {
                    parse_cdr_struct(&toks, i, &brace_close, &mut ast);
                }
                "enum" => {
                    if let Some(e) = parse_enum(&toks, i, &paren_close, &brace_close) {
                        ast.enums.push(e);
                    }
                }
                _ => {
                    if let Some(call) = parse_call(&toks, i, &paren_close) {
                        ast.calls.push(call);
                    }
                }
            }
            i += 1;
        }
        ast.toks = toks;
        ast
    }

    /// Joined text of a token range (exclusive end), literal values quoted.
    pub fn text(&self, range: (usize, usize)) -> String {
        join_tokens(&self.toks[range.0..range.1.min(self.toks.len())])
    }

    /// Innermost scope containing token index `ti`, if any.
    pub fn enclosing_scope(&self, ti: usize) -> Option<Scope> {
        self.scopes
            .iter()
            .filter(|s| s.open < ti && ti < s.close)
            .min_by_key(|s| s.close - s.open)
            .copied()
    }

    /// The function item whose body contains token index `ti` (innermost).
    pub fn enclosing_fn(&self, ti: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.map(|b| b.open < ti && ti < b.close).unwrap_or(false))
            .min_by_key(|f| {
                let b = f.body.unwrap();
                b.close - b.open
            })
    }

    /// True when token `ti` falls inside any match-arm pattern.
    pub fn in_match_pattern(&self, ti: usize) -> bool {
        self.matches
            .iter()
            .flat_map(|m| &m.arms)
            .any(|a| a.pat.0 <= ti && ti < a.pat.1)
    }
}

/// Join tokens with normalized spacing (space only between two idents).
pub fn join_tokens(toks: &[Tok]) -> String {
    let mut out = String::new();
    let mut prev_ident = false;
    for t in toks {
        let text = match t.kind {
            TokKind::Lit => format!("\"{}\"", t.text),
            _ => t.text.clone(),
        };
        let cur_ident =
            t.kind == TokKind::Ident && text.chars().next().map(is_ident_start).unwrap_or(false);
        if prev_ident && cur_ident {
            out.push(' ');
        }
        out.push_str(&text);
        prev_ident = cur_ident && t.kind == TokKind::Ident;
    }
    out
}

/// All brace scopes by token index.
fn match_braces(toks: &[Tok]) -> Vec<Scope> {
    let mut stack = Vec::new();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is("{") {
            stack.push(i);
        } else if t.is("}") {
            if let Some(open) = stack.pop() {
                out.push(Scope { open, close: i });
            }
        }
    }
    out.sort_by_key(|s| s.open);
    out
}

fn close_map(scopes: &[Scope]) -> std::collections::BTreeMap<usize, usize> {
    scopes.iter().map(|s| (s.open, s.close)).collect()
}

/// Matching-close map for one bracket pair.
fn match_pairs(toks: &[Tok], open: &str, close: &str) -> std::collections::BTreeMap<usize, usize> {
    let mut stack = Vec::new();
    let mut out = std::collections::BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is(open) {
            stack.push(i);
        } else if t.is(close) {
            if let Some(o) = stack.pop() {
                out.insert(o, i);
            }
        }
    }
    out
}

/// Skip a generics list starting at `<`; returns the index after `>`, or
/// `i` unchanged when this is not a well-formed generics list.
fn skip_generics(toks: &[Tok], i: usize) -> usize {
    if !toks.get(i).map(|t| t.is("<")).unwrap_or(false) {
        return i;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() && j < i + 120 {
        let t = &toks[j];
        if t.is("<") {
            depth += 1;
        } else if t.is(">") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is(";") || t.is("{") {
            return i;
        }
        j += 1;
    }
    i
}

/// Split a token range on top-level commas (tracking (), [], {}, <>).
pub fn split_commas(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut seg = start;
    for i in start..end {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                // Angle brackets only nest in type position: after an
                // ident or `::`. A bare `<` is a comparison.
                "<" if i > start
                    && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].is("::")) =>
                {
                    angle += 1;
                }
                ">" if angle > 0 => {
                    angle -= 1;
                }
                "," if depth == 0 && angle == 0 => {
                    if i > seg {
                        out.push((seg, i));
                    }
                    seg = i + 1;
                }
                _ => {}
            }
        }
    }
    if end > seg {
        out.push((seg, end));
    }
    out
}

/// Parse one `name: ty` segment into a [`Param`].
fn parse_param(toks: &[Tok], start: usize, end: usize) -> Option<Param> {
    // `self`, `&self`, `&mut self` receivers.
    if toks[start..end].iter().any(|t| t.is("self")) && !toks[start..end].iter().any(|t| t.is(":"))
    {
        return Some(Param {
            name: "self".to_string(),
            ty: String::new(),
            line: toks[start].line,
        });
    }
    let colon = (start..end).find(|&i| toks[i].is(":"))?;
    let name_tok = toks[start..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")?;
    Some(Param {
        name: name_tok.text.clone(),
        ty: join_tokens(&toks[colon + 1..end]),
        line: name_tok.line,
    })
}

fn parse_fn(
    toks: &[Tok],
    i: usize,
    paren_close: &std::collections::BTreeMap<usize, usize>,
    brace_close: &std::collections::BTreeMap<usize, usize>,
) -> Option<(FnItem, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = skip_generics(toks, i + 2);
    if !toks.get(j)?.is("(") {
        return None;
    }
    let close = *paren_close.get(&j)?;
    let params = split_commas(toks, j + 1, close)
        .into_iter()
        .filter_map(|(s, e)| parse_param(toks, s, e))
        .collect();
    j = close + 1;
    let mut ret = String::new();
    if toks.get(j).map(|t| t.is("->")).unwrap_or(false) {
        let ret_start = j + 1;
        while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") && !toks[j].is("where") {
            j += 1;
        }
        ret = join_tokens(&toks[ret_start..j]);
    }
    while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
        j += 1;
    }
    let body = if toks.get(j).map(|t| t.is("{")).unwrap_or(false) {
        brace_close.get(&j).map(|&c| Scope { open: j, close: c })
    } else {
        None
    };
    Some((
        FnItem {
            name: name_tok.text.clone(),
            params,
            ret,
            line: toks[i].line,
            body,
        },
        // Resume right after the signature: the body still gets scanned
        // for nested items and calls by the main loop.
        j,
    ))
}

fn parse_impl(
    toks: &[Tok],
    i: usize,
    brace_close: &std::collections::BTreeMap<usize, usize>,
) -> Option<(ImplBlock, usize)> {
    let mut j = skip_generics(toks, i + 1);
    let mut first_path: Vec<String> = Vec::new();
    let mut second_path: Vec<String> = Vec::new();
    let mut saw_for = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is("{") || t.is("where") {
            break;
        }
        if t.is("for") {
            saw_for = true;
        } else if t.kind == TokKind::Ident {
            if saw_for {
                second_path.push(t.text.clone());
            } else {
                first_path.push(t.text.clone());
            }
            j = skip_generics(toks, j + 1);
            continue;
        }
        j += 1;
    }
    while j < toks.len() && !toks[j].is("{") {
        j += 1;
    }
    let close = *brace_close.get(&j)?;
    let (trait_name, type_name) = if saw_for {
        (first_path.last().cloned(), second_path.last().cloned()?)
    } else {
        (None, first_path.last().cloned()?)
    };
    Some((
        ImplBlock {
            trait_name,
            type_name,
            line: toks[i].line,
            body: Scope { open: j, close },
        },
        j,
    ))
}

fn parse_match(
    toks: &[Tok],
    i: usize,
    brace_close: &std::collections::BTreeMap<usize, usize>,
    paren_close: &std::collections::BTreeMap<usize, usize>,
    bracket_close: &std::collections::BTreeMap<usize, usize>,
) -> Option<MatchExpr> {
    // Scrutinee: tokens until the first `{` not nested in (), [].
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is("(") {
            j = *paren_close.get(&j)? + 1;
            continue;
        }
        if t.is("[") {
            j = *bracket_close.get(&j)? + 1;
            continue;
        }
        if t.is("{") {
            break;
        }
        if t.is(";") {
            return None;
        }
        j += 1;
    }
    if j <= i + 1 || j >= toks.len() {
        return None;
    }
    let body_open = j;
    let body_close = *brace_close.get(&body_open)?;
    let scrutinee = join_tokens(&toks[i + 1..body_open]);

    // Arms: pattern tokens until `=>` at arm level; body is either the
    // following brace block or tokens until the next top-level `,`.
    let mut arms = Vec::new();
    let mut k = body_open + 1;
    while k < body_close {
        let pat_start = k;
        let mut depth = 0i32;
        let mut arrow = None;
        let mut p = k;
        while p < body_close {
            let t = &toks[p];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => {
                        arrow = Some(p);
                    }
                    _ => {}
                }
            }
            if arrow.is_some() {
                break;
            }
            p += 1;
        }
        let Some(arrow) = arrow else { break };
        let (body_start, body_end, next) =
            if toks.get(arrow + 1).map(|t| t.is("{")).unwrap_or(false) {
                let c = *brace_close.get(&(arrow + 1))?;
                let mut n = c + 1;
                if toks.get(n).map(|t| t.is(",")).unwrap_or(false) {
                    n += 1;
                }
                (arrow + 1, c + 1, n)
            } else {
                let mut depth = 0i32;
                let mut q = arrow + 1;
                while q < body_close {
                    let t = &toks[q];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    q += 1;
                }
                (arrow + 1, q, (q + 1).min(body_close))
            };
        arms.push(Arm {
            pattern: join_tokens(&toks[pat_start..arrow]),
            pat: (pat_start, arrow),
            body: (body_start, body_end),
            line: toks[pat_start].line,
        });
        k = next.max(k + 1);
    }
    Some(MatchExpr {
        scrutinee,
        line: toks[i].line,
        body: Scope {
            open: body_open,
            close: body_close,
        },
        arms,
    })
}

fn parse_str_const(toks: &[Tok], i: usize) -> Option<(String, String, usize)> {
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident || !toks.get(i + 2)?.is(":") {
        return None;
    }
    // Type tokens until `=`; must mention `str`.
    let mut j = i + 3;
    let mut is_str = false;
    while j < toks.len() && !toks[j].is("=") && !toks[j].is(";") {
        if toks[j].is("str") {
            is_str = true;
        }
        j += 1;
    }
    if !is_str || !toks.get(j)?.is("=") {
        return None;
    }
    let val = toks.get(j + 1)?;
    if val.kind != TokKind::Lit {
        return None;
    }
    Some((name.text.clone(), val.text.clone(), toks[i].line))
}

fn parse_fields(toks: &[Tok], open: usize, close: usize) -> Vec<Param> {
    split_commas(toks, open + 1, close)
        .into_iter()
        .filter_map(|(s, e)| {
            // Strip leading attributes `#[...]` and `pub`.
            let mut s = s;
            while s < e {
                if toks[s].is("#") {
                    // Skip `#[...]`.
                    let mut depth = 0i32;
                    let mut q = s + 1;
                    while q < e {
                        if toks[q].is("[") {
                            depth += 1;
                        } else if toks[q].is("]") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        q += 1;
                    }
                    s = q + 1;
                } else if toks[s].is("pub") {
                    s += 1;
                    if toks.get(s).map(|t| t.is("(")).unwrap_or(false) {
                        while s < e && !toks[s].is(")") {
                            s += 1;
                        }
                        s += 1;
                    }
                } else {
                    break;
                }
            }
            parse_param(toks, s, e)
        })
        .collect()
}

fn parse_struct(
    toks: &[Tok],
    i: usize,
    paren_close: &std::collections::BTreeMap<usize, usize>,
    brace_close: &std::collections::BTreeMap<usize, usize>,
    ast: &mut FileAst,
) {
    let Some(name) = toks.get(i + 1) else { return };
    if name.kind != TokKind::Ident {
        return;
    }
    let j = skip_generics(toks, i + 2);
    let Some(t) = toks.get(j) else { return };
    if t.is("(") {
        // Tuple struct: single-field ones are wire newtypes.
        let Some(&close) = paren_close.get(&j) else {
            return;
        };
        let elems = split_commas(toks, j + 1, close);
        if elems.len() == 1 {
            let (s, e) = elems[0];
            let start = if toks[s].is("pub") { s + 1 } else { s };
            ast.newtypes
                .push((name.text.clone(), join_tokens(&toks[start..e])));
        }
    } else if t.is("{") {
        let Some(&close) = brace_close.get(&j) else {
            return;
        };
        ast.structs.push(StructDef {
            name: name.text.clone(),
            fields: parse_fields(toks, j, close),
            line: toks[i].line,
            is_cdr: false,
        });
    }
}

/// `cdr_struct!( Name { field: ty, ... } );` — possibly with doc comments
/// (already stripped) and attributes between the paren and the name.
fn parse_cdr_struct(
    toks: &[Tok],
    i: usize,
    brace_close: &std::collections::BTreeMap<usize, usize>,
    ast: &mut FileAst,
) {
    if !toks.get(i + 1).map(|t| t.is("!")).unwrap_or(false) {
        return;
    }
    // Find `Name {` within the macro body.
    let mut j = i + 2;
    while j + 1 < toks.len() && j < i + 40 {
        if toks[j].kind == TokKind::Ident && toks[j + 1].is("{") {
            let Some(&close) = brace_close.get(&(j + 1)) else {
                return;
            };
            ast.structs.push(StructDef {
                name: toks[j].text.clone(),
                fields: parse_fields(toks, j + 1, close),
                line: toks[j].line,
                is_cdr: true,
            });
            return;
        }
        j += 1;
    }
}

fn parse_enum(
    toks: &[Tok],
    i: usize,
    paren_close: &std::collections::BTreeMap<usize, usize>,
    brace_close: &std::collections::BTreeMap<usize, usize>,
) -> Option<EnumDef> {
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let j = skip_generics(toks, i + 2);
    if !toks.get(j)?.is("{") {
        return None;
    }
    let close = *brace_close.get(&j)?;
    let mut variants = Vec::new();
    for (s, e) in split_commas(toks, j + 1, close) {
        // Skip attributes.
        let mut s = s;
        while s < e && toks[s].is("#") {
            while s < e && !toks[s].is("]") {
                s += 1;
            }
            s += 1;
        }
        if s >= e || toks[s].kind != TokKind::Ident {
            continue;
        }
        let vname = toks[s].text.clone();
        let vline = toks[s].line;
        let fields = match toks.get(s + 1) {
            Some(t) if t.is("{") => {
                let c = brace_close.get(&(s + 1)).copied().unwrap_or(e);
                parse_fields(toks, s + 1, c.min(e))
            }
            Some(t) if t.is("(") => {
                let c = paren_close.get(&(s + 1)).copied().unwrap_or(e);
                split_commas(toks, s + 2, c.min(e))
                    .into_iter()
                    .map(|(fs, fe)| Param {
                        name: String::new(),
                        ty: join_tokens(&toks[fs..fe]),
                        line: toks[fs].line,
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        variants.push(Variant {
            name: vname,
            fields,
            line: vline,
        });
    }
    Some(EnumDef {
        name: name.text.clone(),
        variants,
        line: toks[i].line,
    })
}

fn parse_call(
    toks: &[Tok],
    i: usize,
    paren_close: &std::collections::BTreeMap<usize, usize>,
) -> Option<Call> {
    let t = &toks[i];
    if t.kind != TokKind::Ident || KEYWORDS_BEFORE_PAREN.contains(&t.text.as_str()) {
        return None;
    }
    // Name may be followed by a turbofish: `from_bytes::<T>(...)`.
    let mut j = i + 1;
    if toks.get(j).map(|x| x.is("::")).unwrap_or(false)
        && toks.get(j + 1).map(|x| x.is("<")).unwrap_or(false)
    {
        let after = skip_generics(toks, j + 1);
        if after > j + 1 {
            j = after;
        }
    }
    if !toks.get(j).map(|x| x.is("(")).unwrap_or(false) {
        return None;
    }
    let close = *paren_close.get(&j)?;
    let is_method = i > 0 && toks[i - 1].is(".");
    // Receiver chain: walk back over `ident . ident . ... .`
    let recv_tail = if is_method {
        let mut p = i - 1; // at `.`
        let mut tail = None;
        loop {
            if p == 0 {
                break;
            }
            let prev = &toks[p - 1];
            if prev.kind == TokKind::Ident {
                if tail.is_none() {
                    tail = Some(prev.text.clone());
                }
                if p >= 2 && toks[p - 2].is(".") {
                    p -= 2;
                    continue;
                }
            }
            break;
        }
        tail
    } else {
        None
    };
    let args = split_commas(toks, j + 1, close)
        .into_iter()
        .map(|toks_range| Arg { toks: toks_range })
        .collect();
    Some(Call {
        recv_tail,
        method: t.text.clone(),
        line: t.line,
        is_method,
        args,
        name_tok: i,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ast_of(src: &str) -> FileAst {
        FileAst::parse(&crate::lexer::preprocess(src))
    }

    #[test]
    fn fn_items_and_params() {
        let a = ast_of("fn add(a: f64, b: f64) -> f64 { a + b }\n");
        assert_eq!(a.fns.len(), 1);
        let f = &a.fns[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].ty, "f64");
        assert_eq!(f.ret, "f64");
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_trait_for_type() {
        let a = ast_of("impl Servant for EventChannel {\n fn dispatch(&mut self) {}\n}\n");
        assert_eq!(a.impls.len(), 1);
        assert_eq!(a.impls[0].trait_name.as_deref(), Some("Servant"));
        assert_eq!(a.impls[0].type_name, "EventChannel");
    }

    #[test]
    fn match_arms_with_ops_and_literals() {
        let a = ast_of(
            "fn d(op: &str) {\n match op {\n ops::PUSH => { x(); }\n \"add\" | \"div\" => y(),\n _ => z(),\n }\n}\n",
        );
        let m = &a.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(m.arms[0].pattern.contains("ops::PUSH"));
        assert!(m.arms[1].pattern.contains("\"add\""));
        assert!(m.arms[1].pattern.contains("\"div\""));
    }

    #[test]
    fn calls_receiver_and_args() {
        let a = ast_of("fn f() { self.obj.call(orb, ctx, \"add\", &(a, b,)); }\n");
        let c = a.calls.iter().find(|c| c.method == "call").unwrap();
        assert_eq!(c.recv_tail.as_deref(), Some("obj"));
        assert_eq!(c.args.len(), 4);
    }

    #[test]
    fn const_and_newtype_and_enum() {
        let a = ast_of(
            "pub const PUSH: &str = \"push\";\npub struct Epoch(pub u64);\npub enum E { A { x: u32 }, B, C(u8) }\n",
        );
        assert_eq!(
            a.str_consts,
            vec![("PUSH".to_string(), "push".to_string(), 1)]
        );
        assert_eq!(a.newtypes, vec![("Epoch".to_string(), "u64".to_string())]);
        assert_eq!(a.enums.len(), 1);
        assert_eq!(a.enums[0].variants.len(), 3);
        assert_eq!(a.enums[0].variants[0].fields[0].name, "x");
    }

    #[test]
    fn cdr_struct_macro_fields() {
        let a = ast_of("cdr_struct!(\n Checkpoint {\n object_id: String,\n epoch: u64,\n }\n);\n");
        assert_eq!(a.structs.len(), 1);
        let s = &a.structs[0];
        assert!(s.is_cdr);
        assert_eq!(s.name, "Checkpoint");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].name, "epoch");
        assert_eq!(s.fields[1].ty, "u64");
    }
}

//! Failure-path dataflow over the workspace call graph (rules F1–F4).
//!
//! The lattice is deliberately coarse: each node carries three boolean
//! facts (*mentions a deadline*, *sleeps/backs off*, *performs a remote
//! invocation*), and the dataflow is reverse reachability of those facts
//! over the resolved edges — "can execution starting at this call reach a
//! deadline?", "can this call chain end up doing an RPC?". That is exactly
//! enough to check the paper's availability contract interprocedurally:
//!
//! * **F1 — naked RPC.** Every remote invocation site must be dominated
//!   by a reply deadline: the stub variant carries one (`*_with_timeout`,
//!   oneway), the enclosing fn computes one, or every path from the
//!   resolved callees reaches a deadline-bearing node (the orb core's
//!   `request_timeout` default). A site none of whose resolutions can
//!   reach a deadline can block forever on a crashed server.
//! * **F2 — unbounded / zero-backoff retry.** A loop that (transitively)
//!   performs a remote invocation and can exit (`break`) is a retry loop;
//!   it must carry a bound (attempt counter, budget, deadline) and — for
//!   bare `loop` retries — a sleep/backoff on the retry path. The same
//!   rule catches retry *cycles* spelled as mutual recursion: a strongly
//!   connected component of statically-resolved edges that performs RPCs
//!   but never sleeps.
//! * **F3 — swallowed recoverable failure.** Interprocedural E1: a match
//!   arm catching a recoverable failure (COMM_FAILURE/TRANSIENT) with a
//!   non-trivial body must still *do* something with it — propagate
//!   (`?`/`return`/`break`/`continue`/`Err`), or reach a recovery/
//!   recording sink (ftproxy retarget/recover, the doctor, the flight
//!   recorder, an experiment outcome) directly or through a call.
//! * **F4 — unbalanced resource pair.** Paired lifecycle operations must
//!   both be reachable in the workspace: acquisitions in production code
//!   (`subscribe`, `bind`, `bind_group_member`, …) with zero release
//!   sites anywhere mean the resource can only leak.
//!
//! Test code is kept in the graph (tests are the reachability roots) but
//! produces no findings.

use crate::analysis::FileAnalysis;
use crate::ast::TokKind;
use crate::callgraph::{CallGraph, EdgeKind};
use crate::rules::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Markers of a recoverable-failure catch (shared with E1).
const RECOVERABLE_MARKERS: &[&str] = &[
    "CommFailure",
    "COMM_FAILURE",
    "Transient",
    "TRANSIENT",
    "is_recoverable",
    "is_comm_failure",
];

/// Identifier fragments that count as *handling* a caught failure in
/// place: feeding retry/recovery, or recording it somewhere a human or
/// the doctor will see.
const SINK_FRAGMENTS: &[&str] = &[
    "recover",
    "retarget",
    "retry",
    "retries",
    "backoff",
    "outcome",
    "doctor",
    "record",
    "publish",
    "ingest",
    "dump",
    "log",
    "observe",
    "stats",
    "counter",
    "count",
    "metric",
    "fail",
    "error",
    "panic",
    "unreachable",
    "assert",
];

/// Node-name/owner fragments that make a callee a recovery/recording
/// sink for F3's interprocedural arm check.
const SINK_NODE_FRAGMENTS: &[&str] = &[
    "recover", "retarget", "record", "report", "publish", "ingest", "outcome", "doctor",
];

/// Paired-resource lifecycle ops: (acquire, release, what leaks).
/// Acquire sites are counted in production code; a release site anywhere
/// (tests included) proves the release path exists and is exercised.
const PAIRS: &[(&str, &str, &str)] = &[
    ("subscribe", "unsubscribe", "monitor subscriber ring"),
    (
        "bind_group_member",
        "unbind_group_member",
        "naming group membership",
    ),
    ("bind", "unbind", "naming binding"),
];

/// Loop bound evidence: identifier fragments that show the retry count or
/// time is capped.
fn is_bound_hint(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    lower.contains("attempt")
        || lower.contains("budget")
        || lower.contains("retries")
        || lower.contains("deadline")
        || lower == "max"
        || lower.starts_with("max_")
        || lower.contains("_max")
}

/// True when a bound-hint identifier sits within three tokens of a
/// comparison operator inside `range` — `attempts >= max_recoveries`,
/// `ctx.now() > deadline`, `budget < cost`.
fn has_compared_bound(toks: &[crate::ast::Tok], range: (usize, usize)) -> bool {
    for ti in range.0..range.1 {
        let t = &toks[ti];
        if t.kind != TokKind::Punct
            || !matches!(t.text.as_str(), "<" | ">" | "<=" | ">=" | "==" | "!=")
        {
            continue;
        }
        let lo = ti.saturating_sub(3).max(range.0);
        let hi = (ti + 4).min(range.1);
        if toks[lo..hi]
            .iter()
            .any(|n| n.kind == TokKind::Ident && is_bound_hint(&n.text))
        {
            return true;
        }
    }
    false
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopKind {
    Loop,
    While,
    WhileLet,
    /// Tracked only so its `break`s are not misattributed to an enclosing
    /// loop; bounded by its iterator and never flagged itself.
    For,
}

/// One loop inside a fn body: token ranges of the head/cond and body.
struct LoopSite {
    kind: LoopKind,
    line: usize,
    cond: (usize, usize),
    body: (usize, usize),
}

/// Extract `loop`/`while` loops from a node body (for-loops are bounded
/// by their iterator and exempt).
fn loops_in(fa: &FileAnalysis, body: (usize, usize)) -> Vec<LoopSite> {
    let ast = &fa.ast;
    let toks = &ast.toks;
    let close_of: BTreeMap<usize, usize> = ast.scopes.iter().map(|s| (s.open, s.close)).collect();
    let mut out = Vec::new();
    let mut ti = body.0;
    while ti < body.1 {
        let t = &toks[ti];
        let kind = if t.is("loop") {
            Some(LoopKind::Loop)
        } else if t.is("while") {
            if toks.get(ti + 1).map(|n| n.is("let")).unwrap_or(false) {
                Some(LoopKind::WhileLet)
            } else {
                Some(LoopKind::While)
            }
        } else if t.is("for") {
            Some(LoopKind::For)
        } else {
            None
        };
        let Some(kind) = kind else {
            ti += 1;
            continue;
        };
        // Find the body `{` at bracket/paren depth 0; bail at `;` (a
        // `loop` label or macro fragment without a block).
        let mut depth = 0i32;
        let mut open = None;
        for (j, tj) in toks.iter().enumerate().take(body.1).skip(ti + 1) {
            if tj.kind == TokKind::Punct {
                match tj.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
        }
        let Some(open) = open else {
            ti += 1;
            continue;
        };
        let Some(&close) = close_of.get(&open) else {
            ti += 1;
            continue;
        };
        out.push(LoopSite {
            kind,
            line: t.line,
            cond: (ti + 1, open),
            body: (open, close),
        });
        ti += 1;
    }
    out
}

/// Nodes that can reach (over edges passing `allow`) a node satisfying
/// `fact` — computed as forward BFS over reversed edges, fact-nodes
/// included.
fn can_reach(
    g: &CallGraph,
    fact: impl Fn(usize) -> bool,
    allow: impl Fn(EdgeKind) -> bool,
) -> Vec<bool> {
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for e in &g.edges {
        if allow(e.kind) {
            rev[e.to].push(e.from);
        }
    }
    let mut hit = vec![false; g.nodes.len()];
    let mut stack: Vec<usize> = (0..g.nodes.len()).filter(|&i| fact(i)).collect();
    for &i in &stack {
        hit[i] = true;
    }
    while let Some(n) = stack.pop() {
        for &p in &rev[n] {
            if !hit[p] {
                hit[p] = true;
                stack.push(p);
            }
        }
    }
    hit
}

fn finding(
    rule: &'static str,
    severity: Severity,
    file: &str,
    line: usize,
    message: String,
) -> Finding {
    Finding {
        rule,
        severity,
        file: file.to_string(),
        line,
        message,
        allowed: false,
        allow_reason: None,
    }
}

/// Run F1–F4 over the analyzed workspace and its call graph.
pub fn check(files: &[FileAnalysis], g: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Fact closures used by several rules. Call-following edges exclude
    // Dispatch: reply-deadline and backoff evidence must sit on the
    // *client* side of the wire, not inside the server's skeleton.
    let not_dispatch = |k: EdgeKind| k != EdgeKind::Dispatch;
    let can_deadline = can_reach(g, |i| g.nodes[i].has_deadline, not_dispatch);
    let can_remote = can_reach(g, |i| g.nodes[i].has_remote, not_dispatch);
    let can_sleep = can_reach(g, |i| g.nodes[i].has_sleep, not_dispatch);
    let sinky = |i: usize| {
        let n = &g.nodes[i];
        let hay = format!(
            "{} {}",
            n.owner.to_ascii_lowercase(),
            n.name.to_ascii_lowercase()
        );
        SINK_NODE_FRAGMENTS.iter().any(|f| hay.contains(f))
    };
    let can_sink = can_reach(g, sinky, not_dispatch);

    check_f1(g, &can_deadline, &mut findings);
    check_f2(files, g, &can_remote, &can_sleep, &mut findings);
    check_f3(files, g, &can_sink, &mut findings);
    check_f4(g, files, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// F1: every remote invocation site is dominated by a deadline.
fn check_f1(g: &CallGraph, can_deadline: &[bool], findings: &mut Vec<Finding>) {
    for s in &g.remote_sites {
        if s.is_test {
            continue;
        }
        // Oneways never wait for a reply; `*_with_timeout` carries the
        // deadline at the site.
        if s.method.ends_with("_with_timeout")
            || s.method == "oneway"
            || s.method == "invoke_oneway"
        {
            continue;
        }
        let n = &g.nodes[s.node];
        if n.has_deadline {
            continue;
        }
        if !s.targets.is_empty() && s.targets.iter().any(|&t| can_deadline[t]) {
            continue;
        }
        findings.push(finding(
            "F1",
            Severity::Error,
            &n.file,
            s.line,
            format!(
                "naked RPC: `{}` in `{}` waits for a reply with no deadline on any path — a crashed server blocks this call forever; use the `_with_timeout` variant or compute a request deadline",
                s.method,
                n.name
            ),
        ));
    }
}

/// F2: retry loops around remote calls are bounded and back off; retry
/// cycles through sleep-free paths are flagged the same way.
fn check_f2(
    files: &[FileAnalysis],
    g: &CallGraph,
    can_remote: &[bool],
    can_sleep: &[bool],
    findings: &mut Vec<Finding>,
) {
    // Per-node: does the fn body itself compare an attempt/budget bound?
    // Used one hop deep — a retry loop whose per-iteration helper enforces
    // the cap (FtRequest::get_response → settle) is bounded.
    let node_bound: Vec<bool> = g
        .nodes
        .iter()
        .map(|n| has_compared_bound(&files[n.file_idx].ast.toks, n.body))
        .collect();
    for (ni, n) in g.nodes.iter().enumerate() {
        if n.is_test {
            continue;
        }
        let fa = &files[n.file_idx];
        let toks = &fa.ast.toks;
        // Keep only loops owned by this fn (not a nested fn's).
        let loops: Vec<LoopSite> = loops_in(fa, n.body)
            .into_iter()
            .filter(|lp| {
                fa.ast
                    .enclosing_fn(lp.body.0)
                    .map(|o| o.line == n.line && o.name == n.name)
                    .unwrap_or(false)
            })
            .collect();
        let in_range = |ti: usize, r: (usize, usize)| r.0 < ti && ti < r.1;
        for (li, lp) in loops.iter().enumerate() {
            if lp.kind == LoopKind::For {
                continue; // bounded by its iterator
            }
            // Remote evidence: a site directly in the loop body, or a call
            // in the loop body whose callees can end up doing an RPC.
            let direct_remote = g
                .remote_sites
                .iter()
                .any(|s| s.node == ni && in_range(s.tok, lp.body));
            let called_remote = g.edges_from(ni).any(|e| {
                e.kind != EdgeKind::Dispatch && in_range(e.call_tok, lp.body) && can_remote[e.to]
            });
            if !direct_remote && !called_remote {
                continue;
            }
            // Retry loops terminate on success: a `break`/`return`
            // belonging to *this* loop (not a nested one). Exit-less loops
            // are daemon bodies (node managers, detectors) — out of scope.
            let nested: Vec<(usize, usize)> = loops
                .iter()
                .enumerate()
                .filter(|&(lj, lx)| lj != li && lp.body.0 < lx.body.0 && lx.body.1 < lp.body.1)
                .map(|(_, lx)| lx.body)
                .collect();
            let direct_exit = toks[lp.body.0..lp.body.1]
                .iter()
                .enumerate()
                .any(|(off, t)| {
                    (t.is("break") || t.is("return"))
                        && !nested.iter().any(|&r| in_range(lp.body.0 + off, r))
                });
            if !direct_exit {
                continue;
            }
            let bounded = match lp.kind {
                // `while let` drains a finite source; a comparison in the
                // condition is an explicit bound.
                LoopKind::WhileLet => true,
                LoopKind::While => {
                    toks[lp.cond.0..lp.cond.1].iter().any(|t| {
                        t.kind == TokKind::Punct
                            && matches!(t.text.as_str(), "<" | ">" | "<=" | ">=" | "!=")
                    }) || toks[lp.cond.0..lp.cond.1]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && is_bound_hint(&t.text))
                }
                // A bare `loop` is bounded only by a *compared* bound: an
                // attempt/budget/deadline identifier adjacent to a
                // comparison operator, in the loop body or in a helper it
                // calls each iteration. A merely-incremented retry *stat*
                // (`s.retries += 1`) proves nothing.
                LoopKind::Loop => {
                    has_compared_bound(toks, lp.body)
                        || g.edges_from(ni).any(|e| {
                            e.kind != EdgeKind::Dispatch
                                && in_range(e.call_tok, lp.body)
                                && node_bound[e.to]
                        })
                }
                LoopKind::For => unreachable!("for-loops are skipped above"),
            };
            if !bounded {
                findings.push(finding(
                    "F2",
                    Severity::Error,
                    &n.file,
                    lp.line,
                    format!(
                        "unbounded retry loop around a remote invocation in `{}`: no attempt counter, budget, or deadline bounds the retries — under a persistent fault this spins forever; cap it with a max-attempts/budget check",
                        n.name
                    ),
                ));
                continue;
            }
            // Bare-`loop` retries must also back off between attempts.
            if lp.kind == LoopKind::Loop {
                let direct_sleep = toks[lp.body.0..lp.body.1].iter().any(|t| {
                    t.kind == TokKind::Ident
                        && (t.text == "sleep" || t.text.to_ascii_lowercase().contains("backoff"))
                });
                let called_sleep = g.edges_from(ni).any(|e| {
                    e.kind != EdgeKind::Dispatch && in_range(e.call_tok, lp.body) && can_sleep[e.to]
                });
                if !direct_sleep && !called_sleep {
                    findings.push(finding(
                        "F2",
                        Severity::Error,
                        &n.file,
                        lp.line,
                        format!(
                            "zero-backoff retry loop around a remote invocation in `{}`: retries hammer the server with no sleep between attempts; add a backoff on the retry path",
                            n.name
                        ),
                    ));
                }
            }
        }
    }

    // Retry cycles spelled as recursion: a statically-resolved cycle that
    // performs RPCs but never sleeps. One finding per cycle, reported at
    // its first node in (file, line) order.
    let is_static = |k: EdgeKind| k == EdgeKind::Static;
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    for (ni, n) in g.nodes.iter().enumerate() {
        if n.is_test || !n.has_remote {
            continue;
        }
        let succs: Vec<usize> = g
            .edges_from(ni)
            .filter(|e| is_static(e.kind))
            .map(|e| e.to)
            .collect();
        let fwd = g.reachable(succs, is_static);
        if !fwd.contains(&ni) {
            continue;
        }
        // The cycle through `ni`: nodes it reaches that reach it back.
        let cycle: Vec<usize> = fwd
            .iter()
            .copied()
            .filter(|&m| g.reachable([m], is_static).contains(&ni))
            .collect();
        if cycle.iter().any(|&m| g.nodes[m].has_sleep) {
            continue;
        }
        if !reported.insert(cycle.clone()) {
            continue;
        }
        let first = cycle
            .iter()
            .copied()
            .min_by_key(|&m| (&g.nodes[m].file, g.nodes[m].line))
            .unwrap_or(ni);
        let names: Vec<&str> = cycle.iter().map(|&m| g.nodes[m].name.as_str()).collect();
        findings.push(finding(
            "F2",
            Severity::Error,
            &g.nodes[first].file,
            g.nodes[first].line,
            format!(
                "sleep-free retry cycle through remote invocations: {} call each other with no backoff anywhere on the cycle",
                names.join(" → ")
            ),
        ));
    }
}

/// F3: recoverable failures caught with a non-trivial body must still be
/// handled — propagated, recovered, or recorded (possibly via a call).
fn check_f3(files: &[FileAnalysis], g: &CallGraph, can_sink: &[bool], findings: &mut Vec<Finding>) {
    for (ni, n) in g.nodes.iter().enumerate() {
        if n.is_test {
            continue;
        }
        let fa = &files[n.file_idx];
        let ast = &fa.ast;
        for m in &ast.matches {
            for arm in &m.arms {
                if arm.body.0 <= n.body.0 || arm.body.1 >= n.body.1 {
                    continue;
                }
                // Innermost-fn ownership (nested fns check their own arms).
                if ast
                    .enclosing_fn(arm.body.0)
                    .map(|o| o.line != n.line || o.name != n.name)
                    .unwrap_or(true)
                {
                    continue;
                }
                if fa.is_test_line(arm.line) {
                    continue;
                }
                let marked = ast.toks[arm.pat.0..arm.pat.1].iter().any(|t| {
                    t.kind == TokKind::Ident && RECOVERABLE_MARKERS.contains(&t.text.as_str())
                });
                if !marked {
                    continue;
                }
                let body = &ast.toks[arm.body.0..arm.body.1];
                // Trivial bodies are E1's finding, not ours.
                if !body
                    .iter()
                    .any(|t| matches!(t.kind, TokKind::Ident | TokKind::Lit))
                {
                    continue;
                }
                let handled = body.iter().any(|t| match t.kind {
                    TokKind::Punct => t.text == "?",
                    TokKind::Ident => {
                        matches!(t.text.as_str(), "return" | "break" | "continue" | "Err") || {
                            let lower = t.text.to_ascii_lowercase();
                            SINK_FRAGMENTS.iter().any(|f| lower.contains(f))
                        }
                    }
                    _ => false,
                });
                let handled_by_call = handled
                    || g.edges_from(ni).any(|e| {
                        e.kind != EdgeKind::Dispatch
                            && arm.body.0 <= e.call_tok
                            && e.call_tok < arm.body.1
                            && can_sink[e.to]
                    });
                if !handled_by_call {
                    findings.push(finding(
                        "F3",
                        Severity::Warning,
                        &n.file,
                        arm.line,
                        format!(
                            "recoverable failure caught in `{}` but swallowed: the arm neither propagates it, retries, nor records it anywhere the doctor or the experiment outcome can see",
                            n.name
                        ),
                    ));
                }
            }
        }
    }
}

/// F4: paired-resource lifecycle balance across the workspace.
fn check_f4(g: &CallGraph, files: &[FileAnalysis], findings: &mut Vec<Finding>) {
    // Count call sites by exact callee name (method or free) and by the
    // IDL op a remote site names. A definition is not a site.
    let mut acquire_first: BTreeMap<&str, (usize, String, usize)> = BTreeMap::new();
    let mut counts: BTreeMap<(&str, bool), usize> = BTreeMap::new();
    let mut tally = |name: &str, is_test: bool, file: &str, line: usize| {
        for &(acq, rel, _) in PAIRS {
            let which = if name == acq {
                Some((acq, false))
            } else if name == rel {
                Some((rel, true))
            } else {
                None
            };
            let Some((key, is_release)) = which else {
                continue;
            };
            // Production acquisitions only; releases count anywhere.
            if !is_release && is_test {
                continue;
            }
            *counts.entry((key, is_release)).or_default() += 1;
            if !is_release {
                acquire_first
                    .entry(key)
                    .or_insert_with(|| (line, file.to_string(), line));
            }
        }
    };
    for n in &g.nodes {
        let fa = &files[n.file_idx];
        for c in &fa.ast.calls {
            if c.name_tok <= n.body.0 || c.name_tok >= n.body.1 {
                continue;
            }
            if fa
                .ast
                .enclosing_fn(c.name_tok)
                .map(|o| o.line != n.line || o.name != n.name)
                .unwrap_or(true)
            {
                continue;
            }
            let is_test = n.is_test || fa.is_test_line(c.line);
            tally(&c.method, is_test, &n.file, c.line);
        }
    }
    for s in &g.remote_sites {
        if let Some(op) = &s.op {
            tally(op, s.is_test, &g.nodes[s.node].file, s.line);
        }
    }
    for &(acq, rel, what) in PAIRS {
        let acquires = counts.get(&(acq, false)).copied().unwrap_or(0);
        let releases = counts.get(&(rel, true)).copied().unwrap_or(0);
        if acquires > 0 && releases == 0 {
            let (_, file, line) = acquire_first
                .get(acq)
                .cloned()
                .unwrap_or((0, String::new(), 0));
            findings.push(finding(
                "F4",
                Severity::Error,
                &file,
                line,
                format!(
                    "unbalanced resource pair: {acquires} `{acq}` site(s) but no `{rel}` anywhere in the workspace — every {what} acquired here leaks for the life of the process"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<FileAnalysis> = sources
            .iter()
            .map(|(path, src)| {
                let dir = crate::crate_dir_of(path);
                FileAnalysis::new(path, dir.as_deref(), src)
            })
            .collect();
        let g = callgraph::build(&files, &[]);
        check(&files, &g)
    }

    #[test]
    fn f1_flags_naked_rpc_and_accepts_timeout() {
        let f = run(&[(
            "crates/ft/src/x.rs",
            "pub struct C { obj: ObjectRef }\nimpl C {\n fn naked(&self, orb: &mut Orb) { self.obj.invoke(orb); }\n fn timed(&self, orb: &mut Orb) { self.obj.invoke_with_timeout(orb); }\n}\n",
        )]);
        let f1: Vec<_> = f.iter().filter(|f| f.rule == "F1").collect();
        assert_eq!(f1.len(), 1, "{f:?}");
        assert_eq!(f1[0].line, 3);
    }

    #[test]
    fn f2_flags_unbounded_retry_and_accepts_capped() {
        let f = run(&[(
            "crates/ft/src/y.rs",
            concat!(
                "fn remote(obj: &ObjectRef) { obj.invoke_with_timeout(1); }\n",
                "fn bad(obj: &ObjectRef) {\n",
                " loop {\n",
                "  remote(obj);\n",
                "  if done() { break; }\n",
                " }\n",
                "}\n",
                "fn good(obj: &ObjectRef) {\n",
                " let mut attempts = 0;\n",
                " loop {\n",
                "  remote(obj);\n",
                "  attempts += 1;\n",
                "  if attempts > 3 { break; }\n",
                "  backoff_sleep();\n",
                " }\n",
                "}\n",
            ),
        )]);
        let f2: Vec<_> = f.iter().filter(|f| f.rule == "F2").collect();
        assert_eq!(f2.len(), 1, "{f:?}");
        assert_eq!(f2[0].line, 3);
    }

    #[test]
    fn f2_flags_zero_backoff_bounded_loop() {
        let f = run(&[(
            "crates/ft/src/z.rs",
            concat!(
                "fn hammer(obj: &ObjectRef) {\n",
                " let mut attempts = 0;\n",
                " loop {\n",
                "  obj.invoke_with_timeout(1);\n",
                "  attempts += 1;\n",
                "  if attempts > 3 { break; }\n",
                " }\n",
                "}\n",
            ),
        )]);
        let f2: Vec<_> = f.iter().filter(|f| f.rule == "F2").collect();
        assert_eq!(f2.len(), 1, "{f:?}");
        assert!(f2[0].message.contains("zero-backoff"));
    }

    #[test]
    fn f2_ignores_breakless_daemon_loops() {
        let f = run(&[(
            "crates/winner/src/d.rs",
            "fn daemon(obj: &ObjectRef) {\n loop {\n  obj.invoke_with_timeout(1);\n  step();\n }\n}\n",
        )]);
        assert!(f.iter().all(|f| f.rule != "F2"), "{f:?}");
    }

    #[test]
    fn f3_flags_swallowed_failure_and_accepts_sink() {
        let f = run(&[(
            "crates/ft/src/w.rs",
            concat!(
                "fn swallow(r: R) -> u32 {\n",
                " match r {\n",
                "  Ok(v) => v,\n",
                "  Err(e) if e.is_recoverable() => { let v = 0; v }\n",
                " }\n",
                "}\n",
                "fn sunk(r: R, d: &mut Doctor) -> u32 {\n",
                " match r {\n",
                "  Ok(v) => v,\n",
                "  Err(e) if e.is_recoverable() => { d.record_failure(); 0 }\n",
                " }\n",
                "}\n",
            ),
        )]);
        let f3: Vec<_> = f.iter().filter(|f| f.rule == "F3").collect();
        assert_eq!(f3.len(), 1, "{f:?}");
        assert_eq!(f3[0].line, 4);
    }

    #[test]
    fn f4_flags_unreleased_pair() {
        let f = run(&[(
            "crates/monitor/src/s.rs",
            "fn acquire(st: &mut St) { st.subscribe(4); }\n",
        )]);
        let f4: Vec<_> = f.iter().filter(|f| f.rule == "F4").collect();
        assert_eq!(f4.len(), 1, "{f:?}");
        assert!(f4[0].message.contains("unsubscribe"));
    }

    #[test]
    fn f4_balanced_pair_is_clean() {
        let f = run(&[(
            "crates/monitor/src/s.rs",
            "fn acquire(st: &mut St) { st.subscribe(4); }\nfn release(st: &mut St) { st.unsubscribe(1); }\n",
        )]);
        assert!(f.iter().all(|f| f.rule != "F4"), "{f:?}");
    }
}

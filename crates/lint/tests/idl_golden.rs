//! Golden test over the committed `idl/*.idl` contracts: the parser must
//! see exactly the interfaces, operations, typedefs, and type mappings
//! the Rust side implements. If an IDL file gains or loses an operation,
//! this test fails alongside the wire pass — update both deliberately.

use ldft_lint::idlparse::{parse, IdlFile};
use std::collections::BTreeMap;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

fn parsed() -> Vec<IdlFile> {
    ldft_lint::idl_files(workspace_root())
        .expect("list idl/")
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).expect("read idl");
            let rel = p
                .strip_prefix(workspace_root())
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            parse(&rel, &src)
        })
        .collect()
}

#[test]
fn every_contract_parses_to_the_expected_surface() {
    // (file, interface, op count) — op counts include attribute
    // pseudo-ops (`_get_x`/`_set_x`).
    let want: &[(&str, &str, usize)] = &[
        ("idl/calculator.idl", "Calculator", 10),
        ("idl/ft.idl", "CheckpointService", 7),
        ("idl/ft.idl", "ServiceFactory", 3),
        ("idl/monitor.idl", "EventChannel", 5),
        ("idl/naming.idl", "BindingIterator", 3),
        ("idl/naming.idl", "NamingContext", 12),
        ("idl/naming.idl", "Lookup", 3),
        ("idl/optim.idl", "Worker", 4),
        ("idl/store.idl", "Replication", 6),
        ("idl/winner.idl", "SystemManager", 3),
    ];
    let got: Vec<(String, String, usize)> = parsed()
        .iter()
        .flat_map(|f| {
            f.interfaces
                .iter()
                .map(|i| (f.path.clone(), i.name.clone(), i.ops.len()))
        })
        .collect();
    let want: Vec<(String, String, usize)> = want
        .iter()
        .map(|(f, i, n)| (f.to_string(), i.to_string(), *n))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn total_op_count_is_asserted() {
    // The workspace wire pass cross-checks exactly this many operations
    // (see `tests/selfcheck.rs`, which asserts `wire_ops` equals it).
    let total: usize = parsed()
        .iter()
        .flat_map(|f| f.interfaces.iter())
        .map(|i| i.ops.len())
        .sum();
    assert_eq!(total, 56);
}

#[test]
fn typedefs_map_to_canonical_rust_spellings() {
    let by_path: BTreeMap<String, IdlFile> =
        parsed().into_iter().map(|f| (f.path.clone(), f)).collect();
    let ft = &by_path["idl/ft.idl"];
    assert_eq!(ft.typedefs["Epoch"], "u64", "FT::Epoch is wire-u64");
    assert_eq!(ft.typedefs["OctetSeq"], "Vec<u8>");
    let naming = &by_path["idl/naming.idl"];
    assert_eq!(naming.typedefs["Name"], "Vec<NameComponent>");
    assert_eq!(naming.enums, vec!["BindingType".to_string()]);
    let winner = &by_path["idl/winner.idl"];
    assert_eq!(winner.typedefs["HostSeq"], "Vec<u32>");
    assert_eq!(winner.typedefs["HostStatusSeq"], "Vec<HostStatus>");
    let monitor = &by_path["idl/monitor.idl"];
    assert_eq!(
        monitor.natives,
        vec!["EventBody".to_string()],
        "the event body is a native (Rust-defined) type"
    );
}

#[test]
fn attributes_expand_to_wire_pseudo_ops() {
    let files = parsed();
    let calc = files
        .iter()
        .find(|f| f.path == "idl/calculator.idl")
        .unwrap();
    let ops: Vec<&str> = calc.interfaces[0]
        .ops
        .iter()
        .filter(|o| o.from_attribute)
        .map(|o| o.name.as_str())
        .collect();
    // `readonly attribute unsigned long op_count` → getter only;
    // `attribute double precision` → getter + setter.
    assert_eq!(
        ops,
        vec!["_get_op_count", "_get_precision", "_set_precision"]
    );
    let optim = files.iter().find(|f| f.path == "idl/optim.idl").unwrap();
    let worker = &optim.interfaces[0];
    let solve_count = worker
        .ops
        .iter()
        .find(|o| o.name == "_get_solve_count")
        .expect("readonly attribute expanded");
    assert!(solve_count.ins.is_empty());
    assert_eq!(solve_count.ret, "u32");
}

#[test]
fn struct_fields_carry_canonical_types() {
    let files = parsed();
    let ft = files.iter().find(|f| f.path == "idl/ft.idl").unwrap();
    let ckpt = ft.structs.iter().find(|s| s.name == "Checkpoint").unwrap();
    let fields: Vec<(&str, &str)> = ckpt
        .fields
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    assert_eq!(
        fields,
        vec![
            ("object_id", "String"),
            // Typedefs (`Epoch`, `OctetSeq`) are resolved to their wire
            // spellings already at parse time.
            ("epoch", "u64"),
            ("state", "Vec<u8>"),
            ("stamp_ns", "u64"),
        ]
    );
}

#[test]
fn oneway_ops_are_flagged() {
    let oneway: Vec<String> = parsed()
        .iter()
        .flat_map(|f| f.all_ops().map(|(i, o)| (i.name.clone(), o.clone())))
        .filter(|(_, o)| o.oneway)
        .map(|(i, o)| format!("{i}::{}", o.name))
        .collect();
    assert_eq!(
        oneway,
        vec![
            "Calculator::log".to_string(),
            "EventChannel::push".to_string(),
            "SystemManager::report".to_string(),
        ]
    );
}

//! Self-check: the analyzer run over its own workspace, through the
//! library API. This is the acceptance gate in executable form — the
//! committed tree is finding-free, every IDL operation was actually
//! cross-checked by the wire pass, and the lock graph saw the workspace's
//! `simnet::Shared` use sites.

use ldft_lint::{idl_files, idlparse, run_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

#[test]
fn workspace_is_finding_free() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    let errors: Vec<String> = report.errors().map(|f| f.render()).collect();
    assert!(
        errors.is_empty(),
        "unsuppressed errors:\n{}",
        errors.join("\n")
    );
    let warnings: Vec<String> = report.warnings().map(|f| f.render()).collect();
    assert!(warnings.is_empty(), "warnings:\n{}", warnings.join("\n"));
    // Every suppression carries a reason (A1 would have fired otherwise);
    // keep the count pinned so new allows are a conscious diff.
    assert_eq!(
        report.allowed().count(),
        4,
        "allow inventory changed — re-audit crates/lint/README.md's list"
    );
}

#[test]
fn wire_pass_covers_every_idl_operation() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    // Independent count: parse the contracts directly and sum their ops
    // (attributes expand to `_get_`/`_set_` pseudo-ops on both sides).
    let independent: usize = idl_files(workspace_root())
        .expect("list idl/")
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).expect("read idl");
            idlparse::parse(&p.to_string_lossy(), &src)
                .interfaces
                .iter()
                .map(|i| i.ops.len())
                .sum::<usize>()
        })
        .sum();
    assert_eq!(
        report.wire_ops, independent,
        "wire pass skipped operations the contracts declare"
    );
    assert_eq!(independent, 56, "idl/*.idl op inventory changed");
}

#[test]
fn call_graph_covers_the_workspace() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    let g = &report.graph;
    assert_eq!(report.graph_nodes, g.nodes.len());
    assert_eq!(report.graph_edges, g.edges.len());
    assert_eq!(report.remote_sites, g.remote_sites.len());
    // Pinned shape: the interprocedural pass currently sees this many fn
    // nodes, resolved call edges, and remote invocation sites. The golden
    // numbers document coverage (a resolution regression silently
    // shrinking the graph would otherwise mute F1–F4); update them when
    // functions or call sites are genuinely added or removed.
    assert_eq!(
        (g.nodes.len(), g.edges.len(), g.remote_sites.len()),
        (1035, 3452, 146),
        "call-graph inventory changed — confirm the F pass still sees every site:\n{:?}",
        g.crate_counts()
    );
    // Every policed crate contributes nodes and outgoing edges.
    let counts = g.crate_counts();
    for krate in [
        "bench", "core", "ft", "monitor", "naming", "obs", "optim", "orb", "store", "tests",
        "winner",
    ] {
        let (n, e) = counts.get(krate).copied().unwrap_or((0, 0));
        assert!(n > 0 && e > 0, "crate {krate} vanished from the graph");
    }
}

#[test]
fn every_idl_op_stub_is_reachable_from_a_test_root() {
    // Coverage closure: each IDL operation that has a client stub (a
    // remote invocation site carrying its op name) must be reachable from
    // a bench binary or a test fn — i.e. something actually exercises the
    // stub end to end. A stub this assertion flags is dead client code.
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    let g = &report.graph;
    let roots: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_test || n.krate == "bench" || n.krate == "tests")
        .map(|(i, _)| i)
        .collect();
    assert!(
        roots.len() > 300,
        "root inventory collapsed: {}",
        roots.len()
    );
    let reach = g.reachable(roots, |_| true);
    let ops: std::collections::BTreeSet<&str> = g
        .remote_sites
        .iter()
        .filter_map(|s| s.op.as_deref())
        .collect();
    assert!(
        ops.len() >= 47,
        "op-evidence inventory shrank: {}",
        ops.len()
    );
    let dead: Vec<&str> = ops
        .iter()
        .filter(|op| {
            !g.remote_sites
                .iter()
                .any(|s| s.op.as_deref() == Some(op) && reach.contains(&s.node))
        })
        .copied()
        .collect();
    assert!(
        dead.is_empty(),
        "client stubs no test or bench root reaches: {dead:?}"
    );
}

#[test]
fn lock_graph_covers_the_shared_use_sites() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    assert!(
        report.lock_sites >= report.lock_classes,
        "sites {} < classes {}",
        report.lock_sites,
        report.lock_classes
    );
    // Pinned coverage: the graph currently sees 28 non-test `Shared`
    // acquisition sites across 7 lock classes in the policed crates. A
    // raw-string `.lock()` count is no substitute (tests drive hundreds
    // of `Arc<Mutex>` harness cells the graph rightly ignores), so the
    // golden numbers document coverage; update them when `Shared` use
    // sites are genuinely added or removed.
    assert_eq!(
        (report.lock_sites, report.lock_classes),
        (28, 7),
        "Shared acquisition inventory changed — confirm the lock graph still sees every new site"
    );
}

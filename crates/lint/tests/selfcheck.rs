//! Self-check: the analyzer run over its own workspace, through the
//! library API. This is the acceptance gate in executable form — the
//! committed tree is finding-free, every IDL operation was actually
//! cross-checked by the wire pass, and the lock graph saw the workspace's
//! `simnet::Shared` use sites.

use ldft_lint::{idl_files, idlparse, run_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

#[test]
fn workspace_is_finding_free() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    let errors: Vec<String> = report.errors().map(|f| f.render()).collect();
    assert!(
        errors.is_empty(),
        "unsuppressed errors:\n{}",
        errors.join("\n")
    );
    let warnings: Vec<String> = report.warnings().map(|f| f.render()).collect();
    assert!(warnings.is_empty(), "warnings:\n{}", warnings.join("\n"));
    // Every suppression carries a reason (A1 would have fired otherwise);
    // keep the count pinned so new allows are a conscious diff.
    assert_eq!(
        report.allowed().count(),
        4,
        "allow inventory changed — re-audit crates/lint/README.md's list"
    );
}

#[test]
fn wire_pass_covers_every_idl_operation() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    // Independent count: parse the contracts directly and sum their ops
    // (attributes expand to `_get_`/`_set_` pseudo-ops on both sides).
    let independent: usize = idl_files(workspace_root())
        .expect("list idl/")
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).expect("read idl");
            idlparse::parse(&p.to_string_lossy(), &src)
                .interfaces
                .iter()
                .map(|i| i.ops.len())
                .sum::<usize>()
        })
        .sum();
    assert_eq!(
        report.wire_ops, independent,
        "wire pass skipped operations the contracts declare"
    );
    assert_eq!(independent, 56, "idl/*.idl op inventory changed");
}

#[test]
fn call_graph_covers_the_workspace() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    let g = &report.graph;
    assert_eq!(report.graph_nodes, g.nodes.len());
    assert_eq!(report.graph_edges, g.edges.len());
    assert_eq!(report.remote_sites, g.remote_sites.len());
    // Pinned shape: the interprocedural pass currently sees this many fn
    // nodes, resolved call edges, and remote invocation sites. The golden
    // numbers document coverage (a resolution regression silently
    // shrinking the graph would otherwise mute F1–F4); update them when
    // functions or call sites are genuinely added or removed.
    assert_eq!(
        (g.nodes.len(), g.edges.len(), g.remote_sites.len()),
        (1128, 3717, 147),
        "call-graph inventory changed — confirm the F pass still sees every site:\n{:?}",
        g.crate_counts()
    );
    // Every policed crate contributes nodes and outgoing edges.
    let counts = g.crate_counts();
    for krate in [
        "bench", "core", "explore", "ft", "monitor", "naming", "obs", "optim", "orb", "store",
        "tests", "winner",
    ] {
        let (n, e) = counts.get(krate).copied().unwrap_or((0, 0));
        assert!(n > 0 && e > 0, "crate {krate} vanished from the graph");
    }
}

#[test]
fn every_idl_op_stub_is_reachable_from_a_test_root() {
    // Coverage closure: each IDL operation that has a client stub (a
    // remote invocation site carrying its op name) must be reachable from
    // a bench binary or a test fn — i.e. something actually exercises the
    // stub end to end. A stub this assertion flags is dead client code.
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    let g = &report.graph;
    let roots: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_test || n.krate == "bench" || n.krate == "tests")
        .map(|(i, _)| i)
        .collect();
    assert!(
        roots.len() > 300,
        "root inventory collapsed: {}",
        roots.len()
    );
    let reach = g.reachable(roots, |_| true);
    let ops: std::collections::BTreeSet<&str> = g
        .remote_sites
        .iter()
        .filter_map(|s| s.op.as_deref())
        .collect();
    assert!(
        ops.len() >= 47,
        "op-evidence inventory shrank: {}",
        ops.len()
    );
    let dead: Vec<&str> = ops
        .iter()
        .filter(|op| {
            !g.remote_sites
                .iter()
                .any(|s| s.op.as_deref() == Some(op) && reach.contains(&s.node))
        })
        .copied()
        .collect();
    assert!(
        dead.is_empty(),
        "client stubs no test or bench root reaches: {dead:?}"
    );
}

#[test]
fn lock_graph_covers_the_shared_use_sites() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    assert!(
        report.lock_sites >= report.lock_classes,
        "sites {} < classes {}",
        report.lock_sites,
        report.lock_classes
    );
    // Pinned coverage: the graph currently sees 43 non-test `Shared`
    // acquisition sites across 13 lock classes in the policed crates
    // (the explore cells' choice logs, result cells, and register added
    // six classes). A raw-string `.lock()` count is no substitute (tests
    // drive hundreds of `Arc<Mutex>` harness cells the graph rightly
    // ignores), so the golden numbers document coverage; update them
    // when `Shared` use sites are genuinely added or removed.
    assert_eq!(
        (report.lock_sites, report.lock_classes),
        (43, 13),
        "Shared acquisition inventory changed — confirm the lock graph still sees every new site"
    );
}

#[test]
fn kernel_tie_breaks_route_through_the_schedule_policy() {
    // The explorer's soundness rests on the kernel exposing *every*
    // nondeterminism point through `SchedulePolicy`: an event-queue pop
    // outside `Kernel::next_event`, or a runnable-queue pop outside
    // `Kernel::next_runnable`, would be a tie broken behind the
    // explorer's back. Pin the routing: the queue-draining expressions
    // appear only inside those two functions, and each of them consults
    // the installed policy.
    let root = workspace_root();
    let simnet_src = root.join("crates/simnet/src");
    let mut saw_next_event = false;
    let mut saw_next_runnable = false;
    for entry in std::fs::read_dir(&simnet_src).expect("list simnet/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "rs") {
            continue;
        }
        let rel = format!(
            "crates/simnet/src/{}",
            path.file_name().expect("file name").to_string_lossy()
        );
        if ldft_lint::analysis::is_test_path(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read simnet source");
        let analysis = ldft_lint::analysis::FileAnalysis::new(&rel, Some("simnet"), &src);
        for (i, line) in src.lines().enumerate() {
            let n = i + 1;
            if analysis.is_test_line(n) {
                continue;
            }
            let code = line.split("//").next().unwrap_or(line);
            let enclosing = || {
                analysis
                    .enclosing_fn(n)
                    .map(|f| f.name.clone())
                    .unwrap_or_default()
            };
            if code.contains(".events.pop(") {
                assert_eq!(
                    enclosing(),
                    "next_event",
                    "{rel}:{n}: event-queue pop outside Kernel::next_event bypasses SchedulePolicy"
                );
                saw_next_event = true;
            }
            if code.contains(".runnable.pop_front(") || code.contains(".runnable.remove(") {
                assert_eq!(
                    enclosing(),
                    "next_runnable",
                    "{rel}:{n}: runnable-queue pop outside Kernel::next_runnable bypasses SchedulePolicy"
                );
                saw_next_runnable = true;
            }
        }
        // Both seams must actually consult the installed policy.
        for seam in ["next_event", "next_runnable"] {
            if let Some(span) = analysis.fn_spans.iter().find(|f| f.name == seam) {
                let body: String = src
                    .lines()
                    .skip(span.start - 1)
                    .take(span.end - span.start + 1)
                    .collect();
                assert!(
                    body.contains(".choose(") && body.contains("policy"),
                    "{rel}: Kernel::{seam} no longer consults the schedule policy"
                );
            }
        }
    }
    assert!(
        saw_next_event && saw_next_runnable,
        "tie-break seams not found — did the kernel's queue fields move?"
    );
}

//! Self-check: the analyzer run over its own workspace, through the
//! library API. This is the acceptance gate in executable form — the
//! committed tree is finding-free, every IDL operation was actually
//! cross-checked by the wire pass, and the lock graph saw the workspace's
//! `simnet::Shared` use sites.

use ldft_lint::{idl_files, idlparse, run_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

#[test]
fn workspace_is_finding_free() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    let errors: Vec<String> = report.errors().map(|f| f.render()).collect();
    assert!(
        errors.is_empty(),
        "unsuppressed errors:\n{}",
        errors.join("\n")
    );
    let warnings: Vec<String> = report.warnings().map(|f| f.render()).collect();
    assert!(warnings.is_empty(), "warnings:\n{}", warnings.join("\n"));
    // Every suppression carries a reason (A1 would have fired otherwise);
    // keep the count pinned so new allows are a conscious diff.
    assert_eq!(
        report.allowed().count(),
        4,
        "allow inventory changed — re-audit crates/lint/README.md's list"
    );
}

#[test]
fn wire_pass_covers_every_idl_operation() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    // Independent count: parse the contracts directly and sum their ops
    // (attributes expand to `_get_`/`_set_` pseudo-ops on both sides).
    let independent: usize = idl_files(workspace_root())
        .expect("list idl/")
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).expect("read idl");
            idlparse::parse(&p.to_string_lossy(), &src)
                .interfaces
                .iter()
                .map(|i| i.ops.len())
                .sum::<usize>()
        })
        .sum();
    assert_eq!(
        report.wire_ops, independent,
        "wire pass skipped operations the contracts declare"
    );
    assert_eq!(independent, 54, "idl/*.idl op inventory changed");
}

#[test]
fn lock_graph_covers_the_shared_use_sites() {
    let report = run_workspace(workspace_root()).expect("lint the workspace");
    assert!(
        report.lock_sites >= report.lock_classes,
        "sites {} < classes {}",
        report.lock_sites,
        report.lock_classes
    );
    // Pinned coverage: the graph currently sees 27 non-test `Shared`
    // acquisition sites across 7 lock classes in the policed crates. A
    // raw-string `.lock()` count is no substitute (tests drive hundreds
    // of `Arc<Mutex>` harness cells the graph rightly ignores), so the
    // golden numbers document coverage; update them when `Shared` use
    // sites are genuinely added or removed.
    assert_eq!(
        (report.lock_sites, report.lock_classes),
        (27, 7),
        "Shared acquisition inventory changed — confirm the lock graph still sees every new site"
    );
}

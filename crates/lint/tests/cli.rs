//! End-to-end CLI tests: exit codes, diagnostics format, and the gate the
//! CI workflow relies on — `ldft-lint --workspace` must pass on the tree
//! as committed.

use std::path::Path;
use std::process::Command;

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ldft-lint"))
}

/// Stage a fixture outside the repo: the analyzer (correctly) treats any
/// path under a `tests/` directory as test code and exempts it, so the CLI
/// must see the file somewhere neutral.
fn fixture(name: &str) -> String {
    let src = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let dir = std::env::temp_dir().join("ldft-lint-cli-fixtures");
    std::fs::create_dir_all(&dir).expect("mkdir temp fixtures");
    let dst = dir.join(name);
    std::fs::copy(&src, &dst).expect("stage fixture");
    dst.to_string_lossy().into_owned()
}

#[test]
fn bad_fixture_fails_with_exit_code_1() {
    let out = lint()
        .args(["--crate-name", "orb", &fixture("d1_bad.rs")])
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[D1]"), "{stdout}");
    assert!(stdout.contains("d1_bad.rs:4:"), "{stdout}");
}

#[test]
fn clean_fixture_passes_with_exit_code_0() {
    let out = lint()
        .args(["--crate-name", "orb", &fixture("d1_clean.rs")])
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
}

#[test]
fn warnings_alone_do_not_fail_the_run() {
    // allow_clean has one suppressed finding and nothing else.
    let out = lint()
        .args(["--crate-name", "winner", &fixture("allow_clean.rs")])
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 allowed"), "{stdout}");
}

#[test]
fn allow_hygiene_failures_are_fatal() {
    let out = lint()
        .args(["--crate-name", "winner", &fixture("allow_bad.rs")])
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[A1]"), "{stdout}");
}

#[test]
fn list_rules_names_every_rule() {
    let out = lint()
        .arg("--list-rules")
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "D1", "D2", "D3", "D4", "P1", "P2", "P3", "F1", "F2", "F3", "F4", "A1", "A2",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = lint()
        .arg("--frobnicate")
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn workspace_run_is_clean_on_the_committed_tree() {
    // The CI gate, exercised from the test suite: the workspace as
    // committed must lint clean (allowed findings are fine).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = lint()
        .args(["--workspace", "--root"])
        .arg(root)
        .output()
        .expect("spawn ldft-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint failed:\n{stdout}"
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn json_format_reports_findings_and_exit_code() {
    let out = lint()
        .args([
            "--crate-name",
            "orb",
            "--format",
            "json",
            &fixture("d1_bad.rs"),
        ])
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(1), "findings still fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One JSON object, no text diagnostics mixed in.
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"rule\":\"D1\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");
    assert!(stdout.contains("\"allowed\":false"), "{stdout}");
    assert!(!stdout.contains("error[D1]"), "{stdout}");
}

#[test]
fn json_format_workspace_carries_coverage_counters() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = lint()
        .args(["--workspace", "--format", "json", "--root"])
        .arg(root)
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"errors\":0"), "{stdout}");
    assert!(stdout.contains("\"wire_ops\":56"), "{stdout}");
    assert!(stdout.contains("\"lock_sites\":"), "{stdout}");
    assert!(stdout.contains("\"graph_nodes\":"), "{stdout}");
    assert!(stdout.contains("\"remote_sites\":"), "{stdout}");
}

#[test]
fn sarif_format_emits_a_valid_log_shell() {
    let out = lint()
        .args([
            "--format",
            "sarif",
            "--crate-name",
            "orb",
            &fixture("d1_bad.rs"),
        ])
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(1), "findings still gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\":\"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"ldft-lint\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\":\"D1\""), "{stdout}");
    assert!(stdout.contains("\"startLine\":4"), "{stdout}");
}

#[test]
fn graph_out_writes_dot_and_json() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let dir = std::env::temp_dir().join("ldft-lint-cli-graphs");
    std::fs::create_dir_all(&dir).expect("mkdir temp graphs");
    let dot = dir.join("g.dot");
    let json = dir.join("g.json");
    for path in [&dot, &json] {
        let out = lint()
            .args(["--workspace", "--root"])
            .arg(root)
            .arg("--graph-out")
            .arg(path)
            .output()
            .expect("spawn ldft-lint");
        assert_eq!(out.status.code(), Some(0), "{:?}", out);
    }
    let dot_text = std::fs::read_to_string(&dot).expect("read dot");
    assert!(dot_text.starts_with("digraph callgraph"), "{dot_text}");
    assert!(dot_text.contains("cluster_orb"), "{dot_text}");
    let json_text = std::fs::read_to_string(&json).expect("read json");
    assert!(json_text.contains("\"nodes\""), "{json_text}");
    assert!(json_text.contains("\"edges\""), "{json_text}");
    assert!(json_text.contains("\"remote_sites\""), "{json_text}");
}

#[test]
fn bad_format_value_is_a_usage_error() {
    let out = lint()
        .args(["--format", "yaml"])
        .output()
        .expect("spawn ldft-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn text_diagnostics_match_the_problem_matcher_regex() {
    // `.github/problem-matchers/ldft-lint.json` parses
    // `file:line: severity[RULE]: message`; keep the shapes in lockstep.
    let matcher_src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join(".github/problem-matchers/ldft-lint.json"),
    )
    .expect("problem matcher file exists");
    assert!(
        matcher_src.contains("^(.+):(\\\\d+): (error|warning)\\\\[(\\\\w+)\\\\]: (.*)$"),
        "matcher regex drifted:\n{matcher_src}"
    );
    let out = lint()
        .args(["--crate-name", "orb", &fixture("d1_bad.rs")])
        .output()
        .expect("spawn ldft-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let diag = stdout.lines().next().expect("at least one diagnostic");
    // Hand-check the line against the regex's shape.
    let (loc, rest) = diag.split_once(": ").expect("`file:line: ` prefix");
    let (_, line_no) = loc.rsplit_once(':').expect("line number");
    assert!(line_no.chars().all(|c| c.is_ascii_digit()), "{diag}");
    assert!(
        rest.starts_with("error[") || rest.starts_with("warning["),
        "{diag}"
    );
    assert!(rest.contains("]: "), "{diag}");
}

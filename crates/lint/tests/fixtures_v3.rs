//! Fixture tests for the v3 interprocedural rule set: F1 (undeadlined
//! remote invocations), F2 (unbounded or sleepless retry), F3 (swallowed
//! recoverable failures), F4 (unreleased paired resources). Same contract
//! as `fixtures.rs`/`fixtures_v2.rs`: every rule has a deliberately-bad
//! fixture with exact `(rule, line)` hits asserted and a clean
//! counterpart that must not fire. The F rules are interprocedural, so
//! each test builds a call graph over the fixture files with
//! `callgraph::build` and runs `failpath::check` over it — the same two
//! passes `run_workspace` chains.

use ldft_lint::analysis::FileAnalysis;
use ldft_lint::{callgraph, crate_dir_of, failpath};

macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name))
    };
}

/// Run the interprocedural pass over fixture `(path, source)` pairs;
/// returns `(rule, line)` hits in report order.
fn fail_hits(sources: &[(&str, &str)]) -> Vec<(&'static str, usize)> {
    let files: Vec<FileAnalysis> = sources
        .iter()
        .map(|(p, s)| FileAnalysis::new(p, crate_dir_of(p).as_deref(), s))
        .collect();
    let graph = callgraph::build(&files, &[]);
    failpath::check(&files, &graph)
        .iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn f1_undeadlined_remote_invocations() {
    let hits = fail_hits(&[("crates/ft/src/f1_bad.rs", fixture!("f1_bad.rs"))]);
    assert_eq!(hits, vec![("F1", 7), ("F1", 10)]);
    let clean = fail_hits(&[("crates/ft/src/f1_clean.rs", fixture!("f1_clean.rs"))]);
    assert_eq!(clean, vec![]);
}

#[test]
fn f2_unbounded_and_sleepless_retry_loops() {
    let hits = fail_hits(&[("crates/ft/src/f2_bad.rs", fixture!("f2_bad.rs"))]);
    // Line 7: retry loop with no bound in sight. Line 16: bounded, but
    // hammering with zero backoff.
    assert_eq!(hits, vec![("F2", 7), ("F2", 16)]);
    let clean = fail_hits(&[("crates/ft/src/f2_clean.rs", fixture!("f2_clean.rs"))]);
    assert_eq!(clean, vec![]);
}

#[test]
fn f3_swallowed_recoverable_failures() {
    let hits = fail_hits(&[("crates/ft/src/f3_bad.rs", fixture!("f3_bad.rs"))]);
    assert_eq!(hits, vec![("F3", 6)]);
    let clean = fail_hits(&[("crates/ft/src/f3_clean.rs", fixture!("f3_clean.rs"))]);
    assert_eq!(clean, vec![]);
}

#[test]
fn f3_sink_reached_through_a_call_edge() {
    // The arm's only handling is a helper call; the helper forwards to a
    // recognizable sink, so the interprocedural pass must clear it.
    let hits = fail_hits(&[(
        "crates/ft/src/f3_hop.rs",
        concat!(
            "fn record_locally(d: &mut Doctor) {\n",
            " d.note(1);\n",
            "}\n",
            "pub fn routed(r: R, d: &mut Doctor) -> u32 {\n",
            " match r {\n",
            "  Ok(v) => v,\n",
            "  Err(e) if e.is_recoverable() => { forward(d); 0 }\n",
            " }\n",
            "}\n",
            "fn forward(d: &mut Doctor) {\n",
            " record_locally(d);\n",
            "}\n",
        ),
    )]);
    assert_eq!(hits, vec![]);
}

#[test]
fn f4_unreleased_paired_resource() {
    let hits = fail_hits(&[("crates/monitor/src/f4_bad.rs", fixture!("f4_bad.rs"))]);
    // One finding per pair, anchored at the first acquisition.
    assert_eq!(hits, vec![("F4", 4)]);
    let clean = fail_hits(&[("crates/monitor/src/f4_clean.rs", fixture!("f4_clean.rs"))]);
    assert_eq!(clean, vec![]);
}

#[test]
fn f4_release_in_test_code_proves_the_path() {
    // The acquire is production code; the release only appears in a test
    // fn. That is still a release path (the test exercises it), so F4
    // stays quiet — it hunts pairs with NO release anywhere.
    let hits = fail_hits(&[(
        "crates/monitor/src/f4_split.rs",
        concat!(
            "pub fn watch(st: &mut St) {\n",
            " st.subscribe(16);\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            " #[test]\n",
            " fn detaches() {\n",
            "  let mut st = St::new();\n",
            "  st.unsubscribe(1);\n",
            " }\n",
            "}\n",
        ),
    )]);
    assert_eq!(hits, vec![]);
}

//! Fixture tests for the v2 rule set: W1–W4 (wire conformance), L1–L3
//! (lock order over `simnet::Shared`), E1–E2 (exception/epoch hygiene).
//! Same contract as `fixtures.rs`: every rule has a deliberately-bad
//! fixture with exact `(rule, line)` hits asserted and a clean
//! counterpart that must not fire. The L and E rules run through
//! `analyze_source` (they are per-file); the W rules need an IDL contract
//! and a workspace view, so those tests call `wire::check` directly over
//! in-memory `FileAnalysis` values built from the same fixture files.

use ldft_lint::analysis::FileAnalysis;
use ldft_lint::rules::{Severity, WorkspaceIndex};
use ldft_lint::{analyze_source, crate_dir_of, idlparse, wire};

macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name))
    };
}

/// Unsuppressed error hits as `(rule, line)` via the per-file pipeline.
fn errors(label: &str, krate: &str, src: &str) -> Vec<(&'static str, usize)> {
    let index = WorkspaceIndex::stub_only();
    analyze_source(label, Some(krate), src, &index)
        .iter()
        .filter(|f| f.severity == Severity::Error && !f.allowed)
        .map(|f| (f.rule, f.line))
        .collect()
}

/// Run the wire pass over fixture `(path, source)` pairs plus IDL
/// contracts; returns sorted `(rule, file, line)` hits and the op count.
fn wire_errors(
    sources: &[(&str, &str)],
    idls: &[(&str, &str)],
) -> (Vec<(&'static str, String, usize)>, usize) {
    let files: Vec<FileAnalysis> = sources
        .iter()
        .map(|(p, s)| FileAnalysis::new(p, crate_dir_of(p).as_deref(), s))
        .collect();
    let idls: Vec<idlparse::IdlFile> = idls.iter().map(|(p, s)| idlparse::parse(p, s)).collect();
    let report = wire::check(&files, &idls);
    let mut out: Vec<(&'static str, String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.clone(), f.line))
        .collect();
    out.sort();
    (out, report.ops_checked)
}

// ---------------------------------------------------------------------
// E1 / E2 (per-file)
// ---------------------------------------------------------------------

#[test]
fn e1_dropped_recoverable_failures() {
    let hits = errors("crates/ft/src/e1_bad.rs", "ft", fixture!("e1_bad.rs"));
    assert_eq!(hits, vec![("E1", 6), ("E1", 13)]);
    let clean = errors("crates/ft/src/e1_clean.rs", "ft", fixture!("e1_clean.rs"));
    assert_eq!(clean, vec![]);
}

#[test]
fn e2_bare_u64_epochs() {
    let hits = errors("crates/store/src/e2_bad.rs", "store", fixture!("e2_bad.rs"));
    assert_eq!(hits, vec![("E2", 4), ("E2", 8), ("E2", 13)]);
    let clean = errors(
        "crates/store/src/e2_clean.rs",
        "store",
        fixture!("e2_clean.rs"),
    );
    assert_eq!(clean, vec![]);
}

#[test]
fn e2_is_waived_inside_simnet() {
    // simnet sits below cdr and cannot name the newtype.
    let hits = errors(
        "crates/simnet/src/e2_bad.rs",
        "simnet",
        fixture!("e2_bad.rs"),
    );
    assert_eq!(hits, vec![]);
}

// ---------------------------------------------------------------------
// L1 / L2 / L3 (single-file lock graph)
// ---------------------------------------------------------------------

#[test]
fn l1_lock_order_inversion() {
    let hits = errors("crates/ft/src/l1_bad.rs", "ft", fixture!("l1_bad.rs"));
    // Both edges of the cycle are reported, at the second acquisition.
    assert_eq!(hits, vec![("L1", 11), ("L1", 18)]);
    let clean = errors("crates/ft/src/l1_clean.rs", "ft", fixture!("l1_clean.rs"));
    assert_eq!(clean, vec![]);
}

#[test]
fn l2_reentrant_acquisition() {
    let hits = errors("crates/ft/src/l2_bad.rs", "ft", fixture!("l2_bad.rs"));
    assert_eq!(hits, vec![("L2", 10)]);
    let clean = errors("crates/ft/src/l2_clean.rs", "ft", fixture!("l2_clean.rs"));
    assert_eq!(clean, vec![]);
}

#[test]
fn l3_blocking_while_held() {
    let hits = errors("crates/ft/src/l3_bad.rs", "ft", fixture!("l3_bad.rs"));
    assert_eq!(hits, vec![("L3", 10)]);
    // The clean twin also proves `invoke_oneway` is not a blocking call.
    let clean = errors("crates/ft/src/l3_clean.rs", "ft", fixture!("l3_clean.rs"));
    assert_eq!(clean, vec![]);
}

// ---------------------------------------------------------------------
// W1 / W2 / W3 (IDL ↔ stub ↔ skeleton)
// ---------------------------------------------------------------------

#[test]
fn w1_w2_w3_contract_drift() {
    let (hits, ops) = wire_errors(
        &[
            (
                "crates/demo/src/w_server_bad.rs",
                fixture!("w_server_bad.rs"),
            ),
            (
                "crates/demo/src/w_client_bad.rs",
                fixture!("w_client_bad.rs"),
            ),
        ],
        &[("idl/wire.idl", fixture!("wire.idl"))],
    );
    assert_eq!(ops, 4, "all four Calculator ops cross-checked");
    assert_eq!(
        hits,
        vec![
            // missing_arm: no client call site, no dispatch arm.
            ("W1", "idl/wire.idl".to_string(), 7),
            ("W2", "idl/wire.idl".to_string(), 7),
            // client sends (a, b, c) where the IDL declares two in-params.
            ("W3", "crates/demo/src/w_client_bad.rs".to_string(), 4),
            // "bogus" arm handles an op no IDL declares.
            ("W2", "crates/demo/src/w_server_bad.rs".to_string(), 12),
            // server decodes (u32,) where the IDL declares (u32, u32).
            ("W3", "crates/demo/src/w_server_bad.rs".to_string(), 7),
        ]
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect::<Vec<_>>()
    );
}

#[test]
fn w1_w2_w3_clean_triple() {
    let (hits, ops) = wire_errors(
        &[
            (
                "crates/demo/src/w_server_clean.rs",
                fixture!("w_server_clean.rs"),
            ),
            (
                "crates/demo/src/w_client_clean.rs",
                fixture!("w_client_clean.rs"),
            ),
        ],
        &[("idl/wire.idl", fixture!("wire.idl"))],
    );
    assert_eq!(ops, 4);
    assert_eq!(hits, vec![]);
}

#[test]
fn w2_interface_without_any_skeleton() {
    let (hits, ops) = wire_errors(
        &[
            (
                "crates/demo/src/w_server_clean.rs",
                fixture!("w_server_clean.rs"),
            ),
            (
                "crates/demo/src/w_client_clean.rs",
                fixture!("w_client_clean.rs"),
            ),
        ],
        &[
            ("idl/wire.idl", fixture!("wire.idl")),
            ("idl/phantom.idl", fixture!("phantom.idl")),
        ],
    );
    assert_eq!(ops, 5, "phantom's op still counts as checked");
    assert_eq!(hits, vec![("W2", "idl/phantom.idl".to_string(), 2)]);
}

// ---------------------------------------------------------------------
// W4 (CdrWrite/CdrRead symmetry, per file)
// ---------------------------------------------------------------------

#[test]
fn w4_asymmetric_codecs() {
    let (hits, _) = wire_errors(
        &[("crates/monitor/src/w4_bad.rs", fixture!("w4_bad.rs"))],
        &[],
    );
    assert_eq!(
        hits,
        vec![
            // Cmd::Move writes [x, y] but reads [y, x].
            ("W4", "crates/monitor/src/w4_bad.rs".to_string(), 14),
            // Cmd::Stop is encoded but never reconstructed by CdrRead.
            ("W4", "crates/monitor/src/w4_bad.rs".to_string(), 19),
            // Pair emits [a, b] but consumes [b, a].
            ("W4", "crates/monitor/src/w4_bad.rs".to_string(), 40),
        ]
    );
    let (clean, _) = wire_errors(
        &[("crates/monitor/src/w4_clean.rs", fixture!("w4_clean.rs"))],
        &[],
    );
    assert_eq!(clean, vec![]);
}

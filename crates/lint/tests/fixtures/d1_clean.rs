//! Fixture: D1 counterpart — simulated time only. Never compiled.

pub fn nap(ctx: &mut simnet::Ctx) -> simnet::SimResult<()> {
    ctx.sleep(simnet::SimDuration::from_millis(1))
}

pub fn stamp(ctx: &Ctx) -> simnet::SimTime {
    ctx.now()
}

//! Fixture: D3 counterpart — all randomness flows from the seed. Never
//! compiled.

use rand::SeedableRng;

pub fn roll(seed: u64) -> u64 {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    rng.next_u64()
}

//! L3 fixture: blocking call while a guard is live.

struct S {
    state: simnet::Shared<u32>,
}

impl S {
    fn wait_holding(&self, ctx: &mut Ctx) {
        let g = self.state.lock();
        ctx.sleep(SimDuration::from_millis(1));
        drop(g);
    }
}

//! F3 clean: recoverable failures reach a sink, propagate, or retry.
pub fn sunk(r: R, d: &mut Doctor) -> u32 {
    match r {
        Ok(v) => v,
        Err(e) if e.is_recoverable() => {
            d.record_failure();
            0
        }
    }
}
pub fn propagated(r: R) -> Result<u32, E> {
    match r {
        Ok(v) => Ok(v),
        Err(e) if e.is_recoverable() => Err(e),
    }
}

//! F2 fixture: an unbounded retry loop around a remote call, and a
//! bounded one that hammers without backoff.
fn remote(obj: &ObjectRef) {
    obj.invoke_with_timeout(1);
}
pub fn unbounded(obj: &ObjectRef) {
    loop {
        remote(obj);
        if done() {
            break;
        }
    }
}
pub fn hammer(obj: &ObjectRef) {
    let mut attempts = 0;
    loop {
        obj.invoke_with_timeout(1);
        attempts += 1;
        if attempts > 3 {
            break;
        }
    }
}

//! Clean stub: every request tuple matches the IDL in-params.

pub fn drive(obj: &ObjectRef, orb: &mut Orb, ctx: &mut Ctx) {
    let _: f64 = obj.call(orb, ctx, "add", &(1u32, 2u32)).unwrap();
    let _: u64 = obj.call(orb, ctx, "total", &()).unwrap();
    orb.invoke_oneway(ctx, &obj.ior, "reset", Vec::new()).unwrap();
    let _: String = obj.call(orb, ctx, "missing_arm", &("hi",)).unwrap();
}

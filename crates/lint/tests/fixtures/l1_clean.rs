//! L1 counterpart: every path takes `a` before `b`.

struct S {
    a: simnet::Shared<u32>,
    b: simnet::Shared<u32>,
}

impl S {
    fn ab(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        drop(h);
        drop(g);
    }

    fn ab_again(&self) {
        let g = self.a.lock();
        drop(g);
        let h = self.b.lock();
        drop(h);
    }
}

//! Fixture: P3 counterpart — checkpoint after the successful reply. Never
//! compiled.

impl RequestProxy {
    pub fn dispatch(&mut self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Outcome> {
        let reply = self.request.invoke(orb, ctx)?;
        self.checkpoint_after_success(orb, ctx)?;
        Ok(reply)
    }
}

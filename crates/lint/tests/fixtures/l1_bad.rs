//! L1 fixture: two lock classes acquired in opposite orders.

struct S {
    a: simnet::Shared<u32>,
    b: simnet::Shared<u32>,
}

impl S {
    fn ab(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        drop(h);
        drop(g);
    }

    fn ba(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
        drop(h);
        drop(g);
    }
}

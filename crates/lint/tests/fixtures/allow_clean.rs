//! Fixture: a justified allow directive suppressing a real finding. Never
//! compiled.

pub fn justified(v: Option<u32>) -> u32 {
    // ldft-lint: allow(P1, fixture: documented invariant makes this unreachable)
    v.unwrap()
}

//! Fixture: D1 — wall-clock time in sim code. Never compiled.

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

//! F1 clean: the deadline is explicit, local, or the call is oneway.
pub struct C {
    obj: ObjectRef,
}
impl C {
    pub fn timed(&self, orb: &mut Orb) {
        self.obj.invoke_with_timeout(orb);
    }
    pub fn deadline_local(&self, orb: &mut Orb) {
        let deadline = 5;
        self.obj.invoke(orb, deadline);
    }
    pub fn fire_and_forget(&self, orb: &mut Orb) {
        self.obj.invoke_oneway(orb);
    }
}

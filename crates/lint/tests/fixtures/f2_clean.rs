//! F2 clean: bounded retries with backoff; for-loops and breakless
//! daemon pumps are exempt by construction.
fn remote(obj: &ObjectRef) {
    obj.invoke_with_timeout(1);
}
pub fn capped(obj: &ObjectRef) {
    let mut attempts = 0;
    loop {
        remote(obj);
        attempts += 1;
        if attempts > 3 {
            break;
        }
        backoff_sleep();
    }
}
pub fn fixed_rounds(obj: &ObjectRef) {
    for _round in 0..3 {
        remote(obj);
    }
}
pub fn daemon(obj: &ObjectRef) {
    loop {
        remote(obj);
        step();
    }
}

//! Fixture: D4 — OS concurrency outside the kernel. Never compiled.
//! The grouped import below is the form a qualified-path pattern would
//! miss.

use std::sync::{Arc, Mutex};

pub fn cell() -> Arc<Mutex<u32>> {
    Arc::new(Mutex::new(0))
}

pub fn race() {
    std::thread::spawn(|| {});
}

//! Fixture: D3 — ambient, unseeded randomness. Never compiled.

use rand::SeedableRng;

pub fn roll() -> u64 {
    let mut rng = rand::rngs::SmallRng::from_entropy();
    rng.next_u64()
}

pub fn flip() -> bool {
    rand::random()
}

//! Bad skeleton: wrong decode tuple, an undeclared arm, a missing arm.

impl Servant for CalcServant {
    fn dispatch(&mut self, op: &str, body: &[u8]) -> Vec<u8> {
        match op {
            "add" => {
                let (a,): (u32,) = cdr::from_bytes(body).unwrap();
                cdr::to_bytes(&(a as f64))
            }
            "total" => cdr::to_bytes(&self.total),
            "reset" => Vec::new(),
            "bogus" => Vec::new(),
            _ => Vec::new(),
        }
    }
}

//! W4 fixture: asymmetric hand-written CDR impls.

const TAG_MOVE: u8 = 0;
const TAG_STOP: u8 = 1;

pub enum Cmd {
    Move { x: u32, y: u32 },
    Stop { code: u32 },
}

impl CdrWrite for Cmd {
    fn write(&self, enc: &mut CdrEncoder) {
        match self {
            Cmd::Move { x, y } => {
                enc.write_u8(TAG_MOVE);
                x.write(enc);
                y.write(enc);
            }
            Cmd::Stop { code } => {
                enc.write_u8(TAG_STOP);
                code.write(enc);
            }
        }
    }
}

impl CdrRead for Cmd {
    fn read(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        match dec.read_u8()? {
            TAG_MOVE => {
                let y = u32::read(dec)?;
                let x = u32::read(dec)?;
                Ok(Cmd::Move { x, y })
            }
            _ => Ok(Cmd::Stop { code: 0 }),
        }
    }
}

pub struct Pair {
    pub a: u32,
    pub b: u32,
}

impl CdrWrite for Pair {
    fn write(&self, enc: &mut CdrEncoder) {
        self.a.write(enc);
        self.b.write(enc);
    }
}

impl CdrRead for Pair {
    fn read(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        let b = u32::read(dec)?;
        let a = u32::read(dec)?;
        Ok(Pair { a, b })
    }
}

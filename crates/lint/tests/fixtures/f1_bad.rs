//! F1 fixture: remote invocations with no deadline anywhere on the path.
pub struct C {
    obj: ObjectRef,
}
impl C {
    pub fn naked(&self, orb: &mut Orb) {
        self.obj.invoke(orb);
    }
    pub fn also_naked(&self, orb: &mut Orb) {
        self.obj.call(orb, "op", &());
    }
}

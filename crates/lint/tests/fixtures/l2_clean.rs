//! L2 counterpart: the guard is dropped before the second acquisition.

struct S {
    state: simnet::Shared<u32>,
}

impl S {
    fn bump(&self) -> u32 {
        let g = self.state.lock();
        let held = *g;
        drop(g);
        let again = self.state.get();
        held + again
    }
}

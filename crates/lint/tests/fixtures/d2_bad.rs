//! Fixture: D2 — hash-ordered collections. Never compiled.

use std::collections::HashMap;

pub fn count(keys: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for k in keys {
        *m.entry(*k).or_default() += 1;
    }
    m
}

//! Fixture: P1 — panicking calls in library code. Never compiled.

pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn boom() {
    panic!("nope");
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}

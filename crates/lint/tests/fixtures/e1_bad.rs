//! E1 fixture: recoverable CORBA failures caught and dropped.

fn swallow(r: Result<(), Exception>) {
    match r {
        Ok(()) => {}
        Err(e) if e.is_recoverable() => {}
        Err(_) => {}
    }
}

fn swallow_kind(k: SysKind) {
    match k {
        SysKind::CommFailure => (),
        _ => (),
    }
}

//! Fixture: P3 — an FT proxy method that invokes but never saves state.
//! Never compiled.

impl RequestProxy {
    pub fn dispatch(&mut self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Outcome> {
        let reply = self.request.invoke(orb, ctx)?;
        Ok(reply)
    }
}

//! Fixture: D2 counterpart — ordered collections. Never compiled.

use std::collections::BTreeMap;

pub fn count(keys: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for k in keys {
        *m.entry(*k).or_default() += 1;
    }
    m
}

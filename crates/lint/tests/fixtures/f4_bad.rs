//! F4 fixture: a paired resource acquired in production code with no
//! release path anywhere in the workspace.
pub fn watch(st: &mut St) {
    st.subscribe(16);
}
pub fn watch_again(st: &mut St) {
    st.subscribe(4);
}

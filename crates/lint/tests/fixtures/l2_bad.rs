//! L2 fixture: re-entrant acquisition while the guard is live.

struct S {
    state: simnet::Shared<u32>,
}

impl S {
    fn bump(&self) -> u32 {
        let g = self.state.lock();
        let again = self.state.get();
        *g + again
    }
}

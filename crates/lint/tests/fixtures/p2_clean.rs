//! Fixture: P2 counterpart — the COMM_FAILURE channel is observed. Never
//! compiled.

pub fn fire(stub: &WorkerStub, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Result<(), Exception>> {
    stub.obj.invoke(orb, ctx, "solve", &())
}

pub fn fire_logged(stub: &WorkerStub, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<()> {
    if let Err(e) = stub.obj.invoke(orb, ctx, "solve", &())? {
        eprintln!("solve failed: {e}");
    }
    Ok(())
}

pub fn ignores_a_local_result() {
    let _ = "5".parse::<u32>();
}

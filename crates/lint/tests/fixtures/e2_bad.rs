//! E2 fixture: checkpoint epochs crossing boundaries as bare u64.

pub struct Snapshot {
    pub epoch: u64,
    pub state: Vec<u8>,
}

pub fn newest_epoch(object_id: &str) -> u64 {
    let _ = object_id;
    0
}

pub fn replicate(epoch: u64, state: &[u8]) {
    let _ = (epoch, state);
}

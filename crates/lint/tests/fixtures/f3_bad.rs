//! F3 fixture: a recoverable failure caught and then dropped on the
//! floor — no propagation, no retry, no record anyone can observe.
pub fn swallow(r: R) -> u32 {
    match r {
        Ok(v) => v,
        Err(e) if e.is_recoverable() => {
            let fallback = 0;
            fallback
        }
    }
}

//! Fixture: D4 counterpart — the sanctioned shared cell (plain `Arc` for
//! refcounting is also fine). Never compiled.

use std::rc::Rc;

pub fn cell() -> simnet::Shared<u32> {
    simnet::Shared::new(0)
}

pub fn local(v: u32) -> Rc<u32> {
    Rc::new(v)
}

//! Bad stub: the `add` request tuple has three elements, not two.

pub fn drive(obj: &ObjectRef, orb: &mut Orb, ctx: &mut Ctx) {
    let _: f64 = obj.call(orb, ctx, "add", &(1u32, 2u32, 3u32)).unwrap();
    let _: u64 = obj.call(orb, ctx, "total", &()).unwrap();
    orb.invoke_oneway(ctx, &obj.ior, "reset", Vec::new()).unwrap();
}

//! E2 counterpart: boundaries carry `cdr::Epoch`; locals may stay u64.

pub struct Snapshot {
    pub epoch: cdr::Epoch,
    pub stamp_ns: u64,
    pub state: Vec<u8>,
}

pub fn newest_epoch(object_id: &str) -> cdr::Epoch {
    let _ = object_id;
    let raw: u64 = 0;
    cdr::Epoch(raw)
}

pub fn replicate(epoch: cdr::Epoch, state: &[u8]) {
    let _ = (epoch, state);
}

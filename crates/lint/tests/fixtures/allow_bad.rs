//! Fixture: allowlist hygiene failures. Never compiled.

pub fn unjustified(v: Option<u32>) -> u32 {
    // ldft-lint: allow(P1)
    v.unwrap()
}

// ldft-lint: allow(Z9, a reason for a rule that does not exist)
pub fn unknown_rule() {}

// ldft-lint: allow(D2, suppresses nothing on the next line)
pub fn unused_directive() {}

//! Clean skeleton: every op has an arm decoding the declared in-params.

impl Servant for CalcServant {
    fn dispatch(&mut self, op: &str, body: &[u8]) -> Vec<u8> {
        match op {
            "add" => {
                let (a, b): (u32, u32) = cdr::from_bytes(body).unwrap();
                cdr::to_bytes(&((a + b) as f64))
            }
            "total" => cdr::to_bytes(&self.total),
            "reset" => Vec::new(),
            "missing_arm" => {
                let (note,): (String,) = cdr::from_bytes(body).unwrap();
                cdr::to_bytes(&note)
            }
            _ => Vec::new(),
        }
    }
}

//! E1 counterpart: the recoverable arm feeds a retry path or propagates.

fn retry(r: Result<(), Exception>, tries: &mut u32) -> Result<(), Exception> {
    match r {
        Err(e) if e.is_recoverable() => {
            *tries += 1;
            Err(e)
        }
        other => other,
    }
}

//! Fixture: P1 counterpart — errors propagate as values. Never compiled.

pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn must(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

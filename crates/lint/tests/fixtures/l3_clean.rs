//! L3 counterpart: release first; fire-and-forget sends are fine held.

struct S {
    state: simnet::Shared<u32>,
    ior: Ior,
}

impl S {
    fn wait_released(&self, ctx: &mut Ctx) {
        let g = self.state.lock();
        drop(g);
        ctx.sleep(SimDuration::from_millis(1));
    }

    fn send_holding(&self, orb: &mut Orb, ctx: &mut Ctx) {
        let g = self.state.lock();
        orb.invoke_oneway(ctx, &self.ior, "push", Vec::new());
        drop(g);
    }
}

//! F4 clean: every acquire has a release counterpart somewhere (a test
//! proving the path exists is enough).
pub fn watch(st: &mut St) {
    st.subscribe(16);
}
pub fn unwatch(st: &mut St, id: u32) {
    st.unsubscribe(id);
}

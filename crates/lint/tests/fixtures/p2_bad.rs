//! Fixture: P2 — a remote-invocation result thrown away. Never compiled.

pub fn fire_and_forget(stub: &WorkerStub, orb: &mut Orb, ctx: &mut Ctx) {
    let _ = stub.obj.invoke(orb, ctx, "solve", &());
}

pub fn multiline_discard(stub: &WorkerStub, orb: &mut Orb, ctx: &mut Ctx) {
    let _ = stub
        .obj
        .call(orb, ctx, "ping", &());
}

//! Fixture tests: every rule has one deliberately-bad fixture (exact hits
//! asserted — rule ID *and* line) and one clean counterpart that must not
//! fire. The fixtures live under `tests/fixtures/` and are analyzed as
//! in-memory sources with a synthetic crate assignment; they are never
//! compiled, and the workspace walker skips `fixtures` directories so the
//! `--workspace` run stays clean.

use ldft_lint::analyze_source;
use ldft_lint::rules::{Finding, Severity, WorkspaceIndex};

/// Unsuppressed error hits as `(rule, line)`, sorted by the analyzer.
fn errors(label: &str, krate: &str, src: &str) -> Vec<(&'static str, usize)> {
    findings(label, krate, src)
        .iter()
        .filter(|f| f.severity == Severity::Error && !f.allowed)
        .map(|f| (f.rule, f.line))
        .collect()
}

fn findings(label: &str, krate: &str, src: &str) -> Vec<Finding> {
    let index = WorkspaceIndex::stub_only();
    analyze_source(label, Some(krate), src, &index)
}

macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name))
    };
}

#[test]
fn d1_wall_clock_time() {
    // Line 3 hits too: the return type names std::time::SystemTime.
    let hits = errors("crates/orb/src/d1_bad.rs", "orb", fixture!("d1_bad.rs"));
    assert_eq!(hits, vec![("D1", 3), ("D1", 4), ("D1", 8)]);
    let clean = errors("crates/orb/src/d1_clean.rs", "orb", fixture!("d1_clean.rs"));
    assert_eq!(clean, vec![]);
}

#[test]
fn d2_hash_collections() {
    let hits = errors(
        "crates/naming/src/d2_bad.rs",
        "naming",
        fixture!("d2_bad.rs"),
    );
    assert_eq!(hits, vec![("D2", 3), ("D2", 5), ("D2", 6)]);
    let clean = errors(
        "crates/naming/src/d2_clean.rs",
        "naming",
        fixture!("d2_clean.rs"),
    );
    assert_eq!(clean, vec![]);
}

#[test]
fn d3_ambient_rng() {
    let hits = errors(
        "crates/winner/src/d3_bad.rs",
        "winner",
        fixture!("d3_bad.rs"),
    );
    assert_eq!(hits, vec![("D3", 6), ("D3", 11)]);
    let clean = errors(
        "crates/winner/src/d3_clean.rs",
        "winner",
        fixture!("d3_clean.rs"),
    );
    assert_eq!(clean, vec![]);
}

#[test]
fn d4_os_concurrency() {
    let hits = errors("crates/core/src/d4_bad.rs", "core", fixture!("d4_bad.rs"));
    assert_eq!(hits, vec![("D4", 5), ("D4", 7), ("D4", 8), ("D4", 12)]);
    let clean = errors(
        "crates/core/src/d4_clean.rs",
        "core",
        fixture!("d4_clean.rs"),
    );
    assert_eq!(clean, vec![]);
}

#[test]
fn d4_is_waived_inside_the_kernel_crate() {
    // The same OS-concurrency source is legal in simnet, which implements
    // the scheduler the rule exists to protect.
    let hits = errors(
        "crates/simnet/src/d4_bad.rs",
        "simnet",
        fixture!("d4_bad.rs"),
    );
    assert_eq!(hits, vec![]);
}

#[test]
fn p1_panicking_calls() {
    let hits = errors("crates/ft/src/p1_bad.rs", "ft", fixture!("p1_bad.rs"));
    assert_eq!(hits, vec![("P1", 4), ("P1", 8), ("P1", 12)]);
    let clean = errors("crates/ft/src/p1_clean.rs", "ft", fixture!("p1_clean.rs"));
    assert_eq!(clean, vec![]);
}

#[test]
fn p2_discarded_invocation_results() {
    let hits = errors("crates/core/src/p2_bad.rs", "core", fixture!("p2_bad.rs"));
    assert_eq!(hits, vec![("P2", 4), ("P2", 8)]);
    let clean = errors(
        "crates/core/src/p2_clean.rs",
        "core",
        fixture!("p2_clean.rs"),
    );
    assert_eq!(clean, vec![]);
}

#[test]
fn p3_proxy_checkpoint_after_success() {
    let hits = errors(
        "crates/ft/src/p3_bad_proxy.rs",
        "ft",
        fixture!("p3_bad_proxy.rs"),
    );
    assert_eq!(hits, vec![("P3", 6)]);
    let clean = errors(
        "crates/ft/src/p3_clean_proxy.rs",
        "ft",
        fixture!("p3_clean_proxy.rs"),
    );
    assert_eq!(clean, vec![]);
}

#[test]
fn p3_only_applies_to_proxy_files() {
    // The identical unrepaired source outside a proxy file is not P3's
    // business (it has no other violations either).
    let hits = errors(
        "crates/ft/src/p3_elsewhere.rs",
        "ft",
        fixture!("p3_bad_proxy.rs"),
    );
    assert_eq!(hits, vec![]);
}

#[test]
fn allow_hygiene_a1_and_a2() {
    let all = findings(
        "crates/winner/src/allow_bad.rs",
        "winner",
        fixture!("allow_bad.rs"),
    );
    let errs: Vec<(&str, usize)> = all
        .iter()
        .filter(|f| f.severity == Severity::Error && !f.allowed)
        .map(|f| (f.rule, f.line))
        .collect();
    // A1 twice: the reason-less directive and the unknown-rule directive.
    assert_eq!(errs, vec![("A1", 4), ("A1", 8)]);
    let warns: Vec<(&str, usize)> = all
        .iter()
        .filter(|f| f.severity == Severity::Warning)
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(warns, vec![("A2", 11)]);
    // The reason-less directive still suppresses its finding — the A1 is
    // what fails the run.
    let suppressed: Vec<(&str, usize)> = all
        .iter()
        .filter(|f| f.allowed)
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(suppressed, vec![("P1", 5)]);
}

#[test]
fn justified_allow_suppresses_cleanly() {
    let all = findings(
        "crates/winner/src/allow_clean.rs",
        "winner",
        fixture!("allow_clean.rs"),
    );
    assert!(
        all.iter()
            .all(|f| f.allowed && f.rule == "P1" && f.allow_reason.is_some()),
        "{all:?}"
    );
    assert_eq!(all.len(), 1);
}

#[test]
fn fixtures_are_inert_outside_sim_crates() {
    // The same bad sources assigned to an out-of-scope crate produce
    // nothing: the rules police the simulation, not host tooling.
    assert_eq!(
        errors("crates/cdr/src/x.rs", "cdr", fixture!("d2_bad.rs")),
        vec![]
    );
    assert_eq!(
        errors("crates/idl/src/x.rs", "idl", fixture!("p1_bad.rs")),
        vec![]
    );
}

//! Offline shim for the parts of `criterion` this workspace's benches use.
//!
//! The build container cannot reach crates.io; this keeps `cargo bench`
//! functional with a simple measure-and-print harness (median of a small
//! fixed sample, no statistics, no HTML reports). Wall-clock time is fine
//! here: benches measure the host machine, not the simulation — they are
//! deliberately outside `ldft-lint`'s determinism scope.

use std::time::{Duration, Instant};

/// Re-export for convenience parity with the real crate.
pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration workload (printed, not analyzed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<String>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-iteration workload annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal-scaled.
    BytesDecimal(u64),
}

/// How `iter_batched` amortizes setup.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibrate: run once to size the per-sample iteration count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (budget.as_nanos() / samples.max(1) as u128).max(1);
    let iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let ns_per_iter = best.as_nanos() as f64 / iters as f64;
    println!("{id:<48} {ns_per_iter:>14.1} ns/iter  (best of {samples}, {iters} iters/sample)");
}

/// Group benchmarks into a callable set.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline shim for the parts of `criterion` this workspace's benches use.
//!
//! The build container cannot reach crates.io; this keeps `cargo bench`
//! functional with a simple measure-and-print harness (median of a small
//! fixed sample, no statistics, no HTML reports). Wall-clock time is fine
//! here: benches measure the host machine, not the simulation — they are
//! deliberately outside `ldft-lint`'s determinism scope.
//!
//! Beyond printing, every measurement is collected in a process-global
//! registry so the results can flow into the repo's standardized
//! `BENCH_*.json` schema: set `CRITERION_BENCH_OUT=/path.json` and the
//! `criterion_main!`-generated `main` writes all measurements there as a
//! schema-version-1 report (micro records, wall fields only) on exit.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export for convenience parity with the real crate.
pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, self.measurement_time, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration workload (printed, not analyzed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<String>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-iteration workload annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal-scaled.
    BytesDecimal(u64),
}

/// How `iter_batched` amortizes setup.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibrate: run once to size the per-sample iteration count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (budget.as_nanos() / samples.max(1) as u128).max(1);
    let iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let ns_per_iter = best.as_nanos() as f64 / iters as f64;
    println!("{id:<48} {ns_per_iter:>14.1} ns/iter  (best of {samples}, {iters} iters/sample)");
    record_measurement(id, ns_per_iter);
}

/// Every measurement taken by this process, in run order.
static MEASUREMENTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn record_measurement(id: &str, ns_per_iter: f64) {
    MEASUREMENTS
        .lock()
        .expect("measurement registry")
        .push((id.to_string(), ns_per_iter));
}

/// Render every measurement taken so far as a `BENCH_*.json` report —
/// the same schema (version 1) the `perf` suite emits, with each bench a
/// `micro` record: `wall_ns` is the per-iteration time, throughput its
/// reciprocal, and the virtual-time fields zero (criterion benches run on
/// the host clock, not the simulation's).
pub fn render_bench_json(suite: &str) -> String {
    let measurements = MEASUREMENTS.lock().expect("measurement registry");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", suite.replace('"', "'")));
    out.push_str("  \"scale\": 1,\n");
    out.push_str("  \"seed\": 0,\n");
    out.push_str("  \"benches\": [\n");
    for (i, (name, ns)) in measurements.iter().enumerate() {
        let wall_ns = ns.round().max(1.0) as u64;
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"name\": \"{}\",\n",
            name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        out.push_str("      \"kind\": \"micro\",\n");
        out.push_str(&format!("      \"wall_ns\": {wall_ns},\n"));
        out.push_str("      \"virtual_ns\": 0,\n");
        out.push_str(&format!(
            "      \"throughput_ops_s\": {},\n",
            1e9 / wall_ns as f64
        ));
        out.push_str("      \"p50_ns\": 0,\n");
        out.push_str("      \"p95_ns\": 0,\n");
        out.push_str("      \"p99_ns\": 0,\n");
        out.push_str("      \"wasted_work_ppm\": 0\n");
        out.push_str(if i + 1 == measurements.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the collected measurements to the path in `CRITERION_BENCH_OUT`,
/// if set. Called by the `criterion_main!` expansion; harmless to call
/// again (later writes include earlier measurements).
pub fn write_bench_out(suite: &str) {
    if let Ok(path) = std::env::var("CRITERION_BENCH_OUT") {
        if path.is_empty() {
            return;
        }
        match std::fs::write(&path, render_bench_json(suite)) {
            Ok(()) => eprintln!("wrote bench json to {path}"),
            Err(e) => {
                eprintln!("failed to write bench json to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Group benchmarks into a callable set.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups, then flushing the collected
/// measurements to `CRITERION_BENCH_OUT` (when set) in the repo's
/// `BENCH_*.json` schema, under the bench binary's name as the suite.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_bench_out(env!("CARGO_CRATE_NAME"));
        }
    };
}

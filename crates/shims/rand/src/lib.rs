//! Offline shim for the parts of `rand` 0.9 this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a deterministic, dependency-free implementation of exactly the
//! surface the simulation needs: `SmallRng` (xoshiro256++ seeded via
//! SplitMix64), `SeedableRng::seed_from_u64`, `Rng::{random,
//! random_range, random_bool}`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! **Intentionally absent:** `rng()`, `thread_rng()`, `from_os_rng`,
//! `from_entropy` — every generator in this repository must be explicitly
//! seeded (lint rule D3 enforces this at the call-site level; the shim
//! enforces it at the API level by simply not providing ambient entropy).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding — only the deterministic entry point is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion, as the
    /// real crate documents for its small generators).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniformly distributed value of `T` (full range for integers,
    /// `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Types that can be sampled uniformly from their whole domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = u128::sample(rng) % width;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if width == 0 {
                    // Full-domain u128 request; fall back to raw bits.
                    return u128::sample(rng) as $t;
                }
                let draw = u128::sample(rng) % width;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator — xoshiro256++.
    ///
    /// Not the bit-identical stream of the real crate's `SmallRng` (which
    /// documents its algorithm as unstable across versions anyway), but
    /// the same family, and fully reproducible from a seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's reference code.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g: f64 = r.random_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&g));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: i64 = r.random_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}

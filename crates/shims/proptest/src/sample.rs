//! Index sampling (`prop::sample::Index`).

/// An abstract index: resolved against a concrete collection length with
/// [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wrap raw bits (used by `any::<Index>()`).
    pub fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolve against a collection of `len` elements (`len` must be
    /// nonzero, as in the real crate).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

//! `any::<T>()` — strategies from a type alone.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix raw bits with small/boundary values so edge cases
                // show up quickly in short runs.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u64() % 10 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MIN_POSITIVE,
            6 => f64::EPSILON,
            // Finite values spanning many magnitudes.
            _ => {
                let unit = rng.unit_f64() - 0.5;
                let exp = (rng.next_u64() % 61) as i32 - 30;
                unit * (2f64).powi(exp)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::string::printable_char(rng)
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

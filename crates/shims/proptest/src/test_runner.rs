//! Deterministic RNG and per-test configuration.

/// How many cases a `proptest!` test runs, etc.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 — deterministic, seeded from the test's name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

//! The small string-pattern language used by this workspace's tests.
//!
//! Supports exactly what the test files write: the printable-character
//! class `\PC`, bracket classes with ranges and escapes (`[a-zA-Z0-9./\\
//! _-]`), literal characters, and the quantifiers `*`, `+`, `{m}` and
//! `{m,n}`. Not a regex engine.

use crate::test_runner::TestRng;

/// A sampling of printable characters: mostly ASCII, some multibyte so
/// UTF-8 handling gets exercised.
const EXTRA_PRINTABLE: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '✓', '🦀'];

/// A printable character (ASCII graphic + space, occasionally beyond).
pub fn printable_char(rng: &mut TestRng) -> char {
    if rng.next_u64() % 8 == 0 {
        EXTRA_PRINTABLE[(rng.next_u64() % EXTRA_PRINTABLE.len() as u64) as usize]
    } else {
        char::from(0x20 + (rng.next_u64() % 0x5F) as u8) // ' ' ..= '~'
    }
}

enum Class {
    Printable,
    Literal(char),
    /// Flattened set of allowed characters.
    Set(Vec<char>),
}

struct Unit {
    class: Class,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Unit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '\\' => {
                let next = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                if next == 'P' && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Class::Printable
                } else {
                    i += 2;
                    Class::Literal(next)
                }
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    if c == '\\' {
                        set.push(chars[i + 1]);
                        i += 2;
                    } else if chars.get(i + 1) == Some(&'-')
                        && chars.get(i + 2).is_some_and(|&e| e != ']')
                    {
                        let end = chars[i + 2];
                        assert!(c <= end, "bad range {c}-{end} in pattern {pattern:?}");
                        for v in c as u32..=end as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // skip ']'
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                Class::Set(set)
            }
            c => {
                i += 1;
                Class::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 32)
            }
            Some('+') => {
                i += 1;
                (1, 32)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        units.push(Unit { class, min, max });
    }
    units
}

fn draw(class: &Class, rng: &mut TestRng) -> char {
    match class {
        Class::Printable => printable_char(rng),
        Class::Literal(c) => *c,
        Class::Set(set) => set[(rng.next_u64() % set.len() as u64) as usize],
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for unit in parse(pattern) {
        let n = rng.in_range(unit.min, unit.max);
        for _ in 0..n {
            out.push(draw(&unit.class, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_quantifiers() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = generate("[a-z]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let s = generate("[a-zA-Z0-9./\\\\ _-]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric()
                        || ['.', '/', '\\', ' ', '_', '-'].contains(&c)),
                "{s:?}"
            );

            let s = generate("\\PC{0,8}", &mut rng);
            assert!(s.chars().count() <= 8);

            let s = generate("id_[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(s.starts_with("id_"), "{s:?}");
        }
    }

    #[test]
    fn star_and_plus() {
        let mut rng = TestRng::from_seed(2);
        let mut saw_empty = false;
        for _ in 0..300 {
            let s = generate("\\PC*", &mut rng);
            saw_empty |= s.is_empty();
            assert!(s.chars().count() <= 32);
            let t = generate("[ab]+", &mut rng);
            assert!(!t.is_empty());
        }
        assert!(saw_empty, "star should sometimes produce empty strings");
    }
}

//! Offline shim for the parts of `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so the property tests run
//! on this deterministic mini-engine instead of the real crate. The API
//! subset (everything the `tests/proptests.rs` files call) behaves the
//! same way; what differs from real proptest:
//!
//! * generation is **deterministic**: the seed is derived from the test
//!   function's name, so every run explores the identical case sequence —
//!   a feature here, since this workspace's whole premise is reproducible
//!   runs;
//! * there is **no shrinking**: a failing case panics with the values
//!   that produced it via ordinary `assert!` messages;
//! * string "regex" strategies implement the small pattern language the
//!   tests use (`\PC`, character classes, `{m,n}`/`*`/`+` quantifiers),
//!   not full regex.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The crate itself under the conventional `prop` alias
    /// (`prop::sample::Index`, …).
    pub use crate as prop;
}

/// Assert inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declare property tests. Each `name in strategy` parameter is drawn
/// freshly per case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

//! The `Strategy` trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (regenerating otherwise).
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build recursive structures: each level is either the base strategy
    /// or one application of `recurse` to the level below, up to `depth`
    /// applications.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            level = Union::new(vec![base.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erase (cheap to clone: reference counted).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` result.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` result.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- ranges as strategies -------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % width;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = ((end as i128).wrapping_sub(start as i128) as u128).wrapping_add(1);
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % width;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---- string patterns ------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

//! Property tests for the simulation kernel: work conservation under
//! processor sharing, determinism of arbitrary programs, and timing
//! linearity.

use proptest::prelude::*;
use simnet::{Addr, HostConfig, Kernel, Port, SimDuration};
use std::sync::{Arc, Mutex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Work conservation: on a single host, with jobs that all start at
    /// t=0, the last completion happens exactly when the CPU has delivered
    /// the total work — processor sharing never wastes capacity while work
    /// remains.
    #[test]
    fn processor_sharing_conserves_work(
        works in proptest::collection::vec(0.01f64..2.0, 1..6),
        speed in 0.5f64..4.0,
    ) {
        let mut sim = Kernel::with_seed(1);
        let h = sim.add_host(HostConfig::new("h").speed(speed));
        let done: Arc<Mutex<Vec<(f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let total: f64 = works.iter().sum();
        for (i, w) in works.iter().cloned().enumerate() {
            let d = done.clone();
            sim.spawn(h, format!("j{i}"), move |ctx| {
                ctx.compute(w).unwrap();
                d.lock().unwrap().push((w, ctx.now().as_secs_f64()));
            });
        }
        sim.run_until_idle();
        let finished = done.lock().unwrap().clone();
        prop_assert_eq!(finished.len(), works.len());
        let last = finished.iter().map(|(_, t)| *t).fold(0.0, f64::max);
        let expected = total / speed;
        // Completion is detected when ≤ WORK_EPS (1e-6) work units remain,
        // so every finish time can be early by up to n·WORK_EPS/speed.
        let eps = 1e-6 * works.len() as f64 / speed + 1e-9;
        prop_assert!(
            (last - expected).abs() < eps + 1e-6 * expected,
            "last completion {} vs total work {}", last, expected
        );
        // No job can finish before its own fair share of the CPU.
        for (w, t) in &finished {
            prop_assert!(*t + eps >= w / speed, "job finished too early");
        }
    }

    /// Sleep durations compose exactly (integer-nanosecond clock).
    #[test]
    fn sleeps_compose_exactly(durs in proptest::collection::vec(1u64..1_000_000, 1..20)) {
        let mut sim = Kernel::with_seed(1);
        let h = sim.add_host(HostConfig::new("h"));
        let total: u64 = durs.iter().sum();
        let out: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
        let o = out.clone();
        sim.spawn(h, "sleeper", move |ctx| {
            for d in durs {
                ctx.sleep(SimDuration::from_nanos(d)).unwrap();
            }
            *o.lock().unwrap() = ctx.now().as_nanos();
        });
        sim.run_until_idle();
        prop_assert_eq!(*out.lock().unwrap(), total);
    }

    /// Arbitrary message programs are deterministic: the same seed gives
    /// the identical trace, twice.
    #[test]
    fn arbitrary_programs_are_deterministic(
        seed in 0u64..1000,
        plan in proptest::collection::vec((0usize..4, 1u64..50_000, 1usize..128), 1..24),
    ) {
        fn run(seed: u64, plan: &[(usize, u64, usize)]) -> Vec<(u64, usize)> {
            let mut sim = Kernel::with_seed(seed);
            let hosts = sim.add_hosts(4);
            // One echo server per host.
            for &hst in &hosts {
                sim.spawn(hst, "echo", move |ctx| {
                    ctx.bind_port_exact(Port(9)).unwrap().unwrap();
                    loop {
                        let Ok(m) = ctx.recv() else { return };
                        let data = m.data().unwrap().to_vec();
                        if ctx.send(Addr::Pid(m.from), data).is_err() {
                            return;
                        }
                    }
                });
            }
            let trace: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
            let t = trace.clone();
            let plan = plan.to_vec();
            let driver = sim.spawn(hosts[0], "driver", move |ctx| {
                for (target, sleep_ns, size) in plan {
                    ctx.sleep(SimDuration::from_nanos(sleep_ns)).unwrap();
                    ctx.send(Addr::Endpoint(hosts[target], Port(9)), vec![7; size])
                        .unwrap();
                    let reply = ctx.recv().unwrap();
                    t.lock()
                        .unwrap()
                        .push((ctx.now().as_nanos(), reply.data().unwrap().len()));
                }
            });
            sim.run_until_exit(driver);
            let v = trace.lock().unwrap().clone();
            v
        }
        let a = run(seed, &plan);
        let b = run(seed, &plan);
        prop_assert_eq!(a, b);
    }

    /// Message latency is monotone in payload size (bandwidth model).
    #[test]
    fn latency_monotone_in_size(small in 1usize..1000, extra in 1usize..100_000) {
        fn rtt(size: usize) -> u64 {
            let mut sim = Kernel::with_seed(1);
            let hosts = sim.add_hosts(2);
            sim.spawn(hosts[1], "echo", move |ctx| {
                ctx.bind_port_exact(Port(9)).unwrap().unwrap();
                let m = ctx.recv().unwrap();
                ctx.send(Addr::Pid(m.from), vec![1]).unwrap();
            });
            let out: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
            let o = out.clone();
            let driver = sim.spawn(hosts[0], "driver", move |ctx| {
                ctx.send(Addr::Endpoint(hosts[1], Port(9)), vec![0; size])
                    .unwrap();
                ctx.recv().unwrap();
                *o.lock().unwrap() = ctx.now().as_nanos();
            });
            sim.run_until_exit(driver);
            let v = *out.lock().unwrap();
            v
        }
        prop_assert!(rtt(small) <= rtt(small + extra));
    }
}

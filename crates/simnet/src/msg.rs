//! Messages exchanged between simulated processes.

use crate::ids::{Addr, HostId, Pid, Port};

/// A message as seen by a receiving process.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Sending process.
    pub from: Pid,
    /// Host the sender was running on when the message was sent.
    pub from_host: HostId,
    /// Destination the sender addressed (useful when one process listens on
    /// several ports).
    pub to: Addr,
    /// Payload.
    pub payload: Payload,
}

/// Message payload.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Application bytes.
    Data(Vec<u8>),
    /// Connection-reset notification: a previous send to `(host, port)` was
    /// addressed to a port with no listener (the host was up). This is the
    /// simulated analogue of a TCP RST and is what lets an ORB client raise
    /// `COMM_FAILURE` quickly when a server process has died.
    Rst { host: HostId, port: Port },
}

impl Msg {
    /// The application bytes, if this is a data message.
    pub fn data(&self) -> Option<&[u8]> {
        match &self.payload {
            Payload::Data(d) => Some(d),
            Payload::Rst { .. } => None,
        }
    }

    /// Whether this is a reset notification for the given endpoint.
    pub fn is_rst_for(&self, host: HostId, port: Port) -> bool {
        matches!(self.payload, Payload::Rst { host: h, port: p } if h == host && p == port)
    }

    /// Number of payload bytes (0 for RSTs); used by the network model for
    /// transfer-time computation.
    pub fn wire_size(&self) -> usize {
        match &self.payload {
            Payload::Data(d) => d.len(),
            Payload::Rst { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(payload: Payload) -> Msg {
        Msg {
            from: Pid(1),
            from_host: HostId(0),
            to: Addr::Endpoint(HostId(1), Port(5)),
            payload,
        }
    }

    #[test]
    fn data_accessor() {
        let m = mk(Payload::Data(vec![1, 2, 3]));
        assert_eq!(m.data(), Some(&[1u8, 2, 3][..]));
        assert_eq!(m.wire_size(), 3);
        assert!(!m.is_rst_for(HostId(1), Port(5)));
    }

    #[test]
    fn rst_accessor() {
        let m = mk(Payload::Rst {
            host: HostId(1),
            port: Port(5),
        });
        assert_eq!(m.data(), None);
        assert!(m.is_rst_for(HostId(1), Port(5)));
        assert!(!m.is_rst_for(HostId(1), Port(6)));
        assert_eq!(m.wire_size(), 0);
    }
}

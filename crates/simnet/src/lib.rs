//! # simnet — a deterministic simulated network of workstations
//!
//! `simnet` is the substrate on which this repository reproduces the IPPS
//! 2000 paper *"CORBA Based Runtime Support for Load Distribution and Fault
//! Tolerance"*. The paper's experiments ran on a NOW (network of
//! workstations) of 10 Unix machines; `simnet` provides the equivalent
//! environment as a deterministic discrete-event simulation:
//!
//! * **Hosts** with a single CPU each, shared among runnable jobs by
//!   processor sharing — a worker co-located with a background load process
//!   runs at half speed, which is exactly the physics behind the paper's
//!   Figure 3.
//! * **Processes** written in plain blocking style (each is an OS thread the
//!   kernel resumes one at a time): `sleep`, `compute`, `send`, `recv`.
//! * **A LAN** with latency and bandwidth, port-addressed endpoints, RSTs
//!   for connections to dead servers, and partitions.
//! * **Fault injection**: process kills, host crashes and restarts.
//! * **Load metrics** per host (runnable count, load average, utilization)
//!   — the data the Winner node managers sample.
//!
//! # Example
//!
//! ```
//! use simnet::{Kernel, HostConfig, SimDuration, Addr};
//!
//! let mut sim = Kernel::with_seed(42);
//! let a = sim.add_host(HostConfig::new("alice"));
//! let b = sim.add_host(HostConfig::new("bob"));
//!
//! sim.spawn(b, "server", move |ctx| {
//!     let port = ctx.bind_port_exact(simnet::Port(5000)).unwrap().unwrap();
//!     let msg = ctx.recv().unwrap();
//!     ctx.send(Addr::Pid(msg.from), b"pong".to_vec()).unwrap();
//!     let _ = port;
//! });
//! sim.spawn(a, "client", move |ctx| {
//!     ctx.sleep(SimDuration::from_millis(1)).unwrap(); // let server bind
//!     ctx.send(Addr::Endpoint(b, simnet::Port(5000)), b"ping".to_vec()).unwrap();
//!     let reply = ctx.recv().unwrap();
//!     assert_eq!(reply.data(), Some(&b"pong"[..]));
//! });
//! sim.run_until_idle();
//! ```

mod cpu;
mod ids;
mod kernel;
mod msg;
mod process;
mod shared;
mod time;

pub use cpu::{HostConfig, HostSnapshot};
pub use ids::{Addr, HostId, Pid, Port};
pub use kernel::{
    ChoiceCandidate, ChoiceKind, EventHook, Fault, Kernel, KernelConfig, KernelEvent,
    KernelProfile, KernelStats, NetConfig, ProcCpu, ProfileHook, ProfileMark, SchedulePolicy,
    Tracer,
};
pub use msg::{Msg, Payload};
pub use process::{Ctx, Killed, ProcessBody, SimResult};
pub use shared::Shared;
pub use time::{SimDuration, SimTime};

#[cfg(test)]
mod kernel_tests;

//! The process-side view of the simulation: the [`Ctx`] handle and the
//! syscall/resume protocol between process threads and the kernel.
//!
//! Every simulated process runs on its own OS thread, but the kernel only
//! ever lets **one** process execute at a time: a process runs from one
//! blocking syscall to the next, then hands control back. This gives
//! deterministic execution while letting application code (ORB server
//! loops, optimization workers, ...) be written in ordinary direct style.

use std::fmt;
use std::sync::mpsc::{Receiver, Sender};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::cpu::HostSnapshot;
use crate::ids::{Addr, HostId, Pid, Port};
use crate::msg::Msg;
use crate::time::{SimDuration, SimTime};

/// The body of a simulated process.
pub type ProcessBody = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// Error returned from every blocking operation of a process that has been
/// killed (or whose host has crashed, or whose kernel has shut down).
///
/// Application code should propagate this upward with `?`; the process
/// thread then unwinds cleanly and the kernel reaps it. This mirrors how a
/// Unix process sees `EINTR`/`SIGKILL`-adjacent conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Killed;

impl fmt::Display for Killed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("process killed")
    }
}

impl std::error::Error for Killed {}

/// Result of a simulation syscall.
pub type SimResult<T> = Result<T, Killed>;

/// Requests a process makes to the kernel.
pub(crate) enum Syscall {
    Sleep(SimDuration),
    /// Consume CPU work units on this process's host.
    /// `f64::INFINITY` spins forever (background load).
    Compute(f64),
    Send {
        to: Addr,
        data: Vec<u8>,
    },
    Recv {
        timeout: Option<SimDuration>,
    },
    TryRecv,
    BindPort,
    BindPortExact(Port),
    UnbindPort(Port),
    Spawn {
        host: HostId,
        name: String,
        body: ProcessBody,
    },
    Kill(Pid),
    CrashHost(HostId),
    RestartHost(HostId),
    HostInfo(HostId),
    Partition {
        a: HostId,
        b: HostId,
        blocked: bool,
    },
    Exit,
    /// The process body panicked (a bug, not a kill): the kernel re-raises
    /// this on the main thread to fail fast.
    Panicked(String),
}

impl fmt::Debug for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Syscall::Sleep(_) => "Sleep",
            Syscall::Compute(_) => "Compute",
            Syscall::Send { .. } => "Send",
            Syscall::Recv { .. } => "Recv",
            Syscall::TryRecv => "TryRecv",
            Syscall::BindPort => "BindPort",
            Syscall::BindPortExact(_) => "BindPortExact",
            Syscall::UnbindPort(_) => "UnbindPort",
            Syscall::Spawn { .. } => "Spawn",
            Syscall::Kill(_) => "Kill",
            Syscall::CrashHost(_) => "CrashHost",
            Syscall::RestartHost(_) => "RestartHost",
            Syscall::HostInfo(_) => "HostInfo",
            Syscall::Partition { .. } => "Partition",
            Syscall::Exit => "Exit",
            Syscall::Panicked(_) => "Panicked",
        };
        f.write_str(name)
    }
}

/// Kernel replies that resume a blocked process.
#[derive(Debug)]
pub(crate) enum Resume {
    /// First resume: start executing the body.
    Start { now: SimTime },
    /// A sleep or compute finished.
    Done { now: SimTime },
    /// A message arrived (reply to `Recv`/`TryRecv`).
    Msg { now: SimTime, msg: Msg },
    /// `Recv` timed out, or `TryRecv` found the mailbox empty.
    Empty { now: SimTime },
    /// Reply carrying a port.
    PortV { now: SimTime, port: Option<Port> },
    /// Reply carrying a pid (spawn).
    PidV { now: SimTime, pid: Pid },
    /// Reply carrying host info.
    Host {
        now: SimTime,
        snap: Option<HostSnapshot>,
    },
    /// Generic acknowledgement of an immediate syscall.
    Ok { now: SimTime },
    /// The process has been killed; all further syscalls fail too.
    Killed,
}

impl Resume {
    fn now(&self) -> Option<SimTime> {
        match self {
            Resume::Start { now }
            | Resume::Done { now }
            | Resume::Msg { now, .. }
            | Resume::Empty { now }
            | Resume::PortV { now, .. }
            | Resume::PidV { now, .. }
            | Resume::Host { now, .. }
            | Resume::Ok { now } => Some(*now),
            Resume::Killed => None,
        }
    }
}

thread_local! {
    /// Set once this thread's process has been killed: the global panic hook
    /// then suppresses the report for the expected kill-unwind panic
    /// (e.g. `.unwrap()` on a syscall result).
    pub(crate) static SUPPRESS_PANIC_REPORT: std::cell::Cell<bool> =
        const { std::cell::Cell::new(false) };
}

/// Handle through which a simulated process interacts with the world:
/// virtual time, CPU, network, process control, and deterministic
/// randomness.
pub struct Ctx {
    pid: Pid,
    host: HostId,
    now: SimTime,
    dead: bool,
    syscall_tx: Sender<(Pid, Syscall)>,
    resume_rx: Receiver<Resume>,
    rng: SmallRng,
}

impl Ctx {
    pub(crate) fn new(
        pid: Pid,
        host: HostId,
        seed: u64,
        syscall_tx: Sender<(Pid, Syscall)>,
        resume_rx: Receiver<Resume>,
    ) -> Self {
        // Derive a per-process RNG deterministically from the kernel seed
        // and the (deterministically assigned) pid.
        let mixed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((pid.0 as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        Ctx {
            pid,
            host,
            now: SimTime::ZERO,
            dead: false,
            syscall_tx,
            resume_rx,
            rng: SmallRng::seed_from_u64(mixed),
        }
    }

    /// Wait for the initial `Start` resume. Called by the thread wrapper
    /// before the body runs.
    pub(crate) fn wait_start(&mut self) -> SimResult<()> {
        match self.resume_rx.recv() {
            Ok(Resume::Start { now }) => {
                self.now = now;
                Ok(())
            }
            Ok(Resume::Killed) | Err(_) => {
                self.mark_dead();
                Err(Killed)
            }
            Ok(other) => Err(self.bad_resume("start", &other)),
        }
    }

    fn mark_dead(&mut self) {
        self.dead = true;
        SUPPRESS_PANIC_REPORT.with(|s| s.set(true));
    }

    /// A resume that does not match the outstanding syscall means the
    /// kernel and this process disagree about the protocol state — an
    /// internal bug. The process reports it and treats itself as killed
    /// rather than panicking: a panic here would take down the whole sim
    /// run instead of one process.
    #[cold]
    fn bad_resume(&mut self, syscall: &str, got: &Resume) -> Killed {
        eprintln!(
            "simnet: protocol error on pid {:?}: {syscall} resumed with {got:?}; treating process as killed",
            self.pid
        );
        self.mark_dead();
        Killed
    }

    /// Whether this process has been killed.
    pub(crate) fn is_dead(&self) -> bool {
        self.dead
    }

    fn call(&mut self, sc: Syscall) -> SimResult<Resume> {
        if self.dead {
            return Err(Killed);
        }
        if self.syscall_tx.send((self.pid, sc)).is_err() {
            self.mark_dead();
            return Err(Killed);
        }
        match self.resume_rx.recv() {
            Ok(r) => {
                if let Some(now) = r.now() {
                    self.now = now;
                    Ok(r)
                } else {
                    self.mark_dead();
                    Err(Killed)
                }
            }
            Err(_) => {
                self.mark_dead();
                Err(Killed)
            }
        }
    }

    /// Notify the kernel that the body has returned. Called by the thread
    /// wrapper; does not wait for a reply.
    pub(crate) fn send_exit(&mut self) {
        if !self.dead {
            let _ = self.syscall_tx.send((self.pid, Syscall::Exit));
        }
    }

    /// Notify the kernel that the body panicked (a real bug, not a kill
    /// unwind). Does not wait for a reply.
    pub(crate) fn send_panicked(&mut self, msg: String) {
        if !self.dead {
            let _ = self.syscall_tx.send((self.pid, Syscall::Panicked(msg)));
        }
    }

    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The host this process runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Current virtual time. Free: refreshed on every kernel interaction.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-process random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Suspend for a span of virtual time.
    pub fn sleep(&mut self, d: SimDuration) -> SimResult<()> {
        match self.call(Syscall::Sleep(d))? {
            Resume::Done { .. } => Ok(()),
            other => Err(self.bad_resume("sleep", &other)),
        }
    }

    /// Consume `work` CPU work units on this host, sharing the CPU with all
    /// other runnable jobs. Virtual time advances accordingly.
    pub fn compute(&mut self, work: f64) -> SimResult<()> {
        assert!(
            work >= 0.0 && !work.is_nan(),
            "compute work must be non-negative, got {work}"
        );
        if work == 0.0 {
            return Ok(());
        }
        match self.call(Syscall::Compute(work))? {
            Resume::Done { .. } => Ok(()),
            other => Err(self.bad_resume("compute", &other)),
        }
    }

    /// Spin on the CPU forever (a background-load process). Only returns
    /// when the process is killed, so the `Ok` branch is unreachable and the
    /// caller can simply `return` afterwards.
    pub fn spin_forever(&mut self) -> SimResult<()> {
        self.compute(f64::INFINITY)
    }

    /// Send a fire-and-forget message. Delivery takes network latency plus
    /// transfer time; sending to a dead endpoint produces an RST (port
    /// closed, host up) or silence (host down).
    pub fn send(&mut self, to: Addr, data: Vec<u8>) -> SimResult<()> {
        match self.call(Syscall::Send { to, data })? {
            Resume::Ok { .. } => Ok(()),
            other => Err(self.bad_resume("send", &other)),
        }
    }

    /// Block until a message arrives.
    pub fn recv(&mut self) -> SimResult<Msg> {
        match self.call(Syscall::Recv { timeout: None })? {
            Resume::Msg { msg, .. } => Ok(msg),
            other => Err(self.bad_resume("recv", &other)),
        }
    }

    /// Block until a message arrives or `timeout` elapses.
    pub fn recv_timeout(&mut self, timeout: SimDuration) -> SimResult<Option<Msg>> {
        match self.call(Syscall::Recv {
            timeout: Some(timeout),
        })? {
            Resume::Msg { msg, .. } => Ok(Some(msg)),
            Resume::Empty { .. } => Ok(None),
            other => Err(self.bad_resume("recv_timeout", &other)),
        }
    }

    /// Non-blocking receive: returns immediately with a queued message, if
    /// any. Does not advance virtual time.
    pub fn try_recv(&mut self) -> SimResult<Option<Msg>> {
        match self.call(Syscall::TryRecv)? {
            Resume::Msg { msg, .. } => Ok(Some(msg)),
            Resume::Empty { .. } => Ok(None),
            other => Err(self.bad_resume("try_recv", &other)),
        }
    }

    /// Bind an ephemeral port on this host; messages to
    /// `Addr::Endpoint(host, port)` are then delivered to this process.
    pub fn bind_port(&mut self) -> SimResult<Port> {
        match self.call(Syscall::BindPort)? {
            Resume::PortV {
                port: Some(port), ..
            } => Ok(port),
            other => Err(self.bad_resume("bind_port", &other)),
        }
    }

    /// Bind a specific port on this host. Returns `None` if it is taken.
    pub fn bind_port_exact(&mut self, port: Port) -> SimResult<Option<Port>> {
        match self.call(Syscall::BindPortExact(port))? {
            Resume::PortV { port, .. } => Ok(port),
            other => Err(self.bad_resume("bind_port_exact", &other)),
        }
    }

    /// Release a previously bound port.
    pub fn unbind_port(&mut self, port: Port) -> SimResult<()> {
        match self.call(Syscall::UnbindPort(port))? {
            Resume::Ok { .. } => Ok(()),
            other => Err(self.bad_resume("unbind_port", &other)),
        }
    }

    /// Spawn a new process on `host`. The process starts at the current
    /// virtual instant. If the host is down the pid is returned but the
    /// process never runs.
    pub fn spawn(
        &mut self,
        host: HostId,
        name: impl Into<String>,
        body: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> SimResult<Pid> {
        match self.call(Syscall::Spawn {
            host,
            name: name.into(),
            body: Box::new(body),
        })? {
            Resume::PidV { pid, .. } => Ok(pid),
            other => Err(self.bad_resume("spawn", &other)),
        }
    }

    /// Kill another process (or this one). Killing an already-dead process
    /// is a no-op.
    pub fn kill(&mut self, pid: Pid) -> SimResult<()> {
        match self.call(Syscall::Kill(pid))? {
            Resume::Ok { .. } => Ok(()),
            other => Err(self.bad_resume("kill", &other)),
        }
    }

    /// Crash a host: all its processes die, its ports unbind, in-flight
    /// messages to it are lost.
    pub fn crash_host(&mut self, host: HostId) -> SimResult<()> {
        match self.call(Syscall::CrashHost(host))? {
            Resume::Ok { .. } => Ok(()),
            other => Err(self.bad_resume("crash_host", &other)),
        }
    }

    /// Bring a crashed host back up (empty: processes must be respawned).
    pub fn restart_host(&mut self, host: HostId) -> SimResult<()> {
        match self.call(Syscall::RestartHost(host))? {
            Resume::Ok { .. } => Ok(()),
            other => Err(self.bad_resume("restart_host", &other)),
        }
    }

    /// Read a host's load metrics, as a node manager reads from the OS.
    /// Returns `None` for unknown hosts.
    pub fn host_info(&mut self, host: HostId) -> SimResult<Option<HostSnapshot>> {
        match self.call(Syscall::HostInfo(host))? {
            Resume::Host { snap, .. } => Ok(snap),
            other => Err(self.bad_resume("host_info", &other)),
        }
    }

    /// Block or heal the network link between two hosts.
    pub fn set_partition(&mut self, a: HostId, b: HostId, blocked: bool) -> SimResult<()> {
        match self.call(Syscall::Partition { a, b, blocked })? {
            Resume::Ok { .. } => Ok(()),
            other => Err(self.bad_resume("set_partition", &other)),
        }
    }
}

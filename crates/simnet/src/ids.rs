//! Identifiers for simulated hosts, processes, and ports.

use std::fmt;

/// Identifier of a simulated workstation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Identifier of a simulated process. Unique for the lifetime of a kernel;
/// never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// A port number on a host, used to address listening processes
/// (the simulated analogue of a TCP port).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u16);

/// A message destination: either a specific process, or whatever process is
/// currently bound to a `(host, port)` endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Addr {
    /// Deliver directly to a process (used for replies).
    Pid(Pid),
    /// Deliver to the process listening on `port` at `host`
    /// (used for requests to well-known services).
    Endpoint(HostId, Port),
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", HostId(3)), "h3");
        assert_eq!(format!("{:?}", Pid(7)), "p7");
        assert_eq!(format!("{:?}", Port(99)), ":99");
        assert_eq!(
            format!("{:?}", Addr::Endpoint(HostId(1), Port(2))),
            "Endpoint(h1, :2)"
        );
    }
}

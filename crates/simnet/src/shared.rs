//! Deterministic cross-process shared state.
//!
//! Sim processes are OS threads, but the kernel resumes exactly one at a
//! time, so access to state shared between processes is always serialized
//! by the scheduler. A `Mutex` is still required for *soundness* (the
//! `Send`/`Sync` bounds on process bodies), never for mutual exclusion —
//! it cannot be contended, and locking order cannot affect simulation
//! outcomes.
//!
//! `Shared<T>` packages that idiom so the rest of the workspace never
//! touches `std::sync::Mutex` directly: `ldft-lint` rule D4 bans OS
//! synchronization primitives in sim-process code, and this module — inside
//! the kernel crate, which implements the serialization guarantee — is the
//! one sanctioned implementation.

use std::sync::{Arc, Mutex, MutexGuard};

/// A clonable cell shared between sim processes.
///
/// Clones refer to the same value. Locking never blocks in practice (the
/// kernel runs one process at a time) and is poison-transparent: a sim
/// process that panicked while holding the guard does not wedge the others,
/// which matters for fault-injection runs that kill processes mid-step.
#[derive(Debug, Default)]
pub struct Shared<T>(Arc<Mutex<T>>);

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T> Shared<T> {
    /// Create a new shared cell holding `value`.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(Mutex::new(value)))
    }

    /// Lock the cell. Poison-transparent; see the type docs.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Run `f` with exclusive access to the value.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.lock())
    }

    /// Replace the value, returning the previous one.
    pub fn replace(&self, value: T) -> T {
        std::mem::replace(&mut self.lock(), value)
    }
}

impl<T: Clone> Shared<T> {
    /// Clone the current value out of the cell.
    pub fn get(&self) -> T {
        self.lock().clone()
    }
}

impl<T> Shared<Option<T>> {
    /// Take the value out of an optional cell, leaving `None`.
    pub fn take(&self) -> Option<T> {
        self.lock().take()
    }

    /// Store `Some(value)`, returning any previous value.
    pub fn put(&self, value: T) -> Option<T> {
        self.lock().replace(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_alias_the_same_value() {
        let a = Shared::new(1u32);
        let b = a.clone();
        *b.lock() += 41;
        assert_eq!(a.get(), 42);
    }

    #[test]
    fn with_and_replace() {
        let s = Shared::new(vec![1, 2]);
        s.with(|v| v.push(3));
        assert_eq!(s.get(), vec![1, 2, 3]);
        assert_eq!(s.replace(vec![9]), vec![1, 2, 3]);
        assert_eq!(s.get(), vec![9]);
    }

    #[test]
    fn optional_cell_take_and_put() {
        let s: Shared<Option<&str>> = Shared::new(None);
        assert_eq!(s.put("ior"), None);
        assert_eq!(s.take(), Some("ior"));
        assert_eq!(s.take(), None);
    }

    #[test]
    fn poison_transparency() {
        let s = Shared::new(0u32);
        let s2 = s.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.lock();
            panic!("poison the lock");
        })
        .join();
        *s.lock() = 7; // must not panic
        assert_eq!(s.get(), 7);
    }
}

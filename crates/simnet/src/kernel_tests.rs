//! End-to-end tests of the simulation kernel: timing, messaging, CPU
//! sharing, fault injection, and determinism.

use std::sync::Arc;

use crate::{Addr, Fault, HostConfig, Kernel, KernelConfig, Port, SimDuration, SimTime};

/// Poison-transparent mutex with the `parking_lot` calling convention
/// (`lock()` returns the guard directly); keeps the tests dependency-free.
struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Shared cell for extracting results from simulated processes.
type Cell<T> = Arc<Mutex<T>>;

fn cell<T: Default>() -> Cell<T> {
    Arc::new(Mutex::new(T::default()))
}

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

#[test]
fn sleep_advances_virtual_time() {
    let mut sim = Kernel::with_seed(1);
    let h = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<f64>>();
    let o = out.clone();
    sim.spawn(h, "sleeper", move |ctx| {
        ctx.sleep(secs(1.5)).unwrap();
        o.lock().push(ctx.now().as_secs_f64());
        ctx.sleep(secs(0.5)).unwrap();
        o.lock().push(ctx.now().as_secs_f64());
    });
    let end = sim.run_until_idle();
    assert_eq!(*out.lock(), vec![1.5, 2.0]);
    assert!((end.as_secs_f64() - 2.0).abs() < 1e-9);
}

#[test]
fn compute_takes_work_over_speed() {
    let mut sim = Kernel::with_seed(1);
    let h = sim.add_host(HostConfig::new("fast").speed(4.0));
    let out = cell::<f64>();
    let o = out.clone();
    sim.spawn(h, "worker", move |ctx| {
        ctx.compute(2.0).unwrap();
        *o.lock() = ctx.now().as_secs_f64();
    });
    sim.run_until_idle();
    assert!((*out.lock() - 0.5).abs() < 1e-6);
}

#[test]
fn concurrent_compute_shares_cpu() {
    let mut sim = Kernel::with_seed(1);
    let h = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<(String, f64)>>();
    for name in ["p", "q"] {
        let o = out.clone();
        sim.spawn(h, name, move |ctx| {
            ctx.compute(1.0).unwrap();
            o.lock().push((name.to_string(), ctx.now().as_secs_f64()));
        });
    }
    sim.run_until_idle();
    let done = out.lock();
    // Two equal jobs sharing a unit-speed CPU both finish at t=2.
    assert_eq!(done.len(), 2);
    for (_, t) in done.iter() {
        assert!((t - 2.0).abs() < 1e-6, "{done:?}");
    }
}

#[test]
fn compute_on_two_hosts_is_independent() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    let out = cell::<Vec<f64>>();
    for h in [a, b] {
        let o = out.clone();
        sim.spawn(h, "w", move |ctx| {
            ctx.compute(1.0).unwrap();
            o.lock().push(ctx.now().as_secs_f64());
        });
    }
    sim.run_until_idle();
    for t in out.lock().iter() {
        assert!((t - 1.0).abs() < 1e-6);
    }
}

#[test]
fn message_round_trip_with_latency() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    let out = cell::<Option<(Vec<u8>, f64)>>();

    sim.spawn(b, "server", move |ctx| {
        ctx.bind_port_exact(Port(7)).unwrap().unwrap();
        let m = ctx.recv().unwrap();
        let mut data = m.data().unwrap().to_vec();
        data.reverse();
        ctx.send(Addr::Pid(m.from), data).unwrap();
    });
    let o = out.clone();
    sim.spawn(a, "client", move |ctx| {
        ctx.sleep(secs(0.001)).unwrap();
        ctx.send(Addr::Endpoint(b, Port(7)), vec![1, 2, 3]).unwrap();
        let reply = ctx.recv().unwrap();
        *o.lock() = Some((reply.data().unwrap().to_vec(), ctx.now().as_secs_f64()));
    });
    sim.run_until_idle();
    let (data, t) = out.lock().clone().unwrap();
    assert_eq!(data, vec![3, 2, 1]);
    // Two remote hops at 150us each plus 3 bytes of transfer time.
    assert!(t > 0.001 + 2.0 * 150e-6 - 1e-9, "t={t}");
    assert!(t < 0.0015, "t={t}");
}

#[test]
fn send_to_closed_port_produces_rst() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    let out = cell::<bool>();
    let o = out.clone();
    sim.spawn(a, "client", move |ctx| {
        ctx.send(Addr::Endpoint(b, Port(9)), vec![0]).unwrap();
        let m = ctx.recv().unwrap();
        *o.lock() = m.is_rst_for(b, Port(9));
    });
    sim.run_until_idle();
    assert!(*out.lock());
    assert_eq!(sim.stats().rsts, 1);
}

#[test]
fn send_to_down_host_is_dropped() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    sim.schedule_fault(SimTime::ZERO, Fault::CrashHost(b));
    let out = cell::<Option<bool>>();
    let o = out.clone();
    sim.spawn(a, "client", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        ctx.send(Addr::Endpoint(b, Port(9)), vec![0]).unwrap();
        let got = ctx.recv_timeout(secs(1.0)).unwrap();
        *o.lock() = Some(got.is_some());
    });
    sim.run_until_idle();
    assert_eq!(*out.lock(), Some(false));
    assert_eq!(sim.stats().msgs_dropped, 1);
}

#[test]
fn recv_timeout_fires_and_message_wins_race() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<bool>>();
    let o = out.clone();
    let waiter = sim.spawn(a, "waiter", move |ctx| {
        // First: times out (no sender).
        let m1 = ctx.recv_timeout(secs(0.5)).unwrap();
        o.lock().push(m1.is_some());
        // Second: message arrives before the timeout.
        let m2 = ctx.recv_timeout(secs(10.0)).unwrap();
        o.lock().push(m2.is_some());
    });
    sim.spawn(a, "sender", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        ctx.send(Addr::Pid(waiter), vec![7]).unwrap();
    });
    sim.run_until_idle();
    assert_eq!(*out.lock(), vec![false, true]);
}

#[test]
fn try_recv_does_not_block() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<bool>>();
    let o = out.clone();
    let target = sim.spawn(a, "poller", move |ctx| {
        o.lock().push(ctx.try_recv().unwrap().is_some());
        ctx.sleep(secs(1.0)).unwrap();
        o.lock().push(ctx.try_recv().unwrap().is_some());
    });
    sim.spawn(a, "sender", move |ctx| {
        ctx.sleep(secs(0.5)).unwrap();
        ctx.send(Addr::Pid(target), vec![1]).unwrap();
    });
    sim.run_until_idle();
    assert_eq!(*out.lock(), vec![false, true]);
}

#[test]
fn mailbox_queues_messages_in_order() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<u8>>();
    let o = out.clone();
    let target = sim.spawn(a, "late-reader", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        for _ in 0..3 {
            let m = ctx.recv().unwrap();
            o.lock().push(m.data().unwrap()[0]);
        }
    });
    sim.spawn(a, "sender", move |ctx| {
        for i in 0..3u8 {
            ctx.send(Addr::Pid(target), vec![i]).unwrap();
            ctx.sleep(secs(0.01)).unwrap();
        }
    });
    sim.run_until_idle();
    assert_eq!(*out.lock(), vec![0, 1, 2]);
}

#[test]
fn kill_process_interrupts_compute() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<String>>();
    let o = out.clone();
    let victim = sim.spawn(a, "victim", move |ctx| match ctx.compute(1000.0) {
        Ok(()) => o.lock().push("finished".into()),
        Err(_) => o.lock().push("killed".into()),
    });
    let o2 = out.clone();
    sim.spawn(a, "killer", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        ctx.kill(victim).unwrap();
        // After the kill this process has the CPU to itself.
        ctx.compute(1.0).unwrap();
        o2.lock().push(format!("t={:.3}", ctx.now().as_secs_f64()));
    });
    sim.run_until_idle();
    let log = out.lock().clone();
    assert!(log.contains(&"killed".to_string()), "{log:?}");
    // killer: 1s sleep + 1 unit at full speed = t=2.0
    assert!(log.contains(&"t=2.000".to_string()), "{log:?}");
    assert_eq!(sim.stats().killed, 1);
}

#[test]
fn killed_process_unwrap_panics_are_quiet_and_harmless() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let victim = sim.spawn(a, "victim", move |ctx| {
        // unwrap() on the syscall result: panics when killed; the kernel
        // treats this as the expected kill unwind.
        loop {
            ctx.sleep(secs(0.1)).unwrap();
        }
    });
    sim.schedule_fault(SimTime::ZERO + secs(1.0), Fault::KillProcess(victim));
    sim.run_until_idle();
    assert!(sim.proc_dead(victim));
}

#[test]
#[should_panic(expected = "simulated process")]
fn process_bug_panics_propagate_to_the_driver() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    sim.spawn(a, "buggy", move |_ctx| {
        panic!("application bug");
    });
    sim.run_until_idle();
}

#[test]
fn host_crash_kills_processes_and_unbinds_ports() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    let out = cell::<Vec<String>>();

    let o = out.clone();
    sim.spawn(b, "server", move |ctx| {
        ctx.bind_port_exact(Port(7)).unwrap().unwrap();
        let r = ctx.recv();
        o.lock().push(format!("server: {:?}", r.is_ok()));
    });
    sim.schedule_fault(SimTime::ZERO + secs(1.0), Fault::CrashHost(b));

    let o = out.clone();
    sim.spawn(a, "client", move |ctx| {
        ctx.sleep(secs(2.0)).unwrap();
        ctx.send(Addr::Endpoint(b, Port(7)), vec![1]).unwrap();
        let got = ctx.recv_timeout(secs(1.0)).unwrap();
        o.lock().push(format!("client: {:?}", got.is_some()));
    });
    sim.run_until_idle();
    let log = out.lock().clone();
    assert!(log.contains(&"server: false".to_string()), "{log:?}");
    assert!(log.contains(&"client: false".to_string()), "{log:?}");
}

#[test]
fn host_restart_allows_new_processes() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    sim.schedule_fault(SimTime::ZERO + secs(1.0), Fault::CrashHost(b));
    sim.schedule_fault(SimTime::ZERO + secs(2.0), Fault::RestartHost(b));
    let out = cell::<bool>();
    let o = out.clone();
    sim.spawn(a, "driver", move |ctx| {
        ctx.sleep(secs(3.0)).unwrap();
        let oo = o.clone();
        ctx.spawn(b, "reborn", move |ctx2| {
            ctx2.compute(0.5).unwrap();
            *oo.lock() = true;
        })
        .unwrap();
    });
    sim.run_until_idle();
    assert!(*out.lock());
}

#[test]
fn spawn_on_down_host_never_runs() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    sim.schedule_fault(SimTime::ZERO, Fault::CrashHost(b));
    let out = cell::<bool>();
    let o = out.clone();
    sim.spawn(a, "driver", move |ctx| {
        ctx.sleep(secs(0.5)).unwrap();
        let oo = o.clone();
        let pid = ctx
            .spawn(b, "ghost", move |_| {
                *oo.lock() = true;
            })
            .unwrap();
        ctx.sleep(secs(0.5)).unwrap();
        let _ = pid;
    });
    sim.run_until_idle();
    assert!(!*out.lock());
}

#[test]
fn partition_blocks_and_heals() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    let out = cell::<Vec<bool>>();

    sim.spawn(b, "server", move |ctx| {
        ctx.bind_port_exact(Port(7)).unwrap().unwrap();
        loop {
            let Ok(m) = ctx.recv() else { return };
            ctx.send(Addr::Pid(m.from), vec![9]).unwrap();
        }
    });
    let o = out.clone();
    sim.spawn(a, "client", move |ctx| {
        ctx.sleep(secs(0.1)).unwrap();
        ctx.set_partition(a, b, true).unwrap();
        ctx.send(Addr::Endpoint(b, Port(7)), vec![1]).unwrap();
        let first = ctx.recv_timeout(secs(0.5)).unwrap();
        o.lock().push(first.is_some());
        ctx.set_partition(a, b, false).unwrap();
        ctx.send(Addr::Endpoint(b, Port(7)), vec![1]).unwrap();
        let second = ctx.recv_timeout(secs(0.5)).unwrap();
        o.lock().push(second.is_some());
    });
    sim.run_until_exit(crate::Pid(1));
    assert_eq!(*out.lock(), vec![false, true]);
}

#[test]
fn host_info_reports_background_load() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b").speed(2.0));
    let out = cell::<Vec<(u32, f64)>>();

    sim.spawn(b, "spinner", move |ctx| {
        let _ = ctx.spin_forever();
    });
    let o = out.clone();
    sim.spawn(a, "monitor", move |ctx| {
        ctx.sleep(secs(30.0)).unwrap();
        for h in [a, b] {
            let s = ctx.host_info(h).unwrap().unwrap();
            o.lock().push((s.runnable, s.load_avg));
        }
        let none = ctx.host_info(crate::HostId(99)).unwrap();
        assert!(none.is_none());
    });
    sim.run_until_idle();
    let v = out.lock().clone();
    assert_eq!(v[0].0, 0);
    assert!(v[0].1 < 0.01);
    assert_eq!(v[1].0, 1);
    assert!(v[1].1 > 0.99, "{v:?}");
}

#[test]
fn ephemeral_ports_are_distinct() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<u16>>();
    let o = out.clone();
    sim.spawn(a, "binder", move |ctx| {
        for _ in 0..5 {
            o.lock().push(ctx.bind_port().unwrap().0);
        }
    });
    sim.run_until_idle();
    let mut v = out.lock().clone();
    v.sort_unstable();
    v.dedup();
    assert_eq!(v.len(), 5);
}

#[test]
fn unbound_port_goes_back_to_rst() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<bool>();
    let o = out.clone();
    sim.spawn(a, "svc", move |ctx| {
        let p = ctx.bind_port_exact(Port(80)).unwrap().unwrap();
        ctx.unbind_port(p).unwrap();
        // Our own send to the now-closed port bounces.
        ctx.send(Addr::Endpoint(a, Port(80)), vec![1]).unwrap();
        let m = ctx.recv().unwrap();
        *o.lock() = m.is_rst_for(a, Port(80));
    });
    sim.run_until_idle();
    assert!(*out.lock());
}

#[test]
fn bind_port_exact_conflict_returns_none() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<bool>>();
    let o = out.clone();
    sim.spawn(a, "binder", move |ctx| {
        let first = ctx.bind_port_exact(Port(80)).unwrap();
        let second = ctx.bind_port_exact(Port(80)).unwrap();
        o.lock().push(first.is_some());
        o.lock().push(second.is_some());
    });
    sim.run_until_idle();
    assert_eq!(*out.lock(), vec![true, false]);
}

#[test]
fn run_until_exit_stops_with_background_activity() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    // A periodic background process that never exits.
    sim.spawn(a, "daemon", move |ctx| loop {
        if ctx.sleep(secs(0.5)).is_err() {
            return;
        }
    });
    let main = sim.spawn(a, "main", move |ctx| {
        ctx.sleep(secs(3.0)).unwrap();
    });
    let t = sim.run_until_exit(main);
    assert!((t.as_secs_f64() - 3.0).abs() < 1e-9);
    assert!(sim.proc_dead(main));
}

#[test]
fn run_until_advances_clock_to_deadline() {
    let mut sim = Kernel::with_seed(1);
    let _ = sim.add_host(HostConfig::new("a"));
    let t = sim.run_until(SimTime::ZERO + secs(5.0));
    assert!((t.as_secs_f64() - 5.0).abs() < 1e-9);
    assert_eq!(sim.now(), t);
}

#[test]
fn determinism_same_seed_same_trace() {
    fn run(seed: u64) -> Vec<(f64, u64)> {
        let mut sim = Kernel::with_seed(seed);
        let hosts = sim.add_hosts(4);
        let out = cell::<Vec<(f64, u64)>>();
        for (i, &h) in hosts.iter().enumerate() {
            let o = out.clone();
            let hosts = hosts.clone();
            sim.spawn(h, format!("p{i}"), move |ctx| {
                use rand::Rng;
                for _ in 0..20 {
                    let work: f64 = ctx.rng().random_range(0.01..0.1);
                    ctx.compute(work).unwrap();
                    let peer = hosts[ctx.rng().random_range(0..hosts.len())];
                    ctx.send(Addr::Endpoint(peer, Port(1)), vec![0; 16])
                        .unwrap();
                    let v: u64 = ctx.rng().random();
                    o.lock().push((ctx.now().as_secs_f64(), v));
                }
            });
        }
        sim.run_until_idle();
        let trace = out.lock().clone();
        trace
    }
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn stats_count_activity() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let target = sim.spawn(a, "sink", move |ctx| {
        let _ = ctx.recv();
    });
    sim.spawn(a, "src", move |ctx| {
        ctx.send(Addr::Pid(target), vec![1, 2]).unwrap();
    });
    sim.run_until_idle();
    let s = sim.stats();
    assert_eq!(s.msgs_delivered, 1);
    assert_eq!(s.spawned, 2);
    assert!(s.events >= 3);
}

#[test]
#[should_panic(expected = "max_events")]
fn runaway_event_loop_is_caught() {
    let mut sim = Kernel::new(KernelConfig {
        max_events: 100,
        ..KernelConfig::default()
    });
    let a = sim.add_host(HostConfig::new("a"));
    sim.spawn(a, "looper", move |ctx| loop {
        ctx.sleep(SimDuration::from_nanos(1)).unwrap();
    });
    sim.run_until_idle();
}

#[test]
fn rst_includes_transfer_payload_semantics() {
    // Payload bytes increase transfer time: a big message arrives later
    // than a small one sent at the same instant.
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    let out = cell::<Vec<usize>>();
    let o = out.clone();
    let rx = sim.spawn(b, "rx", move |ctx| {
        for _ in 0..2 {
            let m = ctx.recv().unwrap();
            o.lock().push(m.data().unwrap().len());
        }
    });
    sim.spawn(a, "tx", move |ctx| {
        ctx.send(Addr::Pid(rx), vec![0; 1_000_000]).unwrap();
        ctx.send(Addr::Pid(rx), vec![0; 1]).unwrap();
    });
    sim.run_until_idle();
    // The 1-byte message overtakes the 1MB message.
    assert_eq!(*out.lock(), vec![1, 1_000_000]);
}

#[test]
fn link_latency_overrides_model_wan_links() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("lan1-a"));
    let b = sim.add_host(HostConfig::new("lan2-b"));
    // A 20 ms WAN link between the two "sites".
    sim.set_link_latency(a, b, secs(0.020));
    let out = cell::<Option<f64>>();
    let o = out.clone();
    sim.spawn(b, "echo", move |ctx| {
        ctx.bind_port_exact(Port(9)).unwrap().unwrap();
        let m = ctx.recv().unwrap();
        ctx.send(Addr::Pid(m.from), vec![1]).unwrap();
    });
    let client = sim.spawn(a, "client", move |ctx| {
        ctx.sleep(secs(0.001)).unwrap();
        let t0 = ctx.now();
        ctx.send(Addr::Endpoint(b, Port(9)), vec![0]).unwrap();
        ctx.recv().unwrap();
        *o.lock() = Some(ctx.now().since(t0).as_secs_f64());
    });
    sim.run_until_exit(client);
    let rtt = (*out.lock()).unwrap();
    assert!(rtt >= 0.040, "WAN RTT must be ≥ 2×20ms: {rtt}");
    assert!(rtt < 0.045, "{rtt}");
}

#[test]
fn link_latency_can_be_scheduled_and_reset() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    // Degrade the link at t=1, heal it at t=2.
    sim.schedule_fault(
        SimTime::ZERO + secs(1.0),
        Fault::SetLinkLatency(a, b, Some(secs(0.5))),
    );
    sim.schedule_fault(SimTime::ZERO + secs(2.0), Fault::SetLinkLatency(a, b, None));
    let out = cell::<Vec<f64>>();
    let o = out.clone();
    sim.spawn(b, "echo", move |ctx| {
        ctx.bind_port_exact(Port(9)).unwrap().unwrap();
        loop {
            let Ok(m) = ctx.recv() else { return };
            if ctx.send(Addr::Pid(m.from), vec![1]).is_err() {
                return;
            }
        }
    });
    let client = sim.spawn(a, "client", move |ctx| {
        for wait in [0.5f64, 1.0, 1.3] {
            // t=0.5 (normal), t=1.5 (degraded), t=2.8 (healed)
            ctx.sleep(secs(wait)).unwrap();
            let t0 = ctx.now();
            ctx.send(Addr::Endpoint(b, Port(9)), vec![0]).unwrap();
            ctx.recv().unwrap();
            o.lock().push(ctx.now().since(t0).as_secs_f64());
        }
    });
    sim.run_until_exit(client);
    let rtts = out.lock().clone();
    assert!(rtts[0] < 0.01, "{rtts:?}");
    // The request crosses the degraded link (0.5 s one way); the reply
    // departs after the heal at t=2.0, so the RTT is ≈ one slow hop.
    assert!(rtts[1] >= 0.5, "{rtts:?}");
    assert!(rtts[2] < 0.01, "{rtts:?}");
}

#[test]
fn spawned_child_runs_on_target_host() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let b = sim.add_host(HostConfig::new("b"));
    let out = cell::<Option<(u32, u32)>>();
    let o = out.clone();
    sim.spawn(a, "parent", move |ctx| {
        let oo = o.clone();
        ctx.spawn(b, "child", move |c| {
            *oo.lock() = Some((c.host().0, c.pid().0));
        })
        .unwrap();
        ctx.sleep(secs(0.1)).unwrap();
    });
    sim.run_until_idle();
    let (host, _pid) = out.lock().unwrap();
    assert_eq!(host, b.0);
}

#[test]
fn tracer_observes_kills() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let lines = cell::<Vec<String>>();
    let l = lines.clone();
    sim.set_tracer(move |t, line| {
        l.lock().push(format!("{t}: {line}"));
    });
    let victim = sim.spawn(a, "victim", |ctx| {
        let _ = ctx.spin_forever();
    });
    sim.schedule_fault(SimTime::ZERO + secs(1.0), Fault::KillProcess(victim));
    sim.run_until_idle();
    let log = lines.lock().clone();
    assert!(
        log.iter().any(|line| line.contains("kill p0")),
        "tracer saw nothing: {log:?}"
    );
}

#[test]
fn self_kill_terminates_the_process() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<Vec<&'static str>>();
    let o = out.clone();
    let pid = sim.spawn(a, "suicidal", move |ctx| {
        o.lock().push("before");
        let me = ctx.pid();
        let r = ctx.kill(me);
        // The kill syscall itself reports Killed; nothing after runs
        // normally.
        if r.is_err() {
            o.lock().push("killed");
        }
        // Further syscalls fail immediately.
        if ctx.sleep(secs(1.0)).is_err() {
            o.lock().push("still-dead");
        }
    });
    sim.run_until_idle();
    assert!(sim.proc_dead(pid));
    // Killed processes unwind on their own thread; dropping the kernel
    // joins them, making their final side effects visible.
    drop(sim);
    assert_eq!(*out.lock(), vec!["before", "killed", "still-dead"]);
}

#[test]
fn self_crash_host_terminates_the_process() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let out = cell::<bool>();
    let o = out.clone();
    let pid = sim.spawn(a, "host-suicide", move |ctx| {
        let here = ctx.host();
        if ctx.crash_host(here).is_err() {
            *o.lock() = true;
        }
    });
    sim.run_until_idle();
    assert!(sim.proc_dead(pid));
    drop(sim); // join the unwinding thread before asserting
    assert!(*out.lock());
}

// ---------------------------------------------------------------------
// Kernel profiling: CPU attribution, queue peaks, profile marks
// ---------------------------------------------------------------------

#[test]
fn cpu_attribution_follows_processor_sharing() {
    let mut sim = Kernel::with_seed(1);
    let h = sim.add_host(HostConfig::new("a"));
    let mut pids = Vec::new();
    for name in ["p", "q"] {
        pids.push(sim.spawn(h, name, move |ctx| {
            ctx.compute(1.0).unwrap();
        }));
    }
    sim.run_until_idle();
    let profile = sim.profile();
    // Two equal jobs share the unit CPU over [0, 2]; each is attributed
    // exactly half the elapsed virtual time.
    assert_eq!(profile.cpu_by_proc.len(), 2);
    for (c, pid) in profile.cpu_by_proc.iter().zip(&pids) {
        assert_eq!(c.pid, *pid);
        assert_eq!(c.host, h);
        let secs = c.cpu_ns as f64 / 1e9;
        assert!((secs - 1.0).abs() < 1e-3, "{:?}", profile.cpu_by_proc);
    }
}

#[test]
fn cpu_attribution_is_speed_independent() {
    // CPU share is measured in virtual seconds of CPU *time*, not work
    // units: a lone job on a 4x host occupies the CPU for work/speed.
    let mut sim = Kernel::with_seed(1);
    let h = sim.add_host(HostConfig::new("fast").speed(4.0));
    let pid = sim.spawn(h, "w", move |ctx| {
        ctx.compute(2.0).unwrap();
    });
    sim.run_until_idle();
    let profile = sim.profile();
    assert_eq!(profile.cpu_by_proc.len(), 1);
    let c = &profile.cpu_by_proc[0];
    assert_eq!((c.pid, c.host), (pid, h));
    assert!((c.cpu_ns as f64 / 1e9 - 0.5).abs() < 1e-3);
}

#[test]
fn profile_reports_queue_peaks() {
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    let receiver = sim.spawn(a, "rx", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap(); // let the mailbox fill
        while ctx.try_recv().unwrap().is_some() {}
    });
    sim.spawn(a, "tx", move |ctx| {
        for _ in 0..3 {
            ctx.send(Addr::Pid(receiver), b"m".to_vec()).unwrap();
        }
    });
    sim.run_until_idle();
    let profile = sim.profile();
    assert!(profile.mailbox_peak >= 3, "{profile:?}");
    assert!(profile.event_queue_peak >= 1, "{profile:?}");
    assert!(profile.runnable_peak >= 1, "{profile:?}");
}

#[test]
fn profile_marks_pair_up_and_never_nest() {
    use crate::ProfileMark;
    let marks = cell::<Vec<ProfileMark>>();
    let m = marks.clone();
    let mut sim = Kernel::with_seed(1);
    let a = sim.add_host(HostConfig::new("a"));
    sim.set_profile_hook(move |mark| m.lock().push(mark));
    let server = sim.spawn(a, "server", move |ctx| {
        let _ = ctx.recv().unwrap();
    });
    sim.spawn(a, "client", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        ctx.compute(0.001).unwrap();
        ctx.send(Addr::Pid(server), b"hi".to_vec()).unwrap();
    });
    sim.run_until_idle();
    let marks = marks.lock();
    assert!(!marks.is_empty());
    // Flat structure: every begin is immediately closed by its own end.
    let mut open: Option<&'static str> = None;
    let mut ops = std::collections::BTreeSet::new();
    for mark in marks.iter() {
        match *mark {
            ProfileMark::OpBegin(op) => {
                assert!(open.is_none(), "nested begin {op} inside {open:?}");
                open = Some(op);
            }
            ProfileMark::OpEnd(op) => {
                assert_eq!(open, Some(op), "unbalanced end {op}");
                ops.insert(op);
                open = None;
            }
        }
    }
    assert!(open.is_none(), "trailing unclosed {open:?}");
    for expected in [
        "sched.handoff",
        "sys.sleep",
        "sys.compute",
        "sys.send",
        "sys.recv",
        "sys.exit",
        "event.start",
        "event.timer",
        "event.deliver",
        "event.cpu_check",
    ] {
        assert!(ops.contains(expected), "missing op {expected}: {ops:?}");
    }
}

// ---------------------------------------------------------------------
// SchedulePolicy choice points
// ---------------------------------------------------------------------

/// Test policy: records every choice it is asked to make, and optionally
/// flips all-deliver event ties and runnable ties to the last candidate.
struct TestPolicy {
    choices: Cell<Vec<(crate::ChoiceKind, usize)>>,
    flip_delivers: bool,
    flip_runs: bool,
}

impl crate::SchedulePolicy for TestPolicy {
    fn choose(
        &mut self,
        kind: crate::ChoiceKind,
        _now: SimTime,
        cands: &[crate::ChoiceCandidate],
    ) -> usize {
        self.choices.lock().push((kind, cands.len()));
        match kind {
            crate::ChoiceKind::EventTie
                if self.flip_delivers && cands.iter().all(|c| c.label == "deliver") =>
            {
                cands.len() - 1
            }
            crate::ChoiceKind::RunnableTie if self.flip_runs => cands.len() - 1,
            _ => 0,
        }
    }
}

/// `(time, rng draw)` samples plus the `(time, line)` kernel trace.
type PolicyRunTrace = (Vec<(f64, u64)>, Vec<(f64, String)>);

/// The determinism scenario from `determinism_same_seed_same_trace`, with
/// an optional always-pick-0 policy installed.
fn policy_reference_run(seed: u64, with_policy: bool) -> PolicyRunTrace {
    let mut sim = Kernel::with_seed(seed);
    let trace = cell::<Vec<(f64, String)>>();
    {
        let trace = trace.clone();
        sim.set_tracer(move |t, line| trace.lock().push((t.as_secs_f64(), line.to_string())));
    }
    if with_policy {
        sim.set_schedule_policy(TestPolicy {
            choices: cell(),
            flip_delivers: false,
            flip_runs: false,
        });
    }
    let hosts = sim.add_hosts(4);
    let out = cell::<Vec<(f64, u64)>>();
    for (i, &h) in hosts.iter().enumerate() {
        let o = out.clone();
        let hosts = hosts.clone();
        sim.spawn(h, format!("p{i}"), move |ctx| {
            use rand::Rng;
            for _ in 0..20 {
                let work: f64 = ctx.rng().random_range(0.01..0.1);
                ctx.compute(work).unwrap();
                let peer = hosts[ctx.rng().random_range(0..hosts.len())];
                ctx.send(Addr::Endpoint(peer, Port(1)), vec![0; 16])
                    .unwrap();
                let v: u64 = ctx.rng().random();
                o.lock().push((ctx.now().as_secs_f64(), v));
            }
        });
    }
    sim.run_until_idle();
    let vals = out.lock().clone();
    let lines = trace.lock().clone();
    (vals, lines)
}

#[test]
fn schedule_policy_choose_zero_is_byte_identical_to_no_policy() {
    let bare = policy_reference_run(7, false);
    let hooked = policy_reference_run(7, true);
    assert_eq!(bare, hooked);
}

#[test]
fn schedule_policy_flips_cotemporal_delivery_order() {
    fn run(flip: bool) -> (Vec<u8>, Vec<(crate::ChoiceKind, usize)>) {
        let mut sim = Kernel::with_seed(3);
        let choices = cell::<Vec<(crate::ChoiceKind, usize)>>();
        sim.set_schedule_policy(TestPolicy {
            choices: choices.clone(),
            flip_delivers: flip,
            flip_runs: false,
        });
        let a = sim.add_host(HostConfig::new("a"));
        let b = sim.add_host(HostConfig::new("b"));
        let got = cell::<Vec<u8>>();
        let g = got.clone();
        let sink = sim.spawn(a, "sink", move |ctx| {
            for _ in 0..2 {
                let m = ctx.recv().unwrap();
                if let Some(d) = m.data() {
                    g.lock().push(d[0]);
                }
            }
        });
        // Both senders live on host b and send at the same virtual time
        // with identical payload sizes, so the two Deliver events carry
        // the same timestamp — a genuine tie the policy resolves.
        for tag in [1u8, 2u8] {
            sim.spawn(b, format!("send{tag}"), move |ctx| {
                ctx.sleep(SimDuration::from_millis(1)).unwrap();
                ctx.send(Addr::Pid(sink), vec![tag]).unwrap();
            });
        }
        sim.run_until_idle();
        let order = got.lock().clone();
        let ch = choices.lock().clone();
        (order, ch)
    }
    let (default_order, choices) = run(false);
    let (flipped_order, _) = run(true);
    assert_eq!(default_order, vec![1, 2]);
    assert_eq!(flipped_order, vec![2, 1]);
    // The policy really was consulted on an event tie.
    assert!(choices
        .iter()
        .any(|&(k, n)| k == crate::ChoiceKind::EventTie && n >= 2));
}

#[test]
fn schedule_policy_flips_runnable_order() {
    fn run(flip: bool) -> (Vec<String>, bool) {
        let mut sim = Kernel::with_seed(5);
        let choices = cell::<Vec<(crate::ChoiceKind, usize)>>();
        sim.set_schedule_policy(TestPolicy {
            choices: choices.clone(),
            flip_delivers: false,
            flip_runs: flip,
        });
        let a = sim.add_host(HostConfig::new("a"));
        let ran = cell::<Vec<String>>();
        // Two identical compute jobs on one host finish at the same
        // CpuCheck, so both processes land in the runnable queue at once.
        for name in ["first", "second"] {
            let r = ran.clone();
            sim.spawn(a, name, move |ctx| {
                ctx.compute(0.05).unwrap();
                r.lock().push(name.to_string());
            });
        }
        sim.run_until_idle();
        let order = ran.lock().clone();
        let saw_tie = choices
            .lock()
            .iter()
            .any(|&(k, n)| k == crate::ChoiceKind::RunnableTie && n >= 2);
        (order, saw_tie)
    }
    let (default_order, saw_tie) = run(false);
    assert!(saw_tie, "expected a runnable tie in this scenario");
    let (flipped_order, _) = run(true);
    assert_eq!(
        default_order,
        vec!["first".to_string(), "second".to_string()]
    );
    assert_eq!(
        flipped_order,
        vec!["second".to_string(), "first".to_string()]
    );
}

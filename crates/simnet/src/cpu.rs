//! Per-host CPU model with processor sharing, plus the load metrics the
//! Winner resource manager samples.
//!
//! Every host has a single CPU of a given `speed` (work units per second).
//! All compute jobs that are runnable on the host at a given instant share
//! the CPU equally: with `n` jobs each progresses at `speed / n` units per
//! second. This is the classic processor-sharing queue and is precisely the
//! physics behind the paper's Figure 3 — a worker co-located with one
//! background load process runs at half speed, and the manager waits for the
//! slowest worker.
//!
//! Load metrics mirror what a Unix kernel exposes: the current number of
//! runnable jobs, an exponentially-weighted moving average of that count
//! (the "load average"), and a utilization EWMA.

use std::collections::BTreeMap;

use crate::ids::Pid;
use crate::time::{SimDuration, SimTime};

/// Work remaining threshold below which a job counts as finished. Completion
/// times are rounded up to whole nanoseconds, so a tiny positive residue can
/// remain at the scheduled completion instant.
const WORK_EPS: f64 = 1e-6;

/// Static configuration of a simulated workstation.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Human-readable name (used in traces).
    pub name: String,
    /// CPU speed in work units per second. One work unit equals one second
    /// of compute on a speed-1.0 host.
    pub speed: f64,
}

impl HostConfig {
    /// A host with the given name and unit speed.
    pub fn new(name: impl Into<String>) -> Self {
        HostConfig {
            name: name.into(),
            speed: 1.0,
        }
    }

    /// Set the CPU speed (work units per second).
    pub fn speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "host speed must be positive");
        self.speed = speed;
        self
    }
}

/// One compute job on a host CPU.
#[derive(Clone, Debug)]
struct Job {
    pid: Pid,
    /// Remaining work units. `f64::INFINITY` models a background load
    /// process that spins forever.
    remaining: f64,
}

/// A snapshot of a host's state and load metrics, as returned by
/// [`Ctx::host_info`](crate::process::Ctx::host_info). This is the simulated
/// analogue of the data a Winner node manager reads from the host OS.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostSnapshot {
    /// Host identity (filled in by the kernel).
    pub up: bool,
    /// CPU speed in work units per second.
    pub speed: f64,
    /// Number of currently runnable compute jobs.
    pub runnable: u32,
    /// EWMA of the runnable-job count (Unix-style load average).
    pub load_avg: f64,
    /// EWMA of CPU busyness in [0, 1].
    pub cpu_util: f64,
    /// Offset of this host's wall clock from virtual time, in nanoseconds
    /// (fault-injected; zero on a healthy host). Readers that stamp
    /// wall-clock times (e.g. Winner load reports) add this to `now`.
    pub clock_skew_ns: i64,
}

/// Dynamic state of one host: its CPU, its jobs, and its metrics.
#[derive(Debug)]
pub(crate) struct HostState {
    pub(crate) cfg: HostConfig,
    pub(crate) up: bool,
    jobs: Vec<Job>,
    last_update: SimTime,
    /// Bumped whenever the job set changes, to invalidate in-flight
    /// completion-check events.
    pub(crate) cpu_epoch: u64,
    /// EWMA of the runnable-job count.
    load_avg: f64,
    /// EWMA of busyness (1.0 while any job is runnable).
    cpu_util: f64,
    /// EWMA time constant.
    tau: f64,
    /// Fault-injected wall-clock offset, surfaced via [`HostSnapshot`].
    pub(crate) clock_skew_ns: i64,
    /// Virtual-time CPU attribution: nanoseconds of CPU delivered to each
    /// process that ever computed on this host. Under processor sharing a
    /// job receives `dt / n` CPU-seconds over an interval with `n` runnable
    /// jobs, independent of host speed (speed scales the *work* done, not
    /// the CPU-time share). Purely a function of the event sequence, so
    /// same-seed runs attribute identically.
    pub(crate) cpu_by_pid: BTreeMap<Pid, u64>,
}

impl HostState {
    pub(crate) fn new(cfg: HostConfig, tau: SimDuration) -> Self {
        HostState {
            cfg,
            up: true,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            cpu_epoch: 0,
            load_avg: 0.0,
            cpu_util: 0.0,
            tau: tau.as_secs_f64().max(1e-9),
            clock_skew_ns: 0,
            cpu_by_pid: BTreeMap::new(),
        }
    }

    /// Advance job progress and metrics from `last_update` to `now`.
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            let n = self.jobs.len();
            if n > 0 {
                let per_job = dt * self.cfg.speed / n as f64;
                // Integer CPU-time share per job (truncation loses < 1 ns
                // per advance; attribution is a profile, not a ledger).
                let per_job_cpu_ns = now.since(self.last_update).as_nanos() / n as u64;
                for j in &mut self.jobs {
                    // `inf - x` stays `inf`, so spinners are handled for free.
                    j.remaining -= per_job;
                    *self.cpu_by_pid.entry(j.pid).or_insert(0) += per_job_cpu_ns;
                }
            }
            // EWMA update: metrics held their pre-advance value over [last, now].
            let alpha = 1.0 - (-dt / self.tau).exp();
            self.load_avg += alpha * (n as f64 - self.load_avg);
            let busy = if n > 0 { 1.0 } else { 0.0 };
            self.cpu_util += alpha * (busy - self.cpu_util);
        }
        self.last_update = now;
    }

    /// Add a compute job. Returns the new epoch for scheduling a
    /// completion check.
    pub(crate) fn add_job(&mut self, now: SimTime, pid: Pid, work: f64) -> u64 {
        self.advance(now);
        self.jobs.push(Job {
            pid,
            remaining: work,
        });
        self.cpu_epoch += 1;
        self.cpu_epoch
    }

    /// Remove the job of `pid` (e.g., because the process was killed).
    /// Returns the new epoch if a job was removed.
    pub(crate) fn remove_job(&mut self, now: SimTime, pid: Pid) -> Option<u64> {
        self.advance(now);
        let before = self.jobs.len();
        self.jobs.retain(|j| j.pid != pid);
        if self.jobs.len() != before {
            self.cpu_epoch += 1;
            Some(self.cpu_epoch)
        } else {
            None
        }
    }

    /// Drop all jobs (host crash). Returns the pids whose jobs were dropped.
    pub(crate) fn clear_jobs(&mut self, now: SimTime) -> Vec<Pid> {
        self.advance(now);
        self.cpu_epoch += 1;
        self.jobs.drain(..).map(|j| j.pid).collect()
    }

    /// Complete all finished jobs at `now` and return their pids.
    /// Also bumps the epoch since membership changed.
    pub(crate) fn take_finished(&mut self, now: SimTime) -> Vec<Pid> {
        self.advance(now);
        let mut done = Vec::new();
        self.jobs.retain(|j| {
            if j.remaining <= WORK_EPS {
                done.push(j.pid);
                false
            } else {
                true
            }
        });
        if !done.is_empty() {
            self.cpu_epoch += 1;
        }
        done
    }

    /// Virtual instant at which the next job will finish under the current
    /// job set, or `None` if no finite job is present.
    ///
    /// The returned instant is rounded *up* to a whole nanosecond so that at
    /// the scheduled event the job's remaining work is `<= WORK_EPS`.
    pub(crate) fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        debug_assert_eq!(self.last_update, now, "advance() before next_completion()");
        let n = self.jobs.len();
        if n == 0 {
            return None;
        }
        let min_rem = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if !min_rem.is_finite() {
            return None;
        }
        if min_rem <= WORK_EPS {
            return Some(now);
        }
        let secs = min_rem * n as f64 / self.cfg.speed;
        let ns = (secs * 1e9).ceil() + 1.0;
        Some(now + SimDuration::from_nanos(ns as u64))
    }

    /// Current metrics snapshot (advances metrics to `now` first).
    pub(crate) fn snapshot(&mut self, now: SimTime) -> HostSnapshot {
        self.advance(now);
        HostSnapshot {
            up: self.up,
            speed: self.cfg.speed,
            runnable: self.jobs.len() as u32,
            load_avg: self.load_avg,
            cpu_util: self.cpu_util,
            clock_skew_ns: self.clock_skew_ns,
        }
    }

    /// Number of currently runnable jobs.
    #[cfg(test)]
    pub(crate) fn runnable(&self) -> usize {
        self.jobs.len()
    }

    /// Total finite work remaining across jobs (test/diagnostic hook for the
    /// work-conservation property).
    #[cfg(test)]
    pub(crate) fn finite_work_remaining(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.jobs
            .iter()
            .map(|j| j.remaining)
            .filter(|r| r.is_finite())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostState {
        HostState::new(HostConfig::new("test"), SimDuration::from_secs(5))
    }

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 2.0);
        let done = h.next_completion(t(0.0)).unwrap();
        // 2 work units at speed 1.0 => 2 seconds (+1ns rounding).
        let secs = done.as_secs_f64();
        assert!((secs - 2.0).abs() < 1e-6, "{secs}");
        assert!(h.take_finished(done).contains(&Pid(1)));
        assert_eq!(h.runnable(), 0);
    }

    #[test]
    fn two_jobs_share_the_cpu() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 1.0);
        h.add_job(t(0.0), Pid(2), 1.0);
        let done = h.next_completion(t(0.0)).unwrap();
        // Each gets half the CPU: 1 unit takes 2 seconds.
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
        let finished = h.take_finished(done);
        assert_eq!(finished.len(), 2);
    }

    #[test]
    fn background_spinner_halves_throughput() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), f64::INFINITY); // background load
        h.add_job(t(0.0), Pid(2), 1.0);
        let done = h.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6, "{done:?}");
        let finished = h.take_finished(done);
        assert_eq!(finished, vec![Pid(2)]);
        // Spinner remains runnable and never completes.
        assert_eq!(h.runnable(), 1);
        assert!(h.next_completion(done).is_none());
    }

    #[test]
    fn faster_host_finishes_sooner() {
        let mut h = HostState::new(
            HostConfig::new("fast").speed(2.0),
            SimDuration::from_secs(5),
        );
        h.add_job(t(0.0), Pid(1), 2.0);
        let done = h.next_completion(t(0.0)).unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn job_arrival_mid_run_slows_progress() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 2.0);
        // After 1s alone, 1 unit remains. A second job arrives.
        h.add_job(t(1.0), Pid(2), 1.0);
        // Both progress at 0.5/s: p2 done after 2 more seconds, p1 too.
        let done = h.next_completion(t(1.0)).unwrap();
        assert!((done.as_secs_f64() - 3.0).abs() < 1e-6, "{done:?}");
        let finished = h.take_finished(done);
        assert_eq!(finished.len(), 2);
    }

    #[test]
    fn remove_job_restores_full_speed() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 4.0);
        h.add_job(t(0.0), Pid(2), f64::INFINITY);
        // At t=2, p1 has done 1 unit (half speed); kill the spinner.
        assert!(h.remove_job(t(2.0), Pid(2)).is_some());
        let done = h.next_completion(t(2.0)).unwrap();
        // 3 units remain at full speed => t=5.
        assert!((done.as_secs_f64() - 5.0).abs() < 1e-6, "{done:?}");
    }

    #[test]
    fn remove_missing_job_is_noop() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 1.0);
        assert!(h.remove_job(t(0.5), Pid(99)).is_none());
        assert_eq!(h.runnable(), 1);
    }

    #[test]
    fn clear_jobs_reports_pids() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 1.0);
        h.add_job(t(0.0), Pid(2), f64::INFINITY);
        let dropped = h.clear_jobs(t(0.5));
        assert_eq!(dropped, vec![Pid(1), Pid(2)]);
        assert_eq!(h.runnable(), 0);
    }

    #[test]
    fn metrics_reflect_load() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), f64::INFINITY);
        h.add_job(t(0.0), Pid(2), f64::INFINITY);
        // After many time constants the EWMA converges to 2 jobs, util 1.0.
        let snap = h.snapshot(t(100.0));
        assert!(snap.load_avg > 1.9, "{snap:?}");
        assert!(snap.cpu_util > 0.99);
        assert_eq!(snap.runnable, 2);
        // Clear and idle for a long time: both decay towards 0.
        h.clear_jobs(t(100.0));
        let snap = h.snapshot(t(200.0));
        assert!(snap.load_avg < 0.1, "{snap:?}");
        assert!(snap.cpu_util < 0.1);
        assert_eq!(snap.runnable, 0);
    }

    #[test]
    fn work_is_conserved_under_membership_changes() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 10.0);
        h.add_job(t(1.0), Pid(2), 10.0);
        h.add_job(t(2.0), Pid(3), 10.0);
        h.remove_job(t(3.0), Pid(2));
        // Total CPU seconds delivered by t=3: 3s at speed 1.0 = 3 units,
        // minus whatever p2 still had when removed.
        // p2 ran [1,3): [1,2) at 1/2, [2,3) at 1/3 => 0.8333 done, 9.1667 left.
        // p1+p3 remaining = 30 - 3 (total delivered) + nothing... easier:
        // delivered work by t=3 equals 3.0 total; p2 took 5/6 with it.
        let rem = h.finite_work_remaining(t(3.0));
        let expected = 20.0 - (3.0 - 5.0 / 6.0);
        assert!(
            (rem - expected).abs() < 1e-9,
            "rem={rem} expected={expected}"
        );
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = HostConfig::new("bad").speed(0.0);
    }

    #[test]
    fn next_completion_handles_tiny_residue() {
        let mut h = host();
        h.add_job(t(0.0), Pid(1), 1.0);
        let done = h.next_completion(t(0.0)).unwrap();
        // At the completion event the job must actually be finished.
        let fin = h.take_finished(done);
        assert_eq!(fin, vec![Pid(1)]);
    }
}

//! The discrete-event kernel: virtual clock, event queue, and the
//! thread-handoff scheduler that runs simulated processes one at a time.
//!
//! # Determinism
//!
//! Events are ordered by `(time, sequence-number)`, the sequence number
//! being a monotone insertion counter, so ties break in insertion order.
//! Exactly one process executes at any moment: the kernel resumes a process
//! and then waits for it to issue its next blocking syscall before touching
//! any other process. Per-process RNGs are seeded from the kernel seed and
//! the deterministically-assigned pid. Two runs with the same seed and the
//! same program therefore produce identical traces.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::cpu::{HostConfig, HostSnapshot, HostState};
use crate::ids::{Addr, HostId, Pid, Port};
use crate::msg::{Msg, Payload};
use crate::process::{Ctx, ProcessBody, Resume, Syscall};
use crate::time::{SimDuration, SimTime};

/// Network timing model.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// One-way latency between processes on the same host.
    pub latency_local: SimDuration,
    /// One-way latency between different hosts on the LAN.
    pub latency_remote: SimDuration,
    /// Link bandwidth in bytes per second (adds `size/bandwidth` per message).
    pub bandwidth: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Values typical of a late-90s switched 100 Mbit/s workstation LAN,
        // the environment of the paper's Winner cluster.
        NetConfig {
            latency_local: SimDuration::from_micros(20),
            latency_remote: SimDuration::from_micros(150),
            bandwidth: 12_500_000.0, // 100 Mbit/s
        }
    }
}

/// Kernel configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Master seed for all per-process RNGs.
    pub seed: u64,
    /// Network timing model.
    pub net: NetConfig,
    /// Time constant of the per-host load-average EWMA.
    pub load_ewma_tau: SimDuration,
    /// Safety valve: the run aborts (panics) after this many events, which
    /// catches accidental infinite event loops in tests.
    pub max_events: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            seed: 0xC0FFEE,
            net: NetConfig::default(),
            load_ewma_tau: SimDuration::from_secs(2),
            max_events: 50_000_000,
        }
    }
}

/// Counters accumulated over a run; useful in benchmarks and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Events processed.
    pub events: u64,
    /// Messages delivered to a mailbox or a blocked receiver.
    pub msgs_delivered: u64,
    /// Messages dropped (dead destination, down host, or partition).
    pub msgs_dropped: u64,
    /// RST notifications generated for sends to closed ports.
    pub rsts: u64,
    /// Processes spawned.
    pub spawned: u64,
    /// Processes killed (by `kill`, host crash, or kernel shutdown).
    pub killed: u64,
}

/// A fault-injection command, schedulable at an absolute virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Kill one process.
    KillProcess(Pid),
    /// Crash a host: every process on it dies, its ports unbind.
    CrashHost(HostId),
    /// Bring a crashed host back up (empty).
    RestartHost(HostId),
    /// Block or heal the link between two hosts.
    Partition(HostId, HostId, bool),
    /// Block or heal every link between `side` and the rest of the host
    /// set (a named-sides group partition, not just one pairwise link).
    /// Healing removes exactly the pairwise blocks the matching block
    /// installed.
    PartitionGroup {
        /// Hosts on one side of the cut.
        side: Vec<HostId>,
        /// `true` to install the cut, `false` to heal it.
        blocked: bool,
    },
    /// Block or restore message flow in one direction only: requests from
    /// `from` still reach `to`'s peers, but nothing flows back (the
    /// asymmetric gray failure that makes a live server look dead).
    DropOneWay {
        /// Messages *from* this host are dropped …
        from: HostId,
        /// … when addressed to this host.
        to: HostId,
        /// `true` to install the drop, `false` to restore the direction.
        blocked: bool,
    },
    /// Degrade the link between two hosts (both directions): add one-way
    /// latency and drop each message with probability `drop_milli`/1000
    /// (drawn from the kernel's own seeded RNG, so runs stay
    /// deterministic). Zero latency and zero drop restores the link.
    DegradeLink {
        /// One endpoint.
        a: HostId,
        /// The other endpoint.
        b: HostId,
        /// Extra one-way latency added on top of the latency model.
        extra_latency: SimDuration,
        /// Per-message drop probability in thousandths (0..=1000).
        drop_milli: u32,
    },
    /// Skew the host's wall clock by this many nanoseconds relative to
    /// virtual time. Surfaces in [`crate::HostSnapshot::clock_skew_ns`];
    /// readers that stamp wall-clock times (Winner load reports) pick it
    /// up from there. Zero restores an honest clock.
    SetClockSkew(HostId, i64),
    /// Override the one-way latency between two hosts (e.g. a WAN link
    /// between two LANs, or a degrading path). `None` restores the
    /// default model.
    SetLinkLatency(HostId, HostId, Option<SimDuration>),
}

#[derive(Debug)]
enum EventKind {
    Start(Pid),
    Timer { pid: Pid, epoch: u64 },
    Deliver(Msg),
    CpuCheck { host: HostId, epoch: u64 },
    Fault(Fault),
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, o: &Self) -> bool {
        self.time == o.time && self.seq == o.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Event {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(o.time, o.seq))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Block {
    Sleep,
    Recv,
    Compute,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Created; thread not yet started.
    NotStarted,
    /// Waiting in a blocking syscall.
    Blocked(Block),
    /// Has a pending resume and sits in the runnable queue.
    Runnable,
    /// Currently executing (the kernel is waiting for its next syscall).
    Running,
    /// Exited or killed.
    Dead,
}

struct Proc {
    name: String,
    host: HostId,
    status: Status,
    mailbox: VecDeque<Msg>,
    resume_tx: Option<Sender<Resume>>,
    join: Option<JoinHandle<()>>,
    body: Option<ProcessBody>,
    /// Invalidates in-flight timer events.
    timer_epoch: u64,
    ports: Vec<Port>,
    pending: Option<Resume>,
}

/// The simulation kernel. See the module docs for the execution model.
pub struct Kernel {
    cfg: KernelConfig,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    hosts: Vec<HostState>,
    port_map: BTreeMap<(HostId, Port), Pid>,
    next_port: Vec<u16>,
    procs: Vec<Proc>,
    runnable: VecDeque<Pid>,
    syscall_rx: Receiver<(Pid, Syscall)>,
    syscall_tx: Sender<(Pid, Syscall)>,
    partitions: BTreeSet<(HostId, HostId)>,
    /// Directional drops: messages from `.0` to `.1` are discarded.
    oneway_blocks: BTreeSet<(HostId, HostId)>,
    /// Degraded (gray) links: extra one-way latency plus a per-message
    /// drop probability in thousandths, keyed by the ordered host pair.
    degraded: BTreeMap<(HostId, HostId), (SimDuration, u32)>,
    /// Kernel-owned RNG for degraded-link drop draws, seeded from the
    /// config seed so the fault layer stays a pure function of the seed.
    net_rng: rand::rngs::SmallRng,
    /// Per-link one-way latency overrides (WAN modelling).
    link_latency: BTreeMap<(HostId, HostId), SimDuration>,
    stats: KernelStats,
    panicked: Option<(Pid, String)>,
    tracer: Option<Tracer>,
    event_hook: Option<EventHook>,
    profile_hook: Option<ProfileHook>,
    policy: Option<Box<dyn SchedulePolicy>>,
    peaks: Peaks,
}

/// A tracing callback: `(virtual time, line)`.
pub type Tracer = Box<dyn FnMut(SimTime, &str)>;

/// A structured process/host lifecycle event, the machine-readable twin of
/// the textual [`Tracer`] lines. Fired at the same five points: spawn,
/// kill, exit, host crash, host restart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelEvent {
    /// A process was spawned (its start event is scheduled).
    ProcSpawn {
        /// Pid assigned to the new process.
        pid: Pid,
        /// Process name.
        name: String,
        /// Host the process runs on.
        host: HostId,
    },
    /// A process was killed (by `kill`, host crash, or kernel shutdown).
    ProcKill {
        /// Pid of the killed process.
        pid: Pid,
        /// Process name.
        name: String,
        /// Host the process ran on.
        host: HostId,
    },
    /// A process body returned (clean exit).
    ProcExit {
        /// Pid of the exited process.
        pid: Pid,
        /// Process name.
        name: String,
        /// Host the process ran on.
        host: HostId,
    },
    /// A host crashed; every process on it was killed first (each with its
    /// own `ProcKill` event).
    HostCrash(HostId),
    /// A crashed host came back up (empty).
    HostRestart(HostId),
    /// A partition was installed: messages between `a`-side and `b`-side
    /// hosts are dropped (only `a` → `b` when `oneway`).
    PartitionStart {
        /// Hosts on the first side (the `from` side for one-way drops).
        a: Vec<HostId>,
        /// Hosts on the other side.
        b: Vec<HostId>,
        /// Whether only the `a` → `b` direction is blocked.
        oneway: bool,
    },
    /// A partition healed: the matching `PartitionStart` cut is gone.
    PartitionHeal {
        /// Hosts on the first side (the `from` side for one-way drops).
        a: Vec<HostId>,
        /// Hosts on the other side.
        b: Vec<HostId>,
        /// Whether only the `a` → `b` direction had been blocked.
        oneway: bool,
    },
    /// A link was degraded (extra latency and/or probabilistic drop).
    LinkDegraded(HostId, HostId),
    /// A degraded link was restored to the plain latency model.
    LinkRestored(HostId, HostId),
    /// A host's wall clock was skewed by this many nanoseconds (zero
    /// restores an honest clock).
    ClockSkewSet(HostId, i64),
}

/// A structured event callback: `(virtual time, event)`.
pub type EventHook = Box<dyn FnMut(SimTime, &KernelEvent)>;

/// A profiling mark: the kernel is entering or leaving one unit of work.
/// Marks never nest — every `OpBegin` is followed by the matching `OpEnd`
/// before the next `OpBegin` — so a consumer needs no stack: remember the
/// wall instant at `OpBegin`, charge the difference to `op` at `OpEnd`.
///
/// The kernel itself never reads a wall clock (the simulation is a pure
/// function of the seed; see `ldft-lint` rule D1). Wall-clock cost
/// accounting is the *consumer's* job: the `perf` bench bin installs a
/// hook that timestamps each mark and aggregates per-op totals into
/// `BENCH_results.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileMark {
    /// The kernel is about to execute the named unit of work.
    OpBegin(&'static str),
    /// The unit of work finished.
    OpEnd(&'static str),
}

/// A profiling callback, invoked with paired [`ProfileMark`]s around every
/// event dispatch (`event.*`), every process syscall (`sys.*`), and every
/// scheduler handoff wait (`sched.handoff` — the kernel parked on the
/// process thread's next syscall, which is the wall-clock ceiling of the
/// whole simulator).
pub type ProfileHook = Box<dyn FnMut(ProfileMark)>;

/// Which kind of nondeterminism point a [`SchedulePolicy`] is resolving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChoiceKind {
    /// Two or more events share the head timestamp of the event queue;
    /// the policy picks which executes first (insertion order otherwise).
    EventTie,
    /// Two or more processes hold a pending resume; the policy picks
    /// which the scheduler runs next (FIFO otherwise).
    RunnableTie,
}

/// One candidate at a scheduling choice point, described by the entities
/// its execution can touch. This is the *footprint* the `ldft-explore`
/// independence relation is computed from, so the fields are deliberately
/// conservative: `wakes` is true whenever executing the candidate might
/// resume a process or push a new event (including the RST bounced off a
/// closed port), and `global` marks events whose effect is not confined
/// to one process/host (fault injection).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChoiceCandidate {
    /// Stable event-kind label (`start`, `timer`, `deliver`, `cpu_check`,
    /// `fault`, `run`).
    pub label: &'static str,
    /// The process this candidate targets (delivery destination, timer
    /// owner, started/run process), if resolvable.
    pub pid: Option<Pid>,
    /// The host the target lives on.
    pub host: Option<HostId>,
    /// For deliveries: the sending process (the RST destination when the
    /// target port turns out closed).
    pub from: Option<Pid>,
    /// For deliveries: the sending host.
    pub from_host: Option<HostId>,
    /// Executing this candidate may resume a process or schedule a new
    /// event (conservatively true when the kernel cannot prove otherwise).
    pub wakes: bool,
    /// The effect is global (fault injection): dependent on everything.
    pub global: bool,
    /// Executing this candidate may draw from the kernel's seeded network
    /// RNG (a delivery crossing a degraded link with a drop probability).
    /// Two draws never commute: swapping them shifts the RNG stream.
    pub draws_rng: bool,
}

/// A hook resolving the kernel's scheduling nondeterminism points. The
/// kernel consults the installed policy whenever more than one candidate
/// is admissible — same-timestamp event-queue ties and runnable-queue
/// order — passing the candidates **in default order** (insertion /
/// FIFO), so a policy that always returns `0` reproduces the un-hooked
/// kernel byte for byte. Out-of-range returns are clamped.
///
/// This is the seam `ldft-explore` drives to enumerate alternative
/// schedules; `ldft-lint`'s selfcheck pins that every kernel tie-break
/// site routes through [`Kernel::next_event`]/[`Kernel::next_runnable`]
/// so new nondeterminism points cannot bypass it.
pub trait SchedulePolicy {
    /// Pick the index of the candidate to execute next.
    fn choose(&mut self, kind: ChoiceKind, now: SimTime, candidates: &[ChoiceCandidate]) -> usize;
}

/// Per-process virtual-time CPU attribution, one entry per process that
/// ever held the CPU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcCpu {
    /// The process.
    pub pid: Pid,
    /// Its name at spawn time.
    pub name: String,
    /// The host whose CPU it consumed.
    pub host: HostId,
    /// Virtual nanoseconds of CPU delivered to it (processor-sharing
    /// share, independent of host speed).
    pub cpu_ns: u64,
}

/// A deterministic profile of one run: who consumed the virtual CPU, and
/// how deep the kernel's queues ever got. Everything here is a pure
/// function of the seed — two same-seed runs snapshot identical profiles —
/// so the values are safe to feed into the byte-compared `obs` exports.
/// Wall-clock accounting deliberately lives outside this snapshot (see
/// [`ProfileMark`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// CPU attribution per process, ordered by pid.
    pub cpu_by_proc: Vec<ProcCpu>,
    /// Peak length of the runnable queue (processes with a pending resume
    /// waiting for the scheduler) — the virtual analogue of scheduler lag.
    pub runnable_peak: u64,
    /// Peak length of the event queue.
    pub event_queue_peak: u64,
    /// Peak depth of any process mailbox (messages queued behind a
    /// receiver that wasn't blocked in `recv`).
    pub mailbox_peak: u64,
}

/// Running queue-depth maxima, updated inline at the push sites (plain
/// fields so the updates stay legal under split borrows of `Kernel`).
#[derive(Clone, Copy, Debug, Default)]
struct Peaks {
    runnable: u64,
    event_queue: u64,
    mailbox: u64,
}

fn pair(a: HostId, b: HostId) -> (HostId, HostId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

enum Flow {
    Reply(Resume),
    Block,
    Exited,
}

impl Kernel {
    /// Create a kernel with the given configuration.
    pub fn new(cfg: KernelConfig) -> Self {
        install_quiet_kill_hook();
        let (syscall_tx, syscall_rx) = channel();
        let net_rng = {
            use rand::SeedableRng as _;
            // Domain-separated from the per-process RNG streams.
            rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0x6E65_745F_6472_6F70)
        };
        Kernel {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            hosts: Vec::new(),
            port_map: BTreeMap::new(),
            next_port: Vec::new(),
            procs: Vec::new(),
            runnable: VecDeque::new(),
            syscall_rx,
            syscall_tx,
            partitions: BTreeSet::new(),
            oneway_blocks: BTreeSet::new(),
            degraded: BTreeMap::new(),
            net_rng,
            link_latency: BTreeMap::new(),
            stats: KernelStats::default(),
            panicked: None,
            tracer: None,
            event_hook: None,
            profile_hook: None,
            policy: None,
            peaks: Peaks::default(),
        }
    }

    /// Create a kernel with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Kernel::new(KernelConfig {
            seed,
            ..KernelConfig::default()
        })
    }

    /// Register a simulated workstation. Hosts can only be added before or
    /// between runs.
    pub fn add_host(&mut self, cfg: HostConfig) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(HostState::new(cfg, self.cfg.load_ewma_tau));
        self.next_port.push(1024);
        id
    }

    /// Convenience: add `n` identical hosts of unit speed.
    pub fn add_hosts(&mut self, n: usize) -> Vec<HostId> {
        (0..n)
            .map(|i| self.add_host(HostConfig::new(format!("node{i}"))))
            .collect()
    }

    /// All registered host ids.
    pub fn host_ids(&self) -> Vec<HostId> {
        (0..self.hosts.len() as u32).map(HostId).collect()
    }

    /// Spawn a process on `host`, starting at the current virtual time.
    pub fn spawn(
        &mut self,
        host: HostId,
        name: impl Into<String>,
        body: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> Pid {
        self.spawn_at(self.now, host, name, Box::new(body))
    }

    /// Spawn a process whose execution starts at absolute time `at`.
    pub fn spawn_at(
        &mut self,
        at: SimTime,
        host: HostId,
        name: impl Into<String>,
        body: ProcessBody,
    ) -> Pid {
        assert!((host.0 as usize) < self.hosts.len(), "unknown host {host}");
        let pid = Pid(self.procs.len() as u32);
        self.procs.push(Proc {
            name: name.into(),
            host,
            status: Status::NotStarted,
            mailbox: VecDeque::new(),
            resume_tx: None,
            join: None,
            body: Some(body),
            timer_epoch: 0,
            ports: Vec::new(),
            pending: None,
        });
        self.stats.spawned += 1;
        let pname = self.procs[pid.0 as usize].name.clone();
        self.trace(&format!("spawn {pid} {pname} on {host}"));
        self.emit_proc(pid, |pid, name, host| KernelEvent::ProcSpawn {
            pid,
            name,
            host,
        });
        self.push_event(at.max(self.now), EventKind::Start(pid));
        pid
    }

    /// Schedule a fault-injection command at absolute time `at`.
    pub fn schedule_fault(&mut self, at: SimTime, fault: Fault) {
        self.push_event(at.max(self.now), EventKind::Fault(fault));
    }

    /// Install a tracing callback invoked with `(time, line)` for notable
    /// kernel events. Intended for debugging.
    pub fn set_tracer(&mut self, f: impl FnMut(SimTime, &str) + 'static) {
        self.tracer = Some(Box::new(f));
    }

    /// Install a structured event callback invoked with `(time, event)` at
    /// the same lifecycle points the textual tracer covers. At most one
    /// hook is installed; a second call replaces the first.
    pub fn set_event_hook(&mut self, f: impl FnMut(SimTime, &KernelEvent) + 'static) {
        self.event_hook = Some(Box::new(f));
    }

    /// Install a profiling callback fired with paired [`ProfileMark`]s
    /// around every event dispatch, syscall, and scheduler handoff. At most
    /// one hook is installed; a second call replaces the first. The hook
    /// runs on the driver thread and must not call back into the kernel.
    pub fn set_profile_hook(&mut self, f: impl FnMut(ProfileMark) + 'static) {
        self.profile_hook = Some(Box::new(f));
    }

    /// Install a [`SchedulePolicy`] resolving the kernel's scheduling
    /// nondeterminism points (same-timestamp event ties and runnable-queue
    /// order). At most one policy is installed; a second call replaces the
    /// first. With no policy — or a policy that always picks index 0 — the
    /// kernel behaves exactly as before the hook existed.
    pub fn set_schedule_policy(&mut self, p: impl SchedulePolicy + 'static) {
        self.policy = Some(Box::new(p));
    }

    /// Remove any installed [`SchedulePolicy`], restoring default order.
    pub fn clear_schedule_policy(&mut self) {
        self.policy = None;
    }

    /// Snapshot the deterministic run profile: per-process virtual CPU
    /// attribution and the kernel queue-depth peaks seen so far.
    pub fn profile(&self) -> KernelProfile {
        let mut cpu_by_proc = Vec::new();
        for (hi, hs) in self.hosts.iter().enumerate() {
            for (&pid, &cpu_ns) in &hs.cpu_by_pid {
                let name = self
                    .procs
                    .get(pid.0 as usize)
                    .map(|p| p.name.clone())
                    .unwrap_or_default();
                cpu_by_proc.push(ProcCpu {
                    pid,
                    name,
                    host: HostId(hi as u32),
                    cpu_ns,
                });
            }
        }
        cpu_by_proc.sort_by_key(|c| c.pid);
        KernelProfile {
            cpu_by_proc,
            runnable_peak: self.peaks.runnable,
            event_queue_peak: self.peaks.event_queue,
            mailbox_peak: self.peaks.mailbox,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Whether a process has exited or been killed.
    pub fn proc_dead(&self, pid: Pid) -> bool {
        self.procs
            .get(pid.0 as usize)
            .is_none_or(|p| p.status == Status::Dead)
    }

    /// Load metrics for a host, evaluated at the current virtual time
    /// (driver/test-side equivalent of `Ctx::host_info`).
    pub fn host_snapshot(&mut self, host: HostId) -> Option<HostSnapshot> {
        let now = self.now;
        self.hosts.get_mut(host.0 as usize).map(|h| h.snapshot(now))
    }

    /// Run until the event queue is exhausted and no process is runnable.
    /// Returns the final virtual time.
    pub fn run_until_idle(&mut self) -> SimTime {
        self.run_inner(None, |_| false)
    }

    /// Run until the given process exits (or the queue empties first).
    pub fn run_until_exit(&mut self, pid: Pid) -> SimTime {
        self.run_inner(None, move |k| k.proc_dead(pid))
    }

    /// Run until virtual time reaches `deadline` (or the queue empties).
    /// The clock is advanced to exactly `deadline` when it is reached.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.run_inner(Some(deadline), |_| false);
        if self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Run for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    fn run_inner(&mut self, deadline: Option<SimTime>, stop: impl Fn(&Kernel) -> bool) -> SimTime {
        loop {
            self.drain_runnable();
            if let Some((pid, msg)) = self.panicked.take() {
                let name = &self.procs[pid.0 as usize].name;
                // ldft-lint: allow(P1, by design: re-raises a sim-process panic on the driver thread so bugs fail the run instead of vanishing with one thread; re-audited 2026-08 — the kernel driver is host-side test harness and P1's exception contract does not apply, expiry 2027-06)
                panic!("simulated process {pid} ({name}) panicked: {msg}");
            }
            if stop(self) {
                break;
            }
            let Some(Reverse(ev)) = self.events.peek() else {
                break;
            };
            if let Some(d) = deadline {
                if ev.time > d {
                    break;
                }
            }
            let Some(ev) = self.next_event() else {
                break;
            };
            debug_assert!(ev.time >= self.now, "event in the past");
            self.now = ev.time;
            self.stats.events += 1;
            if self.stats.events > self.cfg.max_events {
                // ldft-lint: allow(P1, by design: explicit runaway-loop guard; stopping silently would report results from a truncated run; re-audited 2026-08 — a Result return would let callers ignore a truncated run, expiry 2027-06)
                panic!(
                    "simnet: exceeded max_events={} at {:?} — runaway event loop?",
                    self.cfg.max_events, self.now
                );
            }
            if self.profile_hook.is_some() {
                let op = Kernel::event_op(&ev.kind);
                self.mark(ProfileMark::OpBegin(op));
                self.handle_event(ev.kind);
                self.mark(ProfileMark::OpEnd(op));
            } else {
                self.handle_event(ev.kind);
            }
        }
        self.now
    }

    // ------------------------------------------------------------------
    // Scheduling choice points
    //
    // These two functions are the ONLY places the kernel pops the event
    // queue or the runnable queue (the lint selfcheck pins this), so an
    // installed SchedulePolicy sees every nondeterminism point. With no
    // policy both reduce to the historical pop: heap order for events,
    // FIFO for runnables — and tied candidates the policy did not pick
    // are re-pushed with their original (time, seq) keys, so choosing
    // index 0 is byte-identical to having no policy at all.
    // ------------------------------------------------------------------

    /// Pop the next event, letting the installed policy resolve
    /// same-timestamp ties. Returns `None` when the queue is empty.
    fn next_event(&mut self) -> Option<Event> {
        let Reverse(head) = self.events.pop()?;
        if self.policy.is_none() {
            return Some(head);
        }
        let mut tied = vec![head];
        while let Some(Reverse(peek)) = self.events.peek() {
            if peek.time != tied[0].time {
                break;
            }
            let Some(Reverse(e)) = self.events.pop() else {
                break;
            };
            tied.push(e);
        }
        let idx = if tied.len() > 1 {
            let cands: Vec<ChoiceCandidate> =
                tied.iter().map(|e| self.event_candidate(e)).collect();
            let now = self.now;
            match self.policy.take() {
                Some(mut p) => {
                    let i = p
                        .choose(ChoiceKind::EventTie, now, &cands)
                        .min(tied.len() - 1);
                    self.policy = Some(p);
                    i
                }
                None => 0,
            }
        } else {
            0
        };
        let chosen = tied.remove(idx);
        for e in tied {
            self.events.push(Reverse(e));
        }
        Some(chosen)
    }

    /// Pop the next runnable process, letting the installed policy pick
    /// among all queued processes. Returns `None` when the queue is empty.
    fn next_runnable(&mut self) -> Option<Pid> {
        if self.policy.is_none() || self.runnable.len() <= 1 {
            return self.runnable.pop_front();
        }
        let cands: Vec<ChoiceCandidate> = self
            .runnable
            .iter()
            .map(|&pid| ChoiceCandidate {
                label: "run",
                pid: Some(pid),
                host: self.procs.get(pid.0 as usize).map(|p| p.host),
                from: None,
                from_host: None,
                wakes: true,
                global: false,
                draws_rng: false,
            })
            .collect();
        let now = self.now;
        let idx = match self.policy.take() {
            Some(mut p) => {
                let i = p
                    .choose(ChoiceKind::RunnableTie, now, &cands)
                    .min(self.runnable.len() - 1);
                self.policy = Some(p);
                i
            }
            None => 0,
        };
        self.runnable.remove(idx)
    }

    /// Conservative execution footprint of a queued event, for the
    /// independence relation (see [`ChoiceCandidate`] field docs).
    fn event_candidate(&self, ev: &Event) -> ChoiceCandidate {
        let mut c = ChoiceCandidate {
            label: Kernel::event_op(&ev.kind)
                .strip_prefix("event.")
                .unwrap_or("event"),
            pid: None,
            host: None,
            from: None,
            from_host: None,
            wakes: false,
            global: false,
            draws_rng: false,
        };
        match &ev.kind {
            EventKind::Start(pid) => {
                c.pid = Some(*pid);
                if let Some(p) = self.procs.get(pid.0 as usize) {
                    c.host = Some(p.host);
                    c.wakes = p.status == Status::NotStarted
                        && self.hosts.get(p.host.0 as usize).is_some_and(|h| h.up);
                }
            }
            EventKind::Timer { pid, epoch } => {
                c.pid = Some(*pid);
                if let Some(p) = self.procs.get(pid.0 as usize) {
                    c.host = Some(p.host);
                    c.wakes = p.timer_epoch == *epoch && matches!(p.status, Status::Blocked(_));
                }
            }
            EventKind::Deliver(msg) => {
                c.from = Some(msg.from);
                c.from_host = Some(msg.from_host);
                match msg.to {
                    Addr::Endpoint(h, port) => {
                        c.host = Some(h);
                        c.draws_rng = msg.from_host != h
                            && self
                                .degraded
                                .get(&pair(msg.from_host, h))
                                .is_some_and(|&(_, d)| d > 0);
                        match self.port_map.get(&(h, port)) {
                            Some(&pid) => {
                                c.pid = Some(pid);
                                c.wakes = self
                                    .procs
                                    .get(pid.0 as usize)
                                    .is_some_and(|p| p.status == Status::Blocked(Block::Recv));
                            }
                            None => {
                                // Closed port: executing this bounces an RST
                                // (a new event) back at the sender.
                                c.wakes = true;
                            }
                        }
                    }
                    Addr::Pid(pid) => {
                        c.pid = Some(pid);
                        if let Some(p) = self.procs.get(pid.0 as usize) {
                            c.host = Some(p.host);
                            c.wakes = p.status == Status::Blocked(Block::Recv);
                            c.draws_rng = msg.from_host != p.host
                                && self
                                    .degraded
                                    .get(&pair(msg.from_host, p.host))
                                    .is_some_and(|&(_, d)| d > 0);
                        }
                    }
                }
            }
            EventKind::CpuCheck { host, epoch } => {
                c.host = Some(*host);
                c.wakes = self
                    .hosts
                    .get(host.0 as usize)
                    .is_some_and(|h| h.up && h.cpu_epoch == *epoch);
            }
            EventKind::Fault(_) => {
                c.wakes = true;
                c.global = true;
            }
        }
        c
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
        self.peaks.event_queue = self.peaks.event_queue.max(self.events.len() as u64);
    }

    fn mark(&mut self, m: ProfileMark) {
        if let Some(h) = self.profile_hook.as_mut() {
            h(m);
        }
    }

    /// Stable op label for an event, used in profile marks.
    fn event_op(kind: &EventKind) -> &'static str {
        match kind {
            EventKind::Start(_) => "event.start",
            EventKind::Timer { .. } => "event.timer",
            EventKind::Deliver(_) => "event.deliver",
            EventKind::CpuCheck { .. } => "event.cpu_check",
            EventKind::Fault(_) => "event.fault",
        }
    }

    /// Stable op label for a syscall, used in profile marks.
    fn syscall_op(sc: &Syscall) -> &'static str {
        match sc {
            Syscall::Sleep(_) => "sys.sleep",
            Syscall::Compute(_) => "sys.compute",
            Syscall::Send { .. } => "sys.send",
            Syscall::Recv { .. } => "sys.recv",
            Syscall::TryRecv => "sys.try_recv",
            Syscall::BindPort => "sys.bind_port",
            Syscall::BindPortExact(_) => "sys.bind_port",
            Syscall::UnbindPort(_) => "sys.unbind_port",
            Syscall::Spawn { .. } => "sys.spawn",
            Syscall::Kill(_) => "sys.kill",
            Syscall::CrashHost(_) => "sys.crash_host",
            Syscall::RestartHost(_) => "sys.restart_host",
            Syscall::HostInfo(_) => "sys.host_info",
            Syscall::Partition { .. } => "sys.partition",
            Syscall::Exit => "sys.exit",
            Syscall::Panicked(_) => "sys.exit",
        }
    }

    fn trace(&mut self, line: &str) {
        if let Some(t) = self.tracer.as_mut() {
            t(self.now, line);
        }
    }

    fn emit(&mut self, ev: KernelEvent) {
        if let Some(h) = self.event_hook.as_mut() {
            h(self.now, &ev);
        }
    }

    fn emit_proc(&mut self, pid: Pid, make: fn(Pid, String, HostId) -> KernelEvent) {
        if self.event_hook.is_some() {
            let p = &self.procs[pid.0 as usize];
            let (name, host) = (p.name.clone(), p.host);
            self.emit(make(pid, name, host));
        }
    }

    fn handle_event(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(pid) => self.start_process(pid),
            EventKind::Timer { pid, epoch } => self.fire_timer(pid, epoch),
            EventKind::Deliver(msg) => self.deliver(msg),
            EventKind::CpuCheck { host, epoch } => self.cpu_check(host, epoch),
            EventKind::Fault(f) => self.apply_fault(f),
        }
    }

    fn start_process(&mut self, pid: Pid) {
        let host;
        {
            let p = &mut self.procs[pid.0 as usize];
            if p.status != Status::NotStarted {
                return;
            }
            host = p.host;
        }
        if !self.hosts[host.0 as usize].up {
            // Boot on a dead host fails silently; the process never runs.
            let p = &mut self.procs[pid.0 as usize];
            p.status = Status::Dead;
            p.body = None;
            return;
        }
        let p = &mut self.procs[pid.0 as usize];
        let Some(body) = p.body.take() else {
            // NotStarted without a body is a bookkeeping bug; reap the
            // process instead of panicking the whole sim.
            p.status = Status::Dead;
            return;
        };
        let (resume_tx, resume_rx) = channel();
        let mut ctx = Ctx::new(pid, host, self.cfg.seed, self.syscall_tx.clone(), resume_rx);
        let thread_name = format!("sim-{pid}-{}", p.name);
        let spawned = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                if ctx.wait_start().is_ok() {
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
                    match result {
                        Ok(()) => ctx.send_exit(),
                        Err(payload) => ctx.report_panic(payload),
                    }
                }
            });
        let join = match spawned {
            Ok(join) => join,
            Err(e) => {
                // The OS refused to give us a thread; the process can never
                // run. Reap it rather than panicking the driver.
                eprintln!("simnet: failed to spawn simulation thread for {pid}: {e}");
                p.status = Status::Dead;
                return;
            }
        };
        p.resume_tx = Some(resume_tx);
        p.join = Some(join);
        p.pending = Some(Resume::Start { now: self.now });
        p.status = Status::Runnable;
        self.runnable.push_back(pid);
        self.peaks.runnable = self.peaks.runnable.max(self.runnable.len() as u64);
    }

    fn fire_timer(&mut self, pid: Pid, epoch: u64) {
        let now = self.now;
        let p = &mut self.procs[pid.0 as usize];
        if p.status == Status::Dead || p.timer_epoch != epoch {
            return;
        }
        match p.status {
            Status::Blocked(Block::Sleep) => {
                p.pending = Some(Resume::Done { now });
            }
            Status::Blocked(Block::Recv) => {
                p.pending = Some(Resume::Empty { now });
            }
            _ => return, // stale
        }
        p.timer_epoch += 1;
        p.status = Status::Runnable;
        self.runnable.push_back(pid);
        self.peaks.runnable = self.peaks.runnable.max(self.runnable.len() as u64);
    }

    fn deliver(&mut self, msg: Msg) {
        let target = match msg.to {
            Addr::Endpoint(h, port) => {
                let hs = match self.hosts.get(h.0 as usize) {
                    Some(hs) => hs,
                    None => {
                        self.stats.msgs_dropped += 1;
                        return;
                    }
                };
                if !hs.up || self.link_blocked(msg.from_host, h) {
                    self.stats.msgs_dropped += 1;
                    return;
                }
                match self.port_map.get(&(h, port)) {
                    Some(&pid) => pid,
                    None => {
                        // Port closed, host up: bounce an RST to the sender.
                        self.stats.rsts += 1;
                        self.send_rst(msg.from, h, port);
                        return;
                    }
                }
            }
            Addr::Pid(pid) => pid,
        };
        let dst_host = match self.procs.get(target.0 as usize) {
            Some(p) if p.status != Status::Dead => p.host,
            _ => {
                self.stats.msgs_dropped += 1;
                return;
            }
        };
        if !self.hosts[dst_host.0 as usize].up || self.link_blocked(msg.from_host, dst_host) {
            self.stats.msgs_dropped += 1;
            return;
        }
        // Gray-failure drop: one draw per delivered message (this is the
        // single path every message funnels through).
        if msg.from_host != dst_host {
            if let Some(&(_, drop_milli)) = self.degraded.get(&pair(msg.from_host, dst_host)) {
                if drop_milli > 0 {
                    use rand::Rng as _;
                    if self.net_rng.random_range(0..1000u32) < drop_milli {
                        self.stats.msgs_dropped += 1;
                        return;
                    }
                }
            }
        }
        self.stats.msgs_delivered += 1;
        let now = self.now;
        let p = &mut self.procs[target.0 as usize];
        if p.status == Status::Blocked(Block::Recv) {
            p.timer_epoch += 1; // cancel any recv timeout
            p.pending = Some(Resume::Msg { now, msg });
            p.status = Status::Runnable;
            self.runnable.push_back(target);
            self.peaks.runnable = self.peaks.runnable.max(self.runnable.len() as u64);
        } else {
            p.mailbox.push_back(msg);
            self.peaks.mailbox = self.peaks.mailbox.max(p.mailbox.len() as u64);
        }
    }

    fn send_rst(&mut self, to: Pid, host: HostId, port: Port) {
        let sender = match self.procs.get(to.0 as usize) {
            Some(p) if p.status != Status::Dead => p,
            _ => return,
        };
        let lat = self.latency_between(sender.host, host);
        let rst = Msg {
            from: to,
            from_host: host,
            to: Addr::Pid(to),
            payload: Payload::Rst { host, port },
        };
        let at = self.now + lat;
        self.push_event(at, EventKind::Deliver(rst));
    }

    fn cpu_check(&mut self, host: HostId, epoch: u64) {
        let now = self.now;
        let hs = &mut self.hosts[host.0 as usize];
        if hs.cpu_epoch != epoch || !hs.up {
            return;
        }
        let finished = hs.take_finished(now);
        for pid in finished {
            let p = &mut self.procs[pid.0 as usize];
            debug_assert_eq!(p.status, Status::Blocked(Block::Compute));
            p.pending = Some(Resume::Done { now });
            p.status = Status::Runnable;
            self.runnable.push_back(pid);
            self.peaks.runnable = self.peaks.runnable.max(self.runnable.len() as u64);
        }
        self.reschedule_cpu(host);
    }

    fn reschedule_cpu(&mut self, host: HostId) {
        let now = self.now;
        let hs = &mut self.hosts[host.0 as usize];
        if !hs.up {
            return;
        }
        if let Some(t) = hs.next_completion(now) {
            let epoch = hs.cpu_epoch;
            self.push_event(t, EventKind::CpuCheck { host, epoch });
        }
    }

    /// Whether a message from `from` to `to` is currently cut off (by a
    /// symmetric partition or a directional drop).
    fn link_blocked(&self, from: HostId, to: HostId) -> bool {
        self.partitions.contains(&pair(from, to)) || self.oneway_blocks.contains(&(from, to))
    }

    fn apply_fault(&mut self, f: Fault) {
        match f {
            Fault::KillProcess(pid) => self.do_kill(pid),
            Fault::CrashHost(h) => self.do_crash_host(h),
            Fault::RestartHost(h) => {
                if let Some(hs) = self.hosts.get_mut(h.0 as usize) {
                    hs.up = true;
                }
                self.trace(&format!("restart {h}"));
                self.emit(KernelEvent::HostRestart(h));
            }
            Fault::Partition(a, b, blocked) => {
                if blocked {
                    self.partitions.insert(pair(a, b));
                } else {
                    self.partitions.remove(&pair(a, b));
                }
                self.trace(&format!(
                    "partition {a}-{b} {}",
                    if blocked { "cut" } else { "healed" }
                ));
                self.emit_partition(vec![a], vec![b], false, blocked);
            }
            Fault::PartitionGroup { side, blocked } => {
                let other: Vec<HostId> = self
                    .host_ids()
                    .into_iter()
                    .filter(|h| !side.contains(h))
                    .collect();
                for &a in &side {
                    for &b in &other {
                        if blocked {
                            self.partitions.insert(pair(a, b));
                        } else {
                            self.partitions.remove(&pair(a, b));
                        }
                    }
                }
                self.trace(&format!(
                    "partition-group {side:?} {}",
                    if blocked { "cut" } else { "healed" }
                ));
                self.emit_partition(side, other, false, blocked);
            }
            Fault::DropOneWay { from, to, blocked } => {
                if blocked {
                    self.oneway_blocks.insert((from, to));
                } else {
                    self.oneway_blocks.remove(&(from, to));
                }
                self.trace(&format!(
                    "oneway-drop {from}->{to} {}",
                    if blocked { "cut" } else { "healed" }
                ));
                self.emit_partition(vec![from], vec![to], true, blocked);
            }
            Fault::DegradeLink {
                a,
                b,
                extra_latency,
                drop_milli,
            } => {
                if extra_latency == SimDuration::ZERO && drop_milli == 0 {
                    self.degraded.remove(&pair(a, b));
                    self.trace(&format!("link {a}-{b} restored"));
                    self.emit(KernelEvent::LinkRestored(a, b));
                } else {
                    self.degraded
                        .insert(pair(a, b), (extra_latency, drop_milli.min(1000)));
                    self.trace(&format!(
                        "link {a}-{b} degraded +{extra_latency:?} drop {drop_milli}/1000"
                    ));
                    self.emit(KernelEvent::LinkDegraded(a, b));
                }
            }
            Fault::SetClockSkew(h, skew_ns) => {
                if let Some(hs) = self.hosts.get_mut(h.0 as usize) {
                    hs.clock_skew_ns = skew_ns;
                }
                self.trace(&format!("clock-skew {h} {skew_ns}ns"));
                self.emit(KernelEvent::ClockSkewSet(h, skew_ns));
            }
            Fault::SetLinkLatency(a, b, lat) => match lat {
                Some(d) => {
                    self.link_latency.insert(pair(a, b), d);
                }
                None => {
                    self.link_latency.remove(&pair(a, b));
                }
            },
        }
    }

    /// Emit the partition lifecycle event for a just-applied cut or heal.
    fn emit_partition(&mut self, a: Vec<HostId>, b: Vec<HostId>, oneway: bool, blocked: bool) {
        let ev = if blocked {
            KernelEvent::PartitionStart { a, b, oneway }
        } else {
            KernelEvent::PartitionHeal { a, b, oneway }
        };
        self.emit(ev);
    }

    /// Override the one-way latency between two hosts (symmetric). Used to
    /// model WAN links between LANs — the metacomputing scenario the paper
    /// lists as future work. Takes effect for messages sent after the call.
    pub fn set_link_latency(&mut self, a: HostId, b: HostId, latency: SimDuration) {
        self.link_latency.insert(pair(a, b), latency);
    }

    /// One-way latency for a message between two hosts under the current
    /// model (default local/remote, or a per-link override).
    fn latency_between(&self, a: HostId, b: HostId) -> SimDuration {
        let base = if let Some(&d) = self.link_latency.get(&pair(a, b)) {
            d
        } else if a == b {
            self.cfg.net.latency_local
        } else {
            self.cfg.net.latency_remote
        };
        // Gray-failure degradation stacks on top of whatever the healthy
        // link latency is, so restoring the link restores the old value.
        match self.degraded.get(&pair(a, b)) {
            Some(&(extra, _)) => base + extra,
            None => base,
        }
    }

    fn do_kill(&mut self, pid: Pid) {
        let (host, was_started, ports);
        {
            let Some(p) = self.procs.get_mut(pid.0 as usize) else {
                return;
            };
            if p.status == Status::Dead {
                return;
            }
            host = p.host;
            was_started = p.status != Status::NotStarted;
            p.status = Status::Dead;
            p.body = None;
            p.mailbox.clear();
            p.pending = None;
            p.timer_epoch += 1;
            ports = std::mem::take(&mut p.ports);
        }
        for port in ports {
            self.port_map.remove(&(host, port));
        }
        // Remove any CPU job and reschedule the host.
        let now = self.now;
        if self.hosts[host.0 as usize].remove_job(now, pid).is_some() {
            self.reschedule_cpu(host);
        }
        if was_started {
            if let Some(tx) = &self.procs[pid.0 as usize].resume_tx {
                let _ = tx.send(Resume::Killed);
            }
        }
        self.stats.killed += 1;
        self.trace(&format!("kill {pid}"));
        self.emit_proc(pid, |pid, name, host| KernelEvent::ProcKill {
            pid,
            name,
            host,
        });
    }

    fn do_crash_host(&mut self, h: HostId) {
        let Some(hs) = self.hosts.get_mut(h.0 as usize) else {
            return;
        };
        if !hs.up {
            return;
        }
        hs.up = false;
        let now = self.now;
        hs.clear_jobs(now);
        let victims: Vec<Pid> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.host == h && p.status != Status::Dead)
            .map(|(i, _)| Pid(i as u32))
            .collect();
        for pid in victims {
            self.do_kill(pid);
        }
        self.trace(&format!("crash {h}"));
        self.emit(KernelEvent::HostCrash(h));
    }

    // ------------------------------------------------------------------
    // Process execution
    // ------------------------------------------------------------------

    fn drain_runnable(&mut self) {
        while let Some(pid) = self.next_runnable() {
            self.run_process(pid);
            if self.panicked.is_some() {
                return;
            }
        }
    }

    fn run_process(&mut self, pid: Pid) {
        let resume = {
            let p = &mut self.procs[pid.0 as usize];
            if p.status != Status::Runnable {
                return; // killed while queued
            }
            p.status = Status::Running;
            match p.pending.take() {
                Some(r) => r,
                None => {
                    // Runnable without a pending resume is a scheduler
                    // bookkeeping bug; reap the process instead of
                    // panicking the whole sim.
                    p.status = Status::Dead;
                    return;
                }
            }
        };
        let Some(tx) = self.procs[pid.0 as usize].resume_tx.clone() else {
            self.procs[pid.0 as usize].status = Status::Dead;
            return;
        };
        if tx.send(resume).is_err() {
            // Thread is gone (should not happen for a live process).
            self.procs[pid.0 as usize].status = Status::Dead;
            return;
        }
        loop {
            self.mark(ProfileMark::OpBegin("sched.handoff"));
            let sc = self.wait_syscall(pid);
            self.mark(ProfileMark::OpEnd("sched.handoff"));
            let Some(sc) = sc else {
                self.do_kill(pid);
                return;
            };
            let op = Kernel::syscall_op(&sc);
            self.mark(ProfileMark::OpBegin(op));
            let flow = self.handle_syscall(pid, sc);
            self.mark(ProfileMark::OpEnd(op));
            match flow {
                Flow::Reply(r) => {
                    if tx.send(r).is_err() {
                        self.do_kill(pid);
                        return;
                    }
                }
                Flow::Block => return,
                Flow::Exited => return,
            }
        }
    }

    /// Wait for the next syscall from `expect`. `None` means the syscall
    /// channel closed — impossible while the kernel holds its own sender
    /// clone, but handled (by reaping the caller) rather than panicking.
    fn wait_syscall(&mut self, expect: Pid) -> Option<Syscall> {
        loop {
            let (pid, sc) = self.syscall_rx.recv().ok()?;
            if pid == expect {
                return Some(sc);
            }
            // A syscall from another process can only come from a thread
            // that is unwinding after being killed (its Ctx suppresses
            // everything once dead, but an Exit/Panicked raced the kill).
            debug_assert_eq!(
                self.procs[pid.0 as usize].status,
                Status::Dead,
                "unexpected concurrent syscall from live {pid}"
            );
        }
    }

    fn handle_syscall(&mut self, pid: Pid, sc: Syscall) -> Flow {
        let now = self.now;
        match sc {
            Syscall::Sleep(d) => {
                let p = &mut self.procs[pid.0 as usize];
                p.timer_epoch += 1;
                let epoch = p.timer_epoch;
                p.status = Status::Blocked(Block::Sleep);
                self.push_event(now + d, EventKind::Timer { pid, epoch });
                Flow::Block
            }
            Syscall::Compute(work) => {
                let host = self.procs[pid.0 as usize].host;
                self.procs[pid.0 as usize].status = Status::Blocked(Block::Compute);
                self.hosts[host.0 as usize].add_job(now, pid, work);
                self.reschedule_cpu(host);
                Flow::Block
            }
            Syscall::Send { to, data } => {
                self.do_send(pid, to, data);
                Flow::Reply(Resume::Ok { now })
            }
            Syscall::Recv { timeout } => {
                let p = &mut self.procs[pid.0 as usize];
                if let Some(msg) = p.mailbox.pop_front() {
                    return Flow::Reply(Resume::Msg { now, msg });
                }
                p.status = Status::Blocked(Block::Recv);
                p.timer_epoch += 1;
                if let Some(d) = timeout {
                    let epoch = p.timer_epoch;
                    self.push_event(now + d, EventKind::Timer { pid, epoch });
                }
                Flow::Block
            }
            Syscall::TryRecv => {
                let p = &mut self.procs[pid.0 as usize];
                match p.mailbox.pop_front() {
                    Some(msg) => Flow::Reply(Resume::Msg { now, msg }),
                    None => Flow::Reply(Resume::Empty { now }),
                }
            }
            Syscall::BindPort => {
                let host = self.procs[pid.0 as usize].host;
                let port = self.alloc_port(host);
                self.port_map.insert((host, port), pid);
                self.procs[pid.0 as usize].ports.push(port);
                Flow::Reply(Resume::PortV {
                    now,
                    port: Some(port),
                })
            }
            Syscall::BindPortExact(port) => {
                let host = self.procs[pid.0 as usize].host;
                if let std::collections::btree_map::Entry::Vacant(e) =
                    self.port_map.entry((host, port))
                {
                    e.insert(pid);
                    self.procs[pid.0 as usize].ports.push(port);
                    Flow::Reply(Resume::PortV {
                        now,
                        port: Some(port),
                    })
                } else {
                    Flow::Reply(Resume::PortV { now, port: None })
                }
            }
            Syscall::UnbindPort(port) => {
                let host = self.procs[pid.0 as usize].host;
                if self.port_map.get(&(host, port)) == Some(&pid) {
                    self.port_map.remove(&(host, port));
                    self.procs[pid.0 as usize].ports.retain(|&p| p != port);
                }
                Flow::Reply(Resume::Ok { now })
            }
            Syscall::Spawn { host, name, body } => {
                let child = self.spawn_at(now, host, name, body);
                Flow::Reply(Resume::PidV { now, pid: child })
            }
            Syscall::Kill(target) => {
                self.do_kill(target);
                if target == pid {
                    Flow::Exited // the kill already sent Resume::Killed
                } else {
                    Flow::Reply(Resume::Ok { now })
                }
            }
            Syscall::CrashHost(h) => {
                let self_host = self.procs[pid.0 as usize].host;
                self.do_crash_host(h);
                if self_host == h {
                    Flow::Exited
                } else {
                    Flow::Reply(Resume::Ok { now })
                }
            }
            Syscall::RestartHost(h) => {
                self.apply_fault(Fault::RestartHost(h));
                Flow::Reply(Resume::Ok { now })
            }
            Syscall::HostInfo(h) => {
                let snap = self.hosts.get_mut(h.0 as usize).map(|hs| hs.snapshot(now));
                Flow::Reply(Resume::Host { now, snap })
            }
            Syscall::Partition { a, b, blocked } => {
                self.apply_fault(Fault::Partition(a, b, blocked));
                Flow::Reply(Resume::Ok { now })
            }
            Syscall::Exit => {
                self.finish_process(pid);
                Flow::Exited
            }
            Syscall::Panicked(msg) => {
                self.finish_process(pid);
                self.panicked = Some((pid, msg));
                Flow::Exited
            }
        }
    }

    fn do_send(&mut self, from: Pid, to: Addr, data: Vec<u8>) {
        let from_host = self.procs[from.0 as usize].host;
        let dst_host = match to {
            Addr::Endpoint(h, _) => Some(h),
            Addr::Pid(p) => self.procs.get(p.0 as usize).map(|pr| pr.host),
        };
        let lat = match dst_host {
            Some(h) => self.latency_between(from_host, h),
            None => self.cfg.net.latency_remote,
        };
        let xfer = SimDuration::from_secs_f64(data.len() as f64 / self.cfg.net.bandwidth);
        let at = self.now + lat + xfer;
        let msg = Msg {
            from,
            from_host,
            to,
            payload: Payload::Data(data),
        };
        self.push_event(at, EventKind::Deliver(msg));
    }

    fn alloc_port(&mut self, host: HostId) -> Port {
        let hi = host.0 as usize;
        loop {
            let candidate = Port(self.next_port[hi]);
            self.next_port[hi] = self.next_port[hi].wrapping_add(1).max(1024);
            if !self.port_map.contains_key(&(host, candidate)) {
                return candidate;
            }
        }
    }

    /// Clean exit of a process (body returned or panicked): release
    /// resources but do not send any resume — the thread is finishing.
    fn finish_process(&mut self, pid: Pid) {
        let (host, ports);
        {
            let p = &mut self.procs[pid.0 as usize];
            if p.status == Status::Dead {
                return;
            }
            host = p.host;
            p.status = Status::Dead;
            p.mailbox.clear();
            p.pending = None;
            p.timer_epoch += 1;
            ports = std::mem::take(&mut p.ports);
        }
        for port in ports {
            self.port_map.remove(&(host, port));
        }
        let now = self.now;
        if self.hosts[host.0 as usize].remove_job(now, pid).is_some() {
            self.reschedule_cpu(host);
        }
        self.trace(&format!("exit {pid}"));
        self.emit_proc(pid, |pid, name, host| KernelEvent::ProcExit {
            pid,
            name,
            host,
        });
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        // Wake every parked thread by closing its resume channel, then join.
        let mut joins = Vec::new();
        for p in &mut self.procs {
            p.resume_tx = None; // closes the channel; recv() errors => Killed
            if let Some(j) = p.join.take() {
                joins.push(j);
            }
        }
        for j in joins {
            let _ = j.join();
        }
    }
}

// ---------------------------------------------------------------------
// Quiet panic handling for killed processes
// ---------------------------------------------------------------------

fn install_quiet_kill_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if crate::process::SUPPRESS_PANIC_REPORT.with(|s| s.get()) {
                return;
            }
            previous(info);
        }));
    });
}

impl Ctx {
    /// Called by the thread wrapper when the body panicked. If this process
    /// was killed, the panic is the expected unwind (e.g. `.unwrap()` on a
    /// syscall result) and is swallowed; otherwise it is forwarded to the
    /// kernel, which re-raises it on the main thread.
    pub(crate) fn report_panic(&mut self, payload: Box<dyn std::any::Any + Send>) {
        if self.is_dead() {
            return; // expected unwind after a kill
        }
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        self.send_panicked(msg);
    }
}

//! Virtual time for the simulation.
//!
//! Time is kept in integer nanoseconds to make event ordering exact and
//! reproducible: floating-point clock arithmetic would make event order
//! depend on accumulated rounding, which breaks determinism across
//! refactorings.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Add a duration, saturating at `SimTime::MAX`.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative, NaN, or infinite inputs are clamped: negatives and NaN to
    /// zero, `+inf` to `SimDuration::MAX`.
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN and negatives clamp to zero (note: `s <= 0.0` is false for
        // NaN, so spell the guard as "not positive").
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for rate computations and reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(o.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(o.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(10);
        assert_eq!(b.since(a).as_nanos(), 5);
        assert_eq!(a.since(b).as_nanos(), 0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(-3.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
    }

    #[test]
    fn display_formats_seconds() {
        let t = SimTime::from_nanos(1_500_000_000);
        assert_eq!(format!("{t}"), "1.500000");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}

//! Property tests for CosNaming names: stringify/parse are inverses for
//! arbitrary components (including all escapable characters), and the
//! parser never panics.

use cosnaming::{Name, NameComponent};
use proptest::prelude::*;

fn component() -> impl Strategy<Value = NameComponent> {
    // Components may contain the special characters . / \ which must be
    // escaped in the stringified form.
    let field = "[a-zA-Z0-9./\\\\ _-]{0,12}";
    (field, field)
        .prop_map(|(id, kind)| NameComponent::new(id, kind))
        .prop_filter("component must not be fully empty", |c| !c.is_empty())
}

fn name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(component(), 1..6).prop_map(Name)
}

proptest! {
    #[test]
    fn stringify_parse_round_trip(n in name()) {
        let s = n.stringify();
        let back = Name::parse(&s)
            .unwrap_or_else(|e| panic!("failed to reparse {s:?}: {e}"));
        prop_assert_eq!(n, back);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        let _ = Name::parse(&s);
    }

    #[test]
    fn cdr_round_trip(n in name()) {
        let bytes = cdr::to_bytes(&n);
        let back: Name = cdr::from_bytes(&bytes).unwrap();
        prop_assert_eq!(n, back);
    }

    #[test]
    fn split_first_reassembles(n in name()) {
        let (head, rest) = n.split_first().unwrap();
        let mut parts = vec![head.clone()];
        parts.extend(rest.0);
        prop_assert_eq!(Name(parts), n);
    }
}

//! The naming context servant and the shared naming tree.
//!
//! One naming server process holds one [`NamingTree`]; every context
//! (root and children created by `bind_new_context`) is a servant sharing
//! that tree. Besides the standard COS Naming operations, a context
//! supports **group bindings**: several object references registered under
//! one name. `resolve` on a group picks one member — using the Winner
//! system manager's load information when configured ([`LbMode::Winner`]),
//! or round-robin otherwise ([`LbMode::Plain`]). This is the paper's §2
//! design: load distribution inside the naming service, fully transparent
//! to clients, falling back to plain behaviour (and thus "at least the
//! same results as the unmodified naming service") when Winner is
//! unavailable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use orb::{reply, CallCtx, Exception, Ior, ObjectKey, Servant, SystemException};
use winner::SystemManagerClient;

use crate::iterator::BindingIterator;
use crate::name::{Name, NameComponent};
use crate::protocol::{
    ops, AlreadyBound, Binding, BindingType, EmptyGroup, InvalidName, NotEmpty, NotFound,
    NotFoundReason, BINDING_ITERATOR_TYPE, NAMING_CONTEXT_TYPE,
};

/// How group resolution picks a member.
#[derive(Clone, Debug)]
pub enum LbMode {
    /// Load-oblivious round-robin — the behaviour of an unmodified naming
    /// service with multiple registrations.
    Plain,
    /// Ask the Winner system manager for the best host among the group
    /// members' hosts; fall back to round-robin if Winner is unreachable.
    Winner {
        /// Reference to `Winner::SystemManager`.
        system_manager: Ior,
    },
}

/// A binding in a context.
#[derive(Clone, Debug)]
enum Entry {
    /// A plain object binding.
    Object(Ior),
    /// A child context. `node` is set for contexts local to this server
    /// (traversable); foreign contexts are stored but cannot be traversed.
    Context { node: Option<u64>, ior: Ior },
    /// A service group: multiple replicas under one name. `revision`
    /// counts membership changes (bind/unbind), so a coordinator can
    /// prove to replicas that its view of the group is current.
    Group {
        members: Vec<Ior>,
        rr: usize,
        revision: u64,
    },
}

struct Node {
    entries: BTreeMap<NameComponent, Entry>,
}

/// The naming tree shared by all context servants of one server process.
pub struct NamingTree {
    nodes: BTreeMap<u64, Node>,
    /// Local context object keys → tree nodes (for `bind_context`).
    by_key: BTreeMap<ObjectKey, u64>,
    next_node: u64,
    /// Resolution statistics (read by tests and the demo).
    pub resolves: u64,
    /// Group resolves that used Winner successfully.
    pub winner_picks: u64,
    /// Group resolves that fell back to round-robin.
    pub fallback_picks: u64,
}

impl NamingTree {
    /// A tree with a root node (id 0).
    pub fn new() -> Rc<RefCell<NamingTree>> {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            0,
            Node {
                entries: BTreeMap::new(),
            },
        );
        Rc::new(RefCell::new(NamingTree {
            nodes,
            by_key: BTreeMap::new(),
            next_node: 1,
            resolves: 0,
            winner_picks: 0,
            fallback_picks: 0,
        }))
    }
}

/// A naming context servant: a view onto one node of the shared tree.
pub struct NamingContext {
    tree: Rc<RefCell<NamingTree>>,
    node: u64,
    mode: LbMode,
}

/// The servant's tree node is gone: the context was destroyed while a
/// client still held its reference. COS Naming surfaces this as
/// `OBJECT_NOT_EXIST`, not a server crash.
fn dead_context() -> Exception {
    SystemException::object_not_exist("naming context no longer exists").into()
}

impl NamingContext {
    /// The root context of a tree.
    pub fn root(tree: Rc<RefCell<NamingTree>>, mode: LbMode) -> Self {
        NamingContext {
            tree,
            node: 0,
            mode,
        }
    }

    fn child(&self, node: u64) -> Self {
        NamingContext {
            tree: self.tree.clone(),
            node,
            mode: self.mode.clone(),
        }
    }

    /// Follow all but the last component from this node through local
    /// child contexts; returns the parent node and the final component.
    fn walk(&self, name: &Name) -> Result<(u64, NameComponent), Exception> {
        if name.is_empty() {
            return Err(InvalidName.raise());
        }
        let tree = self.tree.borrow();
        let mut node = self.node;
        let comps = &name.0;
        for (i, comp) in comps[..comps.len() - 1].iter().enumerate() {
            let n = tree.nodes.get(&node).ok_or_else(dead_context)?;
            match n.entries.get(comp) {
                Some(Entry::Context {
                    node: Some(child), ..
                }) => node = *child,
                Some(Entry::Context { node: None, .. }) | Some(_) => {
                    return Err(NotFound {
                        why: NotFoundReason::NotContext,
                        rest_of_name: Name(comps[i..].to_vec()),
                    }
                    .raise())
                }
                None => {
                    return Err(NotFound {
                        why: NotFoundReason::MissingNode,
                        rest_of_name: Name(comps[i..].to_vec()),
                    }
                    .raise())
                }
            }
        }
        Ok((node, comps[comps.len() - 1].clone()))
    }

    fn bind(&self, name: &Name, entry: Entry) -> Result<(), Exception> {
        let (node, last) = self.walk(name)?;
        let mut tree = self.tree.borrow_mut();
        let entries = &mut tree.nodes.get_mut(&node).ok_or_else(dead_context)?.entries;
        if entries.contains_key(&last) {
            return Err(AlreadyBound.raise());
        }
        entries.insert(last, entry);
        Ok(())
    }

    fn rebind(&self, name: &Name, entry: Entry) -> Result<(), Exception> {
        let (node, last) = self.walk(name)?;
        let mut tree = self.tree.borrow_mut();
        let entries = &mut tree.nodes.get_mut(&node).ok_or_else(dead_context)?.entries;
        match entries.get(&last) {
            Some(Entry::Context { .. }) => Err(NotFound {
                why: NotFoundReason::NotObject,
                rest_of_name: Name(vec![last]),
            }
            .raise()),
            _ => {
                entries.insert(last, entry);
                Ok(())
            }
        }
    }

    /// The heart of the paper: pick a group member, preferring the
    /// best-performing host as reported by Winner.
    fn pick_member(
        &self,
        call: &mut CallCtx<'_>,
        name: &NameComponent,
        node: u64,
    ) -> Result<Ior, Exception> {
        // Snapshot the member list without holding the borrow across the
        // nested Winner call.
        let members: Vec<Ior> = {
            let tree = self.tree.borrow();
            match tree.nodes.get(&node).and_then(|n| n.entries.get(name)) {
                Some(Entry::Group { members, .. }) => members.clone(),
                // The caller just saw a group here; anything else means the
                // tree changed under us — an internal bug, not a panic.
                _ => {
                    return Err(
                        SystemException::internal("group entry vanished mid-dispatch").into(),
                    )
                }
            }
        };
        let obs = call.orb.obs().cloned();
        if let Some(o) = &obs {
            o.observe("naming.group_size", members.len() as u64);
        }
        if members.is_empty() {
            return Err(EmptyGroup.raise());
        }
        if let LbMode::Winner { system_manager } = &self.mode {
            let mut hosts: Vec<u32> = members.iter().map(|m| m.host.0).collect();
            hosts.sort_unstable();
            hosts.dedup();
            let client = SystemManagerClient::from_ior(system_manager.clone());
            match client.select(call.orb, call.ctx, &hosts) {
                Ok(Ok(Some(host))) => {
                    if let Some(m) = members.iter().find(|m| m.host.0 == host) {
                        self.tree.borrow_mut().winner_picks += 1;
                        if let Some(o) = &obs {
                            o.counter_add("naming.winner_picks", 1);
                        }
                        return Ok(m.clone());
                    }
                }
                Ok(Ok(None)) | Ok(Err(_)) => {
                    // No fresh load data or Winner down: fall through to
                    // round-robin — never worse than the plain service.
                }
                Err(killed) => return Err(SystemException::comm_failure(killed.to_string()).into()),
            }
        }
        // Plain mode, or Winner fallback: round-robin over members in
        // host order. The order is sorted (not registration order) so the
        // plain service is genuinely load-oblivious — registration order
        // can correlate with load, which would smuggle load-awareness
        // into the baseline.
        if let Some(o) = &obs {
            o.counter_add("naming.fallback_picks", 1);
        }
        let mut tree = self.tree.borrow_mut();
        tree.fallback_picks += 1;
        let Some(Entry::Group { members, rr, .. }) = tree
            .nodes
            .get_mut(&node)
            .ok_or_else(dead_context)?
            .entries
            .get_mut(name)
        else {
            return Err(SystemException::internal("group entry vanished mid-dispatch").into());
        };
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by_key(|&i| (members[i].host, members[i].port, members[i].key));
        let pick = members[order[*rr % members.len()]].clone();
        *rr += 1;
        Ok(pick)
    }

    fn resolve(&self, call: &mut CallCtx<'_>, name: &Name) -> Result<Ior, Exception> {
        let (node, last) = self.walk(name)?;
        self.tree.borrow_mut().resolves += 1;
        {
            let tree = self.tree.borrow();
            match tree
                .nodes
                .get(&node)
                .ok_or_else(dead_context)?
                .entries
                .get(&last)
            {
                None => {
                    return Err(NotFound {
                        why: NotFoundReason::MissingNode,
                        rest_of_name: Name(vec![last]),
                    }
                    .raise())
                }
                Some(Entry::Object(ior)) => return Ok(ior.clone()),
                Some(Entry::Context { ior, .. }) => return Ok(ior.clone()),
                Some(Entry::Group { .. }) => {}
            }
        }
        self.pick_member(call, &last, node)
    }
}

impl Servant for NamingContext {
    fn dispatch(
        &mut self,
        call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, Exception> {
        match op {
            ops::BIND => {
                let (name, ior): (Name, Ior) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.bind(&name, Entry::Object(ior))?;
                reply(&())
            }
            ops::REBIND => {
                let (name, ior): (Name, Ior) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.rebind(&name, Entry::Object(ior))?;
                reply(&())
            }
            ops::BIND_CONTEXT => {
                let (name, ior): (Name, Ior) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let node = self.tree.borrow().by_key.get(&ior.key).copied();
                self.bind(&name, Entry::Context { node, ior })?;
                reply(&())
            }
            ops::RESOLVE => {
                let (name,): (Name,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let start = call.ctx.now();
                let resolved = self.resolve(call, &name);
                if let Some(o) = call.orb.obs().cloned() {
                    o.counter_add("naming.resolves", 1);
                    o.observe("naming.resolve_ns", call.ctx.now().since(start).as_nanos());
                }
                let ior = resolved?;
                reply(&ior)
            }
            ops::UNBIND => {
                let (name,): (Name,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let (node, last) = self.walk(&name)?;
                let mut tree = self.tree.borrow_mut();
                let entries = &mut tree.nodes.get_mut(&node).ok_or_else(dead_context)?.entries;
                if entries.remove(&last).is_none() {
                    return Err(NotFound {
                        why: NotFoundReason::MissingNode,
                        rest_of_name: Name(vec![last]),
                    }
                    .raise());
                }
                reply(&())
            }
            ops::BIND_NEW_CONTEXT => {
                let (name,): (Name,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let (node, last) = self.walk(&name)?;
                // Create the child node.
                let child_node = {
                    let mut tree = self.tree.borrow_mut();
                    if tree
                        .nodes
                        .get(&node)
                        .ok_or_else(dead_context)?
                        .entries
                        .contains_key(&last)
                    {
                        return Err(AlreadyBound.raise());
                    }
                    let id = tree.next_node;
                    tree.next_node += 1;
                    tree.nodes.insert(
                        id,
                        Node {
                            entries: BTreeMap::new(),
                        },
                    );
                    id
                };
                // Activate a servant for it and bind.
                let servant = Rc::new(RefCell::new(self.child(child_node)));
                let key = call.poa.activate(NAMING_CONTEXT_TYPE, servant);
                let ior = call.orb.ior(NAMING_CONTEXT_TYPE, key);
                {
                    let mut tree = self.tree.borrow_mut();
                    tree.by_key.insert(key, child_node);
                    tree.nodes
                        .get_mut(&node)
                        .ok_or_else(dead_context)?
                        .entries
                        .insert(
                            last,
                            Entry::Context {
                                node: Some(child_node),
                                ior: ior.clone(),
                            },
                        );
                }
                reply(&ior)
            }
            ops::DESTROY => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                {
                    let tree = self.tree.borrow();
                    let node = tree.nodes.get(&self.node).ok_or_else(dead_context)?;
                    if !node.entries.is_empty() {
                        return Err(NotEmpty.raise());
                    }
                }
                let mut tree = self.tree.borrow_mut();
                tree.nodes.remove(&self.node);
                tree.by_key.remove(&call.key);
                call.poa.deactivate(call.key);
                reply(&())
            }
            ops::LIST => {
                let (how_many,): (u32,) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let mut bindings: Vec<Binding> = {
                    let tree = self.tree.borrow();
                    tree.nodes
                        .get(&self.node)
                        .ok_or_else(dead_context)?
                        .entries
                        .iter()
                        .map(|(comp, entry)| Binding {
                            name: Name(vec![comp.clone()]),
                            binding_type: match entry {
                                Entry::Context { .. } => BindingType::Context,
                                _ => BindingType::Object,
                            },
                        })
                        .collect()
                };
                bindings.sort_by_key(|a| a.name.stringify());
                let rest = bindings.split_off((how_many as usize).min(bindings.len()));
                let iterator = if rest.is_empty() {
                    None
                } else {
                    let servant = Rc::new(RefCell::new(BindingIterator::new(rest)));
                    let key = call.poa.activate(BINDING_ITERATOR_TYPE, servant);
                    Some(call.orb.ior(BINDING_ITERATOR_TYPE, key))
                };
                reply(&(bindings, iterator))
            }
            ops::BIND_GROUP_MEMBER => {
                let (name, ior): (Name, Ior) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let (node, last) = self.walk(&name)?;
                let mut tree = self.tree.borrow_mut();
                let entries = &mut tree.nodes.get_mut(&node).ok_or_else(dead_context)?.entries;
                match entries.get_mut(&last) {
                    None => {
                        entries.insert(
                            last,
                            Entry::Group {
                                members: vec![ior],
                                rr: 0,
                                revision: 1,
                            },
                        );
                    }
                    Some(Entry::Group {
                        members, revision, ..
                    }) => {
                        if members.contains(&ior) {
                            return Err(AlreadyBound.raise());
                        }
                        members.push(ior);
                        *revision += 1;
                    }
                    Some(_) => return Err(AlreadyBound.raise()),
                }
                reply(&())
            }
            ops::UNBIND_GROUP_MEMBER => {
                let (name, ior): (Name, Ior) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let (node, last) = self.walk(&name)?;
                let mut tree = self.tree.borrow_mut();
                let entries = &mut tree.nodes.get_mut(&node).ok_or_else(dead_context)?.entries;
                match entries.get_mut(&last) {
                    Some(Entry::Group {
                        members, revision, ..
                    }) => {
                        let before = members.len();
                        members.retain(|m| m != &ior);
                        if members.len() == before {
                            return Err(NotFound {
                                why: NotFoundReason::MissingNode,
                                rest_of_name: Name(vec![last]),
                            }
                            .raise());
                        }
                        *revision += 1;
                        reply(&())
                    }
                    _ => Err(NotFound {
                        why: NotFoundReason::MissingNode,
                        rest_of_name: Name(vec![last]),
                    }
                    .raise()),
                }
            }
            ops::GROUP_MEMBERS => {
                let (name,): (Name,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let (node, last) = self.walk(&name)?;
                let tree = self.tree.borrow();
                match tree
                    .nodes
                    .get(&node)
                    .ok_or_else(dead_context)?
                    .entries
                    .get(&last)
                {
                    Some(Entry::Group { members, .. }) => reply(&members.clone()),
                    _ => Err(NotFound {
                        why: NotFoundReason::MissingNode,
                        rest_of_name: Name(vec![last]),
                    }
                    .raise()),
                }
            }
            ops::GROUP_VIEW => {
                let (name,): (Name,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let (node, last) = self.walk(&name)?;
                let tree = self.tree.borrow();
                match tree
                    .nodes
                    .get(&node)
                    .ok_or_else(dead_context)?
                    .entries
                    .get(&last)
                {
                    Some(Entry::Group {
                        members, revision, ..
                    }) => reply(&(*revision, members.clone())),
                    _ => Err(NotFound {
                        why: NotFoundReason::MissingNode,
                        rest_of_name: Name(vec![last]),
                    }
                    .raise()),
                }
            }
            other => Err(SystemException::bad_operation(other).into()),
        }
    }
}

//! Wire protocol of the naming service: operation names, user exceptions,
//! and binding types, following the OMG COS Naming specification (plus the
//! group-binding extension that carries the paper's load distribution).

use cdr::{cdr_enum, cdr_struct};
use orb::{Exception, UserException};

use crate::name::Name;

/// Repository id of the (load-distributing) naming context interface.
pub const NAMING_CONTEXT_TYPE: &str = "IDL:CosNaming/NamingContext:1.0";
/// Repository id of the binding iterator interface.
pub const BINDING_ITERATOR_TYPE: &str = "IDL:CosNaming/BindingIterator:1.0";

/// The conventional port of the naming service (CORBA's IANA-registered
/// 2809), so clients can bootstrap with nothing but a host name.
pub const NAMING_PORT: simnet::Port = simnet::Port(2809);

/// Object key of the root context in a freshly booted naming server (the
/// first object activated in its adapter).
pub const ROOT_CONTEXT_KEY: orb::ObjectKey = orb::ObjectKey(1);

/// Operation names.
pub mod ops {
    /// `void bind(in Name n, in Object obj)`.
    pub const BIND: &str = "bind";
    /// `void rebind(in Name n, in Object obj)`.
    pub const REBIND: &str = "rebind";
    /// `void bind_context(in Name n, in NamingContext nc)`.
    pub const BIND_CONTEXT: &str = "bind_context";
    /// `Object resolve(in Name n)`.
    pub const RESOLVE: &str = "resolve";
    /// `void unbind(in Name n)`.
    pub const UNBIND: &str = "unbind";
    /// `NamingContext bind_new_context(in Name n)`.
    pub const BIND_NEW_CONTEXT: &str = "bind_new_context";
    /// `void destroy()`.
    pub const DESTROY: &str = "destroy";
    /// `void list(in unsigned long how_many, out BindingList bl, out BindingIterator bi)`.
    pub const LIST: &str = "list";
    /// Extension: `void bind_group_member(in Name n, in Object obj)` —
    /// adds a replica to a service group (creating the group).
    pub const BIND_GROUP_MEMBER: &str = "bind_group_member";
    /// Extension: `void unbind_group_member(in Name n, in Object obj)`.
    pub const UNBIND_GROUP_MEMBER: &str = "unbind_group_member";
    /// Extension: `IorSeq group_members(in Name n)`.
    pub const GROUP_MEMBERS: &str = "group_members";
    /// Extension: `IorSeq group_view(in Name n, out unsigned long long
    /// revision)` — the members plus the group's membership revision,
    /// bumped on every bind/unbind. Quorum coordinators carry the revision
    /// on writes so replicas can reject a stale view after a partition
    /// heals.
    pub const GROUP_VIEW: &str = "group_view";
    /// BindingIterator: `boolean next_one(out Binding b)`.
    pub const NEXT_ONE: &str = "next_one";
    /// BindingIterator: `boolean next_n(in unsigned long how_many, out BindingList bl)`.
    pub const NEXT_N: &str = "next_n";
}

cdr_enum!(
    /// Why a `resolve`/`bind` failed with `NotFound`.
    NotFoundReason {
        /// A component was missing entirely.
        MissingNode = 0,
        /// An intermediate component was bound to an object, not a context.
        NotContext = 1,
        /// The final component was a context where an object was expected.
        NotObject = 2,
    }
);

cdr_enum!(
    /// What a binding denotes.
    BindingType {
        /// An application object (or a service group).
        Object = 0,
        /// A child naming context.
        Context = 1,
    }
);

cdr_struct!(
    /// One entry in a `list` result.
    Binding {
        /// The binding's name relative to the listed context (one component).
        name: crate::name::Name,
        /// Object or context.
        binding_type: BindingType,
    }
);

/// `NotFound` user exception.
#[derive(Clone, Debug, PartialEq)]
pub struct NotFound {
    /// Failure reason.
    pub why: NotFoundReason,
    /// The part of the name that could not be followed.
    pub rest_of_name: Name,
}

impl NotFound {
    /// Repository id.
    pub const REPO_ID: &'static str = "IDL:CosNaming/NamingContext/NotFound:1.0";

    /// Raise as an ORB exception.
    pub fn raise(self) -> Exception {
        Exception::User(UserException::new(
            Self::REPO_ID,
            &(self.why, self.rest_of_name),
        ))
    }

    /// Extract from an ORB exception.
    pub fn extract(e: &Exception) -> Option<NotFound> {
        match e {
            Exception::User(u) if u.id == Self::REPO_ID => {
                let (why, rest_of_name) = u.members().ok()?;
                Some(NotFound { why, rest_of_name })
            }
            _ => None,
        }
    }
}

macro_rules! tag_exception {
    ($(#[$meta:meta])* $name:ident, $id:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
        pub struct $name;

        impl $name {
            /// Repository id.
            pub const REPO_ID: &'static str = $id;

            /// Raise as an ORB exception.
            pub fn raise(self) -> Exception {
                Exception::User(UserException::tag(Self::REPO_ID))
            }

            /// Whether `e` is this exception.
            pub fn matches(e: &Exception) -> bool {
                matches!(e, Exception::User(u) if u.id == Self::REPO_ID)
            }
        }
    };
}

tag_exception!(
    /// The name is already bound.
    AlreadyBound,
    "IDL:CosNaming/NamingContext/AlreadyBound:1.0"
);
tag_exception!(
    /// `destroy` on a non-empty context.
    NotEmpty,
    "IDL:CosNaming/NamingContext/NotEmpty:1.0"
);
tag_exception!(
    /// A structurally invalid name.
    InvalidName,
    "IDL:CosNaming/NamingContext/InvalidName:1.0"
);
tag_exception!(
    /// Extension: the group has no live members to resolve to.
    EmptyGroup,
    "IDL:CosNaming/LoadBalancedContext/EmptyGroup:1.0"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameComponent;

    #[test]
    fn not_found_round_trip() {
        let nf = NotFound {
            why: NotFoundReason::NotContext,
            rest_of_name: Name(vec![NameComponent::id("x")]),
        };
        let e = nf.clone().raise();
        assert_eq!(NotFound::extract(&e), Some(nf));
        assert!(!AlreadyBound::matches(&e));
    }

    #[test]
    fn tag_exceptions_match() {
        let e = AlreadyBound.raise();
        assert!(AlreadyBound::matches(&e));
        assert!(NotFound::extract(&e).is_none());
        assert!(NotEmpty::matches(&NotEmpty.raise()));
        assert!(InvalidName::matches(&InvalidName.raise()));
        assert!(EmptyGroup::matches(&EmptyGroup.raise()));
    }

    #[test]
    fn binding_round_trip() {
        let b = Binding {
            name: Name::simple("svc"),
            binding_type: BindingType::Object,
        };
        let back: Binding = cdr::from_bytes(&cdr::to_bytes(&b)).unwrap();
        assert_eq!(b, back);
    }
}

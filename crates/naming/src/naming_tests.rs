//! In-simulation tests of the naming service: standard COS Naming
//! behaviour, group bindings, and Winner-driven load-distributing resolve.

use std::sync::{Arc, Mutex};

use orb::{Ior, ObjectKey, Orb};
use simnet::{Fault, HostConfig, HostId, Kernel, Pid, Port, SimDuration, SimTime};
use winner::{BestPerformance, NodeManagerConfig, SystemManagerConfig};

use crate::client::NamingClient;
use crate::context::LbMode;
use crate::name::Name;
use crate::protocol::{AlreadyBound, EmptyGroup, NotFound};
use crate::server::run_naming_service;

type Cell<T> = Arc<Mutex<T>>;

fn cell<T: Default>() -> Cell<T> {
    Arc::new(Mutex::new(T::default()))
}

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

/// A dummy object reference living on `host` (no live server needed for
/// pure naming tests).
fn fake_ior(host: HostId, key: u64) -> Ior {
    Ior::new("IDL:Test/Svc:1.0", host, Port(4000), ObjectKey(key))
}

/// Boot hosts with a plain naming service on host 0.
fn boot_plain(sim: &mut Kernel, n: usize) -> Vec<HostId> {
    let hosts: Vec<_> = (0..n)
        .map(|i| sim.add_host(HostConfig::new(format!("ws{i}"))))
        .collect();
    let h0 = hosts[0];
    sim.spawn(h0, "naming", move |ctx| {
        let _ = run_naming_service(ctx, LbMode::Plain);
    });
    hosts
}

#[test]
fn bind_resolve_unbind_round_trip() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Vec<String>>();
    let o = out.clone();
    let target = fake_ior(hosts[1], 7);
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        let name = Name::simple("Calc");
        ns.bind(&mut orb, ctx, &name, &target).unwrap().unwrap();
        let obj = ns.resolve(&mut orb, ctx, &name).unwrap().unwrap();
        o.lock()
            .unwrap()
            .push(format!("resolved:{}", obj.ior == target));
        ns.unbind(&mut orb, ctx, &name).unwrap().unwrap();
        let gone = ns.resolve(&mut orb, ctx, &name).unwrap();
        o.lock().unwrap().push(format!(
            "gone:{}",
            NotFound::extract(&gone.unwrap_err()).is_some()
        ));
    });
    sim.run_until_exit(driver);
    assert_eq!(
        *out.lock().unwrap(),
        vec!["resolved:true".to_string(), "gone:true".to_string()]
    );
}

#[test]
fn bind_twice_raises_already_bound_and_rebind_replaces() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Vec<bool>>();
    let o = out.clone();
    let a = fake_ior(hosts[1], 1);
    let b = fake_ior(hosts[1], 2);
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        let name = Name::simple("Svc");
        ns.bind(&mut orb, ctx, &name, &a).unwrap().unwrap();
        let again = ns.bind(&mut orb, ctx, &name, &b).unwrap();
        o.lock()
            .unwrap()
            .push(AlreadyBound::matches(&again.unwrap_err()));
        ns.rebind(&mut orb, ctx, &name, &b).unwrap().unwrap();
        let got = ns.resolve(&mut orb, ctx, &name).unwrap().unwrap();
        o.lock().unwrap().push(got.ior == b);
    });
    sim.run_until_exit(driver);
    assert_eq!(*out.lock().unwrap(), vec![true, true]);
}

#[test]
fn nested_contexts_and_listing() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Vec<String>>();
    let o = out.clone();
    let svc = fake_ior(hosts[1], 5);
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        // Create apps/opt and bind apps/opt/solver.
        let apps = ns
            .bind_new_context(&mut orb, ctx, &Name::simple("apps"))
            .unwrap()
            .unwrap();
        apps.bind_new_context(&mut orb, ctx, &Name::simple("opt"))
            .unwrap()
            .unwrap();
        ns.bind(
            &mut orb,
            ctx,
            &Name::parse("apps/opt/solver").unwrap(),
            &svc,
        )
        .unwrap()
        .unwrap();
        // Multi-component resolve from the root.
        let got = ns
            .resolve_str(&mut orb, ctx, "apps/opt/solver")
            .unwrap()
            .unwrap();
        o.lock().unwrap().push(format!("deep:{}", got.ior == svc));
        // Listing the root: one binding ("apps", context).
        let (bl, it) = ns.list(&mut orb, ctx, 10).unwrap().unwrap();
        o.lock().unwrap().push(format!(
            "list:{}:{:?}:{}",
            bl.len(),
            bl[0].binding_type,
            it.is_none()
        ));
        // Destroy of a non-empty context fails.
        let denied = apps.destroy(&mut orb, ctx).unwrap();
        o.lock().unwrap().push(format!(
            "notempty:{}",
            crate::protocol::NotEmpty::matches(&denied.unwrap_err())
        ));
    });
    sim.run_until_exit(driver);
    assert_eq!(
        *out.lock().unwrap(),
        vec![
            "deep:true".to_string(),
            "list:1:Context:true".to_string(),
            "notempty:true".to_string()
        ]
    );
}

#[test]
fn list_pagination_via_iterator() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Vec<usize>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        for i in 0..5 {
            ns.bind(
                &mut orb,
                ctx,
                &Name::simple(format!("svc{i}")),
                &fake_ior(hosts[1], i),
            )
            .unwrap()
            .unwrap();
        }
        let (bl, it) = ns.list(&mut orb, ctx, 2).unwrap().unwrap();
        o.lock().unwrap().push(bl.len());
        let it = it.expect("iterator for the remaining 3");
        let batch = it.next_n(&mut orb, ctx, 2).unwrap().unwrap();
        o.lock().unwrap().push(batch.len());
        let one = it.next_one(&mut orb, ctx).unwrap().unwrap();
        o.lock().unwrap().push(one.is_some() as usize);
        let done = it.next_one(&mut orb, ctx).unwrap().unwrap();
        o.lock().unwrap().push(done.is_some() as usize);
        it.destroy(&mut orb, ctx).unwrap().unwrap();
        // After destroy the iterator is gone.
        let dead = it.next_one(&mut orb, ctx).unwrap();
        o.lock().unwrap().push(dead.is_err() as usize);
    });
    sim.run_until_exit(driver);
    assert_eq!(*out.lock().unwrap(), vec![2, 2, 1, 0, 1]);
}

#[test]
fn plain_group_resolution_round_robins() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 4);
    let out = cell::<Vec<u32>>();
    let o = out.clone();
    let members: Vec<Ior> = (1..4).map(|i| fake_ior(hosts[i], i as u64)).collect();
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        let name = Name::simple("Workers");
        for m in &members {
            ns.bind_group_member(&mut orb, ctx, &name, m)
                .unwrap()
                .unwrap();
        }
        for _ in 0..6 {
            let got = ns.resolve(&mut orb, ctx, &name).unwrap().unwrap();
            o.lock().unwrap().push(got.ior.host.0);
        }
    });
    sim.run_until_exit(driver);
    let picks = out.lock().unwrap().clone();
    assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
}

#[test]
fn group_member_management() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 3);
    let out = cell::<Vec<String>>();
    let o = out.clone();
    let m1 = fake_ior(hosts[1], 1);
    let m2 = fake_ior(hosts[2], 2);
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        let name = Name::simple("G");
        ns.bind_group_member(&mut orb, ctx, &name, &m1)
            .unwrap()
            .unwrap();
        ns.bind_group_member(&mut orb, ctx, &name, &m2)
            .unwrap()
            .unwrap();
        // Duplicate member registration is rejected.
        let dup = ns.bind_group_member(&mut orb, ctx, &name, &m1).unwrap();
        o.lock()
            .unwrap()
            .push(format!("dup:{}", AlreadyBound::matches(&dup.unwrap_err())));
        let members = ns.group_members(&mut orb, ctx, &name).unwrap().unwrap();
        o.lock().unwrap().push(format!("n:{}", members.len()));
        ns.unbind_group_member(&mut orb, ctx, &name, &m1)
            .unwrap()
            .unwrap();
        let members = ns.group_members(&mut orb, ctx, &name).unwrap().unwrap();
        o.lock().unwrap().push(format!("after:{}", members.len()));
        // Remove the last member: resolve now raises EmptyGroup.
        ns.unbind_group_member(&mut orb, ctx, &name, &m2)
            .unwrap()
            .unwrap();
        let r = ns.resolve(&mut orb, ctx, &name).unwrap();
        o.lock()
            .unwrap()
            .push(format!("empty:{}", EmptyGroup::matches(&r.unwrap_err())));
    });
    sim.run_until_exit(driver);
    assert_eq!(
        *out.lock().unwrap(),
        vec!["dup:true", "n:2", "after:1", "empty:true"]
    );
}

/// Full-stack test of the paper's mechanism: Winner-backed resolution
/// avoids hosts with background load, transparently to the client.
#[test]
fn winner_resolution_avoids_loaded_hosts() {
    let mut sim = Kernel::with_seed(3);
    let hosts: Vec<_> = (0..5)
        .map(|i| sim.add_host(HostConfig::new(format!("ws{i}"))))
        .collect();
    // Winner system manager on host 0.
    let sysmgr_ior = cell::<Option<String>>();
    let sm = sysmgr_ior.clone();
    sim.spawn(hosts[0], "winner-sysmgr", move |ctx| {
        let _ = winner::run_system_manager(
            ctx,
            SystemManagerConfig::default(),
            Box::new(BestPerformance),
            |i| {
                *sm.lock().unwrap() = Some(i.stringify());
            },
        );
    });
    // Node managers everywhere.
    for &h in &hosts {
        let sm = sysmgr_ior.clone();
        sim.spawn(h, "winner-nm", move |ctx| {
            while sm.lock().unwrap().is_none() {
                if ctx.sleep(secs(0.005)).is_err() {
                    return;
                }
            }
            let s = sm.lock().unwrap().clone().unwrap();
            let _ = winner::run_node_manager(
                ctx,
                NodeManagerConfig::new(Ior::destringify(&s).unwrap()),
            );
        });
    }
    // Load-distributing naming service on host 0.
    let sm = sysmgr_ior.clone();
    sim.spawn(hosts[0], "naming", move |ctx| {
        while sm.lock().unwrap().is_none() {
            if ctx.sleep(secs(0.005)).is_err() {
                return;
            }
        }
        let s = sm.lock().unwrap().clone().unwrap();
        let _ = run_naming_service(
            ctx,
            LbMode::Winner {
                system_manager: Ior::destringify(&s).unwrap(),
            },
        );
    });
    // Background load on hosts 1 and 2.
    for &h in &hosts[1..3] {
        sim.spawn(h, "spinner", |ctx| {
            let _ = ctx.spin_forever();
        });
    }
    let out = cell::<Vec<u32>>();
    let o = out.clone();
    let group_hosts = hosts.clone();
    let driver = sim.spawn(hosts[0], "driver", move |ctx| {
        ctx.sleep(secs(5.0)).unwrap(); // let Winner gather load reports
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(group_hosts[0]);
        let name = Name::simple("Workers");
        // One replica per host 1..=4.
        for (i, &h) in group_hosts[1..].iter().enumerate() {
            ns.bind_group_member(&mut orb, ctx, &name, &fake_ior(h, i as u64))
                .unwrap()
                .unwrap();
        }
        // Two resolves: both must land on the idle hosts 3 and 4, spread
        // by the reservation mechanism.
        for _ in 0..2 {
            let got = ns.resolve(&mut orb, ctx, &name).unwrap().unwrap();
            o.lock().unwrap().push(got.ior.host.0);
        }
    });
    sim.run_until_exit(driver);
    let picks = out.lock().unwrap().clone();
    assert_eq!(picks.len(), 2);
    assert!(picks.iter().all(|&h| h == 3 || h == 4), "{picks:?}");
    assert_ne!(picks[0], picks[1], "{picks:?}");
}

/// The paper's robustness claim: with Winner unreachable, the modified
/// naming service degrades to plain behaviour instead of failing.
#[test]
fn winner_fallback_when_system_manager_dies() {
    let mut sim = Kernel::with_seed(3);
    let hosts: Vec<_> = (0..3)
        .map(|i| sim.add_host(HostConfig::new(format!("ws{i}"))))
        .collect();
    let sysmgr_ior = cell::<Option<String>>();
    let sm = sysmgr_ior.clone();
    sim.spawn(hosts[0], "winner-sysmgr", move |ctx| {
        let _ = winner::run_system_manager(
            ctx,
            SystemManagerConfig::default(),
            Box::new(BestPerformance),
            |i| {
                *sm.lock().unwrap() = Some(i.stringify());
            },
        );
    });
    let sm = sysmgr_ior.clone();
    sim.spawn(hosts[0], "naming", move |ctx| {
        while sm.lock().unwrap().is_none() {
            if ctx.sleep(secs(0.005)).is_err() {
                return;
            }
        }
        let s = sm.lock().unwrap().clone().unwrap();
        let _ = run_naming_service(
            ctx,
            LbMode::Winner {
                system_manager: Ior::destringify(&s).unwrap(),
            },
        );
    });
    // Kill the system manager early (pid 0).
    sim.schedule_fault(SimTime::ZERO + secs(0.5), Fault::KillProcess(Pid(0)));
    let out = cell::<Vec<u32>>();
    let o = out.clone();
    let hs = hosts.clone();
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(1.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hs[0]);
        let name = Name::simple("Workers");
        for (i, &h) in hs[1..].iter().enumerate() {
            ns.bind_group_member(&mut orb, ctx, &name, &fake_ior(h, i as u64))
                .unwrap()
                .unwrap();
        }
        for _ in 0..4 {
            let got = ns.resolve(&mut orb, ctx, &name).unwrap().unwrap();
            o.lock().unwrap().push(got.ior.host.0);
        }
    });
    sim.run_until_exit(driver);
    // Round-robin fallback over hosts 1,2.
    assert_eq!(*out.lock().unwrap(), vec![1, 2, 1, 2]);
}

#[test]
fn resolve_str_rejects_invalid_names() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Option<bool>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        let r = ns.resolve_str(&mut orb, ctx, "a//b").unwrap();
        *o.lock().unwrap() = Some(crate::protocol::InvalidName::matches(&r.unwrap_err()));
    });
    sim.run_until_exit(driver);
    assert_eq!(*out.lock().unwrap(), Some(true));
}

#[test]
fn foreign_context_cannot_be_traversed_but_resolves_directly() {
    // Bind a context reference from a *different* naming server: it can be
    // resolved (returning the reference), but multi-component traversal
    // through it fails with NotFound{NotContext} — a documented limit.
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Vec<String>>();
    let o = out.clone();
    // A made-up foreign context reference (no such server needed for the
    // binding itself).
    let foreign = Ior::new(
        crate::protocol::NAMING_CONTEXT_TYPE,
        hosts[1],
        Port(2809),
        ObjectKey(1),
    );
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        ns.bind_context(&mut orb, ctx, &Name::simple("remote"), &foreign)
            .unwrap()
            .unwrap();
        // Direct resolve returns the foreign reference.
        let got = ns.resolve_str(&mut orb, ctx, "remote").unwrap().unwrap();
        o.lock()
            .unwrap()
            .push(format!("direct:{}", got.ior == foreign));
        // Traversal through it is refused.
        let r = ns.resolve_str(&mut orb, ctx, "remote/deeper").unwrap();
        let nf = NotFound::extract(&r.unwrap_err()).expect("NotFound");
        o.lock().unwrap().push(format!("traverse:{:?}", nf.why));
    });
    sim.run_until_exit(driver);
    assert_eq!(
        *out.lock().unwrap(),
        vec!["direct:true".to_string(), "traverse:NotContext".to_string()]
    );
}

#[test]
fn rebind_refuses_to_replace_a_context() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Option<bool>>();
    let o = out.clone();
    let obj = fake_ior(hosts[1], 9);
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        ns.bind_new_context(&mut orb, ctx, &Name::simple("ctx"))
            .unwrap()
            .unwrap();
        let r = ns
            .rebind(&mut orb, ctx, &Name::simple("ctx"), &obj)
            .unwrap();
        *o.lock().unwrap() = Some(NotFound::extract(&r.unwrap_err()).is_some());
    });
    sim.run_until_exit(driver);
    assert_eq!(*out.lock().unwrap(), Some(true));
}

#[test]
fn destroyed_context_raises_object_not_exist() {
    let mut sim = Kernel::with_seed(2);
    let hosts = boot_plain(&mut sim, 2);
    let out = cell::<Vec<bool>>();
    let o = out.clone();
    let driver = sim.spawn(hosts[1], "driver", move |ctx| {
        ctx.sleep(secs(0.01)).unwrap();
        let mut orb = Orb::init(ctx);
        let ns = NamingClient::root(hosts[0]);
        let child = ns
            .bind_new_context(&mut orb, ctx, &Name::simple("tmp"))
            .unwrap()
            .unwrap();
        // Unbind the entry, then destroy the (now empty, unreferenced)
        // context object itself.
        ns.unbind(&mut orb, ctx, &Name::simple("tmp"))
            .unwrap()
            .unwrap();
        child.destroy(&mut orb, ctx).unwrap().unwrap();
        o.lock().unwrap().push(true);
        // Any further call on the destroyed context fails with a system
        // exception (OBJECT_NOT_EXIST).
        let r = child.list(&mut orb, ctx, 5).unwrap();
        let is_one = matches!(
            r.unwrap_err(),
            orb::Exception::System(orb::SystemException {
                kind: orb::SysKind::ObjectNotExist,
                ..
            })
        );
        o.lock().unwrap().push(is_one);
    });
    sim.run_until_exit(driver);
    assert_eq!(*out.lock().unwrap(), vec![true, true]);
}

/// The §2 trader baseline: offers are exported per type, `query` returns
/// all of them, and the *client* performs the load-aware selection — the
/// code-intrusive alternative the paper's naming integration avoids.
#[test]
fn trader_baseline_with_decentralized_selection() {
    let mut sim = Kernel::with_seed(4);
    let hosts: Vec<_> = (0..4)
        .map(|i| sim.add_host(HostConfig::new(format!("ws{i}"))))
        .collect();
    let h0 = hosts[0];
    // Winner stack (the decentralized client needs the snapshot).
    let sysmgr_ior = cell::<Option<String>>();
    let sm = sysmgr_ior.clone();
    sim.spawn(h0, "winner-sysmgr", move |ctx| {
        let _ = winner::run_system_manager(
            ctx,
            SystemManagerConfig::default(),
            Box::new(BestPerformance),
            |i| {
                *sm.lock().unwrap() = Some(i.stringify());
            },
        );
    });
    for &h in &hosts {
        let sm = sysmgr_ior.clone();
        sim.spawn(h, "winner-nm", move |ctx| {
            while sm.lock().unwrap().is_none() {
                if ctx.sleep(secs(0.005)).is_err() {
                    return;
                }
            }
            let s = sm.lock().unwrap().clone().unwrap();
            let _ = winner::run_node_manager(
                ctx,
                NodeManagerConfig::new(Ior::destringify(&s).unwrap()),
            );
        });
    }
    // The trader itself.
    let trader_ior = cell::<Option<String>>();
    let t = trader_ior.clone();
    sim.spawn(h0, "trader", move |ctx| {
        let _ = crate::trader::run_trader(ctx, |i| {
            *t.lock().unwrap() = Some(i.stringify());
        });
    });
    // Background load on ws1.
    sim.spawn(hosts[1], "spinner", |ctx| {
        let _ = ctx.spin_forever();
    });

    let out = cell::<Vec<String>>();
    let o = out.clone();
    let (ti, si) = (trader_ior.clone(), sysmgr_ior.clone());
    let offer_hosts = hosts.clone();
    let driver = sim.spawn(hosts[2], "client", move |ctx| {
        ctx.sleep(secs(5.0)).unwrap();
        let mut orb = Orb::init(ctx);
        let trader = crate::trader::TraderClient::new(orb::ObjectRef::new(
            Ior::destringify(&ti.lock().unwrap().clone().unwrap()).unwrap(),
        ));
        // Export one offer per host 1..=3.
        for (i, &h) in offer_hosts[1..].iter().enumerate() {
            trader
                .export(&mut orb, ctx, "Solver", &fake_ior(h, i as u64))
                .unwrap()
                .unwrap();
        }
        let offers = trader.query(&mut orb, ctx, "Solver").unwrap().unwrap();
        o.lock().unwrap().push(format!("offers:{}", offers.len()));
        // Decentralized selection: the client evaluates the load itself.
        let sysmgr = winner::SystemManagerClient::from_ior(
            Ior::destringify(&si.lock().unwrap().clone().unwrap()).unwrap(),
        );
        let pick = crate::trader::select_best_offer(&mut orb, ctx, &offers, &sysmgr)
            .unwrap()
            .unwrap()
            .unwrap();
        o.lock().unwrap().push(format!("pick:ws{}", pick.host.0));
        // Withdraw and re-query.
        trader
            .withdraw(&mut orb, ctx, "Solver", &offers[0])
            .unwrap()
            .unwrap();
        let offers = trader.query(&mut orb, ctx, "Solver").unwrap().unwrap();
        o.lock().unwrap().push(format!("after:{}", offers.len()));
        // Unknown type: empty, selection yields None.
        let none = trader.query(&mut orb, ctx, "Nope").unwrap().unwrap();
        let sel = crate::trader::select_best_offer(&mut orb, ctx, &none, &sysmgr)
            .unwrap()
            .unwrap();
        o.lock().unwrap().push(format!("none:{}", sel.is_none()));
    });
    sim.run_until_exit(driver);
    let log = out.lock().unwrap().clone();
    assert_eq!(log[0], "offers:3");
    // The loaded host ws1 must not be picked (ws2/ws3 are idle).
    assert!(log[1] == "pick:ws2" || log[1] == "pick:ws3", "{log:?}");
    assert_eq!(log[2], "after:2");
    assert_eq!(log[3], "none:true");
}

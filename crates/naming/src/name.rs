//! CosNaming names: sequences of `(id, kind)` components, with the
//! standard stringified form `id.kind/id.kind` (and `\`-escaping for the
//! three special characters `.`, `/`, `\`).

use cdr::{CdrDecoder, CdrEncoder, CdrRead, CdrResult, CdrWrite};
use std::fmt;

/// One name component: an `id` and a `kind` (both may be empty, but a
/// fully empty component is invalid).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NameComponent {
    /// Identifier.
    pub id: String,
    /// Kind qualifier (e.g. "service", "context").
    pub kind: String,
}

impl NameComponent {
    /// A component with an empty kind.
    pub fn id(id: impl Into<String>) -> Self {
        NameComponent {
            id: id.into(),
            kind: String::new(),
        }
    }

    /// A component with id and kind.
    pub fn new(id: impl Into<String>, kind: impl Into<String>) -> Self {
        NameComponent {
            id: id.into(),
            kind: kind.into(),
        }
    }

    /// Whether both fields are empty (not a legal component).
    pub fn is_empty(&self) -> bool {
        self.id.is_empty() && self.kind.is_empty()
    }
}

impl CdrWrite for NameComponent {
    fn write(&self, enc: &mut CdrEncoder) {
        enc.write_string(&self.id);
        enc.write_string(&self.kind);
    }
}

impl CdrRead for NameComponent {
    fn read(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        Ok(NameComponent {
            id: dec.read_string()?,
            kind: dec.read_string()?,
        })
    }
}

/// A naming path: a non-empty sequence of components.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Name(pub Vec<NameComponent>);

/// Why a name string failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub enum NameParseError {
    /// The name has no components.
    Empty,
    /// A component has neither id nor kind.
    EmptyComponent,
    /// A `\` escape was followed by an unexpected character (or nothing).
    BadEscape,
    /// More than one unescaped `.` in a component.
    ExtraDot,
}

impl fmt::Display for NameParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameParseError::Empty => f.write_str("empty name"),
            NameParseError::EmptyComponent => f.write_str("empty name component"),
            NameParseError::BadEscape => f.write_str("invalid escape sequence"),
            NameParseError::ExtraDot => f.write_str("more than one '.' in a component"),
        }
    }
}

impl std::error::Error for NameParseError {}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        if matches!(c, '.' | '/' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
}

impl Name {
    /// A single-component name with an empty kind.
    pub fn simple(id: impl Into<String>) -> Self {
        Name(vec![NameComponent::id(id)])
    }

    /// Parse the stringified form `id.kind/id.kind`.
    pub fn parse(s: &str) -> Result<Name, NameParseError> {
        if s.is_empty() {
            return Err(NameParseError::Empty);
        }
        let mut components = Vec::new();
        let mut id = String::new();
        let mut kind = String::new();
        let mut in_kind = false;
        let mut chars = s.chars();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some(c @ ('.' | '/' | '\\')) => {
                        if in_kind {
                            kind.push(c);
                        } else {
                            id.push(c);
                        }
                    }
                    _ => return Err(NameParseError::BadEscape),
                },
                Some('.') => {
                    if in_kind {
                        return Err(NameParseError::ExtraDot);
                    }
                    in_kind = true;
                }
                Some('/') => {
                    let comp = NameComponent {
                        id: std::mem::take(&mut id),
                        kind: std::mem::take(&mut kind),
                    };
                    if comp.is_empty() {
                        return Err(NameParseError::EmptyComponent);
                    }
                    components.push(comp);
                    in_kind = false;
                }
                None => {
                    let comp = NameComponent {
                        id: std::mem::take(&mut id),
                        kind: std::mem::take(&mut kind),
                    };
                    if comp.is_empty() {
                        // Covers both a trailing '/' and an empty final
                        // component.
                        return Err(NameParseError::EmptyComponent);
                    }
                    components.push(comp);
                    break;
                }
                Some(c) => {
                    if in_kind {
                        kind.push(c);
                    } else {
                        id.push(c);
                    }
                }
            }
        }
        Ok(Name(components))
    }

    /// The stringified form.
    pub fn stringify(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            escape(&c.id, &mut out);
            if !c.kind.is_empty() {
                out.push('.');
                escape(&c.kind, &mut out);
            }
        }
        out
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the name has no components (invalid for operations).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Split into the first component and the remaining path.
    pub fn split_first(&self) -> Option<(&NameComponent, Name)> {
        self.0
            .split_first()
            .map(|(head, tail)| (head, Name(tail.to_vec())))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.stringify())
    }
}

impl CdrWrite for Name {
    fn write(&self, enc: &mut CdrEncoder) {
        self.0.write(enc);
    }
}

impl CdrRead for Name {
    fn read(dec: &mut CdrDecoder<'_>) -> CdrResult<Self> {
        Ok(Name(Vec::<NameComponent>::read(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let n = Name::parse("Workers").unwrap();
        assert_eq!(n, Name(vec![NameComponent::id("Workers")]));
    }

    #[test]
    fn parse_with_kinds_and_paths() {
        let n = Name::parse("apps.ctx/rosenbrock.service").unwrap();
        assert_eq!(
            n,
            Name(vec![
                NameComponent::new("apps", "ctx"),
                NameComponent::new("rosenbrock", "service"),
            ])
        );
    }

    #[test]
    fn stringify_round_trip() {
        for s in ["a", "a.b", "a/b", "a.b/c.d", "x.y/z"] {
            assert_eq!(Name::parse(s).unwrap().stringify(), s);
        }
    }

    #[test]
    fn escaping_round_trips() {
        let n = Name(vec![
            NameComponent::new("a.b/c", "k\\x"),
            NameComponent::id("plain"),
        ]);
        let s = n.stringify();
        assert_eq!(Name::parse(&s).unwrap(), n);
    }

    #[test]
    fn kind_only_component() {
        let n = Name::parse(".config").unwrap();
        assert_eq!(n.0[0], NameComponent::new("", "config"));
        assert_eq!(n.stringify(), ".config");
    }

    #[test]
    fn errors() {
        assert_eq!(Name::parse("").unwrap_err(), NameParseError::Empty);
        assert_eq!(
            Name::parse("a//b").unwrap_err(),
            NameParseError::EmptyComponent
        );
        assert_eq!(
            Name::parse("a/").unwrap_err(),
            NameParseError::EmptyComponent
        );
        assert_eq!(Name::parse("a\\q").unwrap_err(), NameParseError::BadEscape);
        assert_eq!(Name::parse("a.b.c").unwrap_err(), NameParseError::ExtraDot);
    }

    #[test]
    fn cdr_round_trip() {
        let n = Name::parse("a.b/c").unwrap();
        let back: Name = cdr::from_bytes(&cdr::to_bytes(&n)).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn split_first() {
        let n = Name::parse("a/b/c").unwrap();
        let (head, rest) = n.split_first().unwrap();
        assert_eq!(head.id, "a");
        assert_eq!(rest.stringify(), "b/c");
    }
}

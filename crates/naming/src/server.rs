//! The naming server process body.

use std::cell::RefCell;
use std::rc::Rc;

use orb::{Orb, Poa};
use simnet::{Ctx, SimResult};

use crate::context::{LbMode, NamingContext, NamingTree};
use crate::protocol::{NAMING_CONTEXT_TYPE, NAMING_PORT, ROOT_CONTEXT_KEY};

/// Run a naming service on the current process: binds the conventional
/// port 2809, activates the root context (object key 1, so
/// [`initial_naming_ior`](crate::client::initial_naming_ior) works), and
/// serves forever.
///
/// `mode` selects the paper's load-distributing behaviour
/// ([`LbMode::Winner`]) or the plain baseline ([`LbMode::Plain`]).
///
/// # Panics
/// If port 2809 is already bound on this host.
pub fn run_naming_service(ctx: &mut Ctx, mode: LbMode) -> SimResult<()> {
    let mut orb = Orb::init(ctx);
    let port = orb
        .listen_on(ctx, NAMING_PORT)?
        .expect("naming port 2809 already in use on this host");
    debug_assert_eq!(port, NAMING_PORT);
    let poa = Poa::new();
    let tree = NamingTree::new();
    let root = Rc::new(RefCell::new(NamingContext::root(tree, mode)));
    let key = poa.activate(NAMING_CONTEXT_TYPE, root);
    debug_assert_eq!(key, ROOT_CONTEXT_KEY);
    orb.serve_forever(ctx, &poa)
}

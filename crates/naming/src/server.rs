//! The naming server process body.

use std::cell::RefCell;
use std::rc::Rc;

use obs::{Obs, ProcessObs};
use orb::{Orb, Poa};
use simnet::{Ctx, SimResult};

use crate::context::{LbMode, NamingContext, NamingTree};
use crate::protocol::{NAMING_CONTEXT_TYPE, NAMING_PORT, ROOT_CONTEXT_KEY};

/// Run a naming service on the current process: binds the conventional
/// port 2809, activates the root context (object key 1, so
/// [`initial_naming_ior`](crate::client::initial_naming_ior) works), and
/// serves forever.
///
/// `mode` selects the paper's load-distributing behaviour
/// ([`LbMode::Winner`]) or the plain baseline ([`LbMode::Plain`]).
///
/// If port 2809 is already bound on this host (another naming server is
/// running), the process reports it and exits instead of serving.
pub fn run_naming_service(ctx: &mut Ctx, mode: LbMode) -> SimResult<()> {
    run_naming_service_obs(ctx, mode, None)
}

/// [`run_naming_service`] with an observability sink attached: serve spans
/// and resolve metrics are recorded into `obs` when present.
pub fn run_naming_service_obs(ctx: &mut Ctx, mode: LbMode, obs: Option<Obs>) -> SimResult<()> {
    let mut orb = Orb::init(ctx);
    if let Some(sink) = obs {
        orb.set_obs(ProcessObs::new(sink, ctx));
    }
    let Some(port) = orb.listen_on(ctx, NAMING_PORT)? else {
        eprintln!(
            "naming: port {NAMING_PORT:?} already in use on host {:?}; not serving",
            ctx.host()
        );
        return Ok(());
    };
    debug_assert_eq!(port, NAMING_PORT);
    let poa = Poa::new();
    let tree = NamingTree::new();
    let root = Rc::new(RefCell::new(NamingContext::root(tree, mode)));
    let key = poa.activate(NAMING_CONTEXT_TYPE, root);
    debug_assert_eq!(key, ROOT_CONTEXT_KEY);
    orb.serve_forever(ctx, &poa)
}

//! The `BindingIterator` servant: pages through the remainder of a `list`
//! result.

use std::collections::VecDeque;

use orb::{reply, CallCtx, Exception, Servant, SystemException};

use crate::name::Name;
use crate::protocol::{ops, Binding, BindingType};

/// Iterator over bindings not returned directly by `list`.
pub struct BindingIterator {
    items: VecDeque<Binding>,
}

impl BindingIterator {
    /// Wrap the remaining bindings.
    pub fn new(items: Vec<Binding>) -> Self {
        BindingIterator {
            items: items.into(),
        }
    }
}

fn placeholder() -> Binding {
    Binding {
        name: Name::default(),
        binding_type: BindingType::Object,
    }
}

impl Servant for BindingIterator {
    fn dispatch(
        &mut self,
        call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, Exception> {
        match op {
            ops::NEXT_ONE => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                match self.items.pop_front() {
                    Some(b) => reply(&(true, b)),
                    None => reply(&(false, placeholder())),
                }
            }
            ops::NEXT_N => {
                let (how_many,): (u32,) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let n = (how_many as usize).min(self.items.len());
                let batch: Vec<Binding> = self.items.drain(..n).collect();
                reply(&(!batch.is_empty(), batch))
            }
            ops::DESTROY => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                call.poa.deactivate(call.key);
                reply(&())
            }
            other => Err(SystemException::bad_operation(other).into()),
        }
    }
}

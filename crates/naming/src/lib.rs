//! # cosnaming — COS Naming with integrated load distribution
//!
//! The paper's first contribution (§2): a CORBA naming service that is
//! wire-compatible with the OMG COS Naming interface but performs **load
//! distribution inside `resolve`**. Servers register replicas of a service
//! under one name (*group bindings*); when a client resolves that name,
//! the service asks the Winner system manager for the host with the best
//! current performance and returns the replica living there. Clients keep
//! using the standard `resolve` call — the mechanism is fully transparent
//! and works with any ORB, because the naming service "is not an integral
//! part of a CORBA ORB but is always implemented as a CORBA service".
//!
//! When Winner is unreachable (or in [`LbMode::Plain`]), resolution falls
//! back to round-robin — matching the paper's observation that the
//! modified service is never worse than the unmodified one.
//!
//! * [`run_naming_service`] — server process body (port 2809, root key 1).
//! * [`NamingClient`] — typed client (standard ops + group extensions).
//! * [`Name`] — `id.kind/id.kind` stringified names.

pub mod client;
pub mod context;
pub mod iterator;
pub mod name;
pub mod protocol;
pub mod server;
pub mod trader;

pub use client::{initial_naming_ior, BindingIteratorClient, NamingClient};
pub use context::{LbMode, NamingContext, NamingTree};
pub use name::{Name, NameComponent, NameParseError};
pub use protocol::{
    AlreadyBound, Binding, BindingType, EmptyGroup, InvalidName, NotEmpty, NotFound,
    NotFoundReason, NAMING_CONTEXT_TYPE, NAMING_PORT, ROOT_CONTEXT_KEY,
};
pub use server::{run_naming_service, run_naming_service_obs};
pub use trader::{run_trader, select_best_offer, Trader, TraderClient, TRADER_TYPE};

#[cfg(test)]
mod naming_tests;

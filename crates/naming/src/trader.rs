//! A trader service — the §2 alternative the paper argues **against**.
//!
//! "Implementation of an explicit service (e.g. a 'trader') which returns
//! an object reference for the requested service on an available host
//! (centralized load distribution strategy) or references for all
//! available service objects. In the latter case, the client has to
//! evaluate the load information for all of the returned references and
//! has to make a selection by itself (decentralized load distribution
//! strategy). … The drawback … is that the source code of clients has to
//! be changed."
//!
//! This module implements exactly that baseline so the trade-off can be
//! measured: offers are exported per service type; `query` returns all of
//! them; [`select_best_offer`] is the decentralized client-side selection
//! the paper criticizes — note how much machinery leaks into the client
//! compared with a plain `resolve` on the load-distributing naming
//! service.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use orb::{reply, CallCtx, Exception, Ior, ObjectRef, Orb, Poa, Servant, SystemException};
use simnet::{Ctx, SimResult};
use winner::{performance_score_of, SystemManagerClient};

/// Repository id of the trader lookup interface.
pub const TRADER_TYPE: &str = "IDL:CosTrading/Lookup:1.0";

/// Operation names.
pub mod trader_ops {
    /// `void export(in string service_type, in Object offer)`.
    pub const EXPORT: &str = "export";
    /// `void withdraw(in string service_type, in Object offer)`.
    pub const WITHDRAW: &str = "withdraw";
    /// `IorSeq query(in string service_type)`.
    pub const QUERY: &str = "query";
}

/// The trader servant: a flat multimap from service type to offers.
#[derive(Default)]
pub struct Trader {
    offers: BTreeMap<String, Vec<Ior>>,
    /// Queries served (for tests).
    pub queries: u64,
}

impl Trader {
    /// An empty trader.
    pub fn new() -> Self {
        Trader::default()
    }
}

impl Servant for Trader {
    fn dispatch(
        &mut self,
        _call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, Exception> {
        match op {
            trader_ops::EXPORT => {
                let (ty, ior): (String, Ior) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let offers = self.offers.entry(ty).or_default();
                if !offers.contains(&ior) {
                    offers.push(ior);
                }
                reply(&())
            }
            trader_ops::WITHDRAW => {
                let (ty, ior): (String, Ior) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                if let Some(offers) = self.offers.get_mut(&ty) {
                    offers.retain(|o| o != &ior);
                }
                reply(&())
            }
            trader_ops::QUERY => {
                let (ty,): (String,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.queries += 1;
                let offers = self.offers.get(&ty).cloned().unwrap_or_default();
                reply(&offers)
            }
            other => Err(SystemException::bad_operation(other).into()),
        }
    }
}

/// Typed client for the trader.
#[derive(Clone, Debug)]
pub struct TraderClient {
    /// The trader reference.
    pub obj: ObjectRef,
}

impl TraderClient {
    /// Wrap a reference.
    pub fn new(obj: ObjectRef) -> Self {
        TraderClient { obj }
    }

    /// Export an offer.
    pub fn export(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        service_type: &str,
        offer: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        self.obj.call(
            orb,
            ctx,
            trader_ops::EXPORT,
            &(service_type.to_string(), offer),
        )
    }

    /// Withdraw an offer.
    pub fn withdraw(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        service_type: &str,
        offer: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        self.obj.call(
            orb,
            ctx,
            trader_ops::WITHDRAW,
            &(service_type.to_string(), offer),
        )
    }

    /// Query all offers of a type.
    pub fn query(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        service_type: &str,
    ) -> SimResult<Result<Vec<Ior>, Exception>> {
        self.obj
            .call(orb, ctx, trader_ops::QUERY, &(service_type.to_string(),))
    }
}

/// The decentralized client-side selection of §2: fetch Winner's whole
/// load snapshot and score every offer's host locally. This is the code
/// every client would have to carry — the paper's argument for putting the
/// logic into the naming service instead.
pub fn select_best_offer(
    orb: &mut Orb,
    ctx: &mut Ctx,
    offers: &[Ior],
    system_manager: &SystemManagerClient,
) -> SimResult<Result<Option<Ior>, Exception>> {
    if offers.is_empty() {
        return Ok(Ok(None));
    }
    let snapshot = match system_manager.snapshot(orb, ctx)? {
        Ok(s) => s,
        // Winner down: first offer (the client must handle this, too).
        Err(_) => return Ok(Ok(Some(offers[0].clone()))),
    };
    let mut best: Option<(&Ior, f64)> = None;
    for offer in offers {
        let Some(status) = snapshot.iter().find(|h| h.host == offer.host.0 && h.alive) else {
            continue;
        };
        let score = performance_score_of(status.speed, status.load_avg + status.reservations);
        match &best {
            Some((_, b)) if *b >= score => {}
            _ => best = Some((offer, score)),
        }
    }
    Ok(Ok(best
        .map(|(o, _)| o.clone())
        .or_else(|| Some(offers[0].clone()))))
}

/// The body of a trader server process: activate, publish, serve.
pub fn run_trader(ctx: &mut Ctx, publish: impl FnOnce(Ior)) -> SimResult<()> {
    let mut orb = Orb::init(ctx);
    orb.listen(ctx)?;
    let poa = Poa::new();
    let key = poa.activate(TRADER_TYPE, Rc::new(RefCell::new(Trader::new())));
    publish(orb.ior(TRADER_TYPE, key));
    orb.serve_forever(ctx, &poa)
}

//! Typed client for the naming service, plus the bootstrap helper that
//! builds the initial root-context reference from just a host (the
//! `corbaloc::host:2809/NameService` convention).

use orb::{Exception, Ior, ObjectRef, Orb};
use simnet::{Ctx, HostId, SimDuration, SimResult};

use crate::name::Name;
use crate::protocol::{
    ops, AlreadyBound, Binding, NAMING_CONTEXT_TYPE, NAMING_PORT, ROOT_CONTEXT_KEY,
};

/// Boot-registration retry budget for the `*_retry` helpers. At the
/// [`REGISTER_BACKOFF`] pace this is a 60 s sim-time budget — orders of
/// magnitude beyond any boot sequence, so exhausting it means the naming
/// host is gone for good and the caller should stop pretending otherwise.
pub const REGISTER_MAX_ATTEMPTS: u32 = 600;

/// Backoff between boot-registration attempts.
pub const REGISTER_BACKOFF: SimDuration = SimDuration::from_millis(100);

/// The initial reference to the root context of the naming service on
/// `host` — what `resolve_initial_references("NameService")` would return.
pub fn initial_naming_ior(host: HostId) -> Ior {
    Ior::new(NAMING_CONTEXT_TYPE, host, NAMING_PORT, ROOT_CONTEXT_KEY)
}

/// Typed client for a naming context.
#[derive(Clone, Debug)]
pub struct NamingClient {
    /// The context this client talks to.
    pub obj: ObjectRef,
}

impl NamingClient {
    /// Wrap a context reference.
    pub fn new(obj: ObjectRef) -> Self {
        NamingClient { obj }
    }

    /// Client for the root context of the naming service on `host`.
    pub fn root(host: HostId) -> Self {
        NamingClient {
            obj: ObjectRef::new(initial_naming_ior(host)),
        }
    }

    /// `void bind(in Name n, in Object obj)`.
    pub fn bind(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
        ior: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        self.obj.call(orb, ctx, ops::BIND, &(name, ior))
    }

    /// `void rebind(in Name n, in Object obj)`.
    pub fn rebind(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
        ior: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        self.obj.call(orb, ctx, ops::REBIND, &(name, ior))
    }

    /// `void bind_context(in Name n, in NamingContext nc)`.
    pub fn bind_context(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
        context: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        self.obj.call(orb, ctx, ops::BIND_CONTEXT, &(name, context))
    }

    /// `Object resolve(in Name n)`.
    pub fn resolve(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
    ) -> SimResult<Result<ObjectRef, Exception>> {
        let r: Result<Ior, Exception> = self.obj.call(orb, ctx, ops::RESOLVE, &(name,))?;
        Ok(r.map(ObjectRef::new))
    }

    /// Resolve a stringified name like `"apps/Workers"`.
    pub fn resolve_str(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &str,
    ) -> SimResult<Result<ObjectRef, Exception>> {
        match Name::parse(name) {
            Ok(n) => self.resolve(orb, ctx, &n),
            Err(_) => Ok(Err(crate::protocol::InvalidName.raise())),
        }
    }

    /// `void unbind(in Name n)`.
    pub fn unbind(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
    ) -> SimResult<Result<(), Exception>> {
        self.obj.call(orb, ctx, ops::UNBIND, &(name,))
    }

    /// `NamingContext bind_new_context(in Name n)`: create a child context
    /// and return a client for it.
    pub fn bind_new_context(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
    ) -> SimResult<Result<NamingClient, Exception>> {
        let r: Result<Ior, Exception> = self.obj.call(orb, ctx, ops::BIND_NEW_CONTEXT, &(name,))?;
        Ok(r.map(|ior| NamingClient::new(ObjectRef::new(ior))))
    }

    /// `void destroy()`.
    pub fn destroy(&self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Result<(), Exception>> {
        self.obj.call(orb, ctx, ops::DESTROY, &())
    }

    /// `list(how_many)`: the first bindings plus an iterator for the rest.
    pub fn list(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        how_many: u32,
    ) -> SimResult<Result<ListReply, Exception>> {
        let r: Result<(Vec<Binding>, Option<Ior>), Exception> =
            self.obj.call(orb, ctx, ops::LIST, &(how_many,))?;
        Ok(r.map(|(bl, it)| {
            (
                bl,
                it.map(|ior| BindingIteratorClient {
                    obj: ObjectRef::new(ior),
                }),
            )
        }))
    }

    /// Extension: add a replica to a service group (creating the group).
    /// This is how servers register with the load-distributing service.
    pub fn bind_group_member(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
        ior: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        self.obj
            .call(orb, ctx, ops::BIND_GROUP_MEMBER, &(name, ior))
    }

    /// Extension: remove a replica from a service group.
    pub fn unbind_group_member(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
        ior: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        self.obj
            .call(orb, ctx, ops::UNBIND_GROUP_MEMBER, &(name, ior))
    }

    /// `rebind`, retried with backoff while the naming service boots.
    /// Bounded: after [`REGISTER_MAX_ATTEMPTS`] failures the last naming
    /// error is returned instead of spinning forever against a host that
    /// is never coming back.
    pub fn rebind_retry(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
        ior: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        let mut attempts = 0u32;
        loop {
            match self.rebind(orb, ctx, name, ior)? {
                Ok(()) => return Ok(Ok(())),
                Err(e) if attempts + 1 >= REGISTER_MAX_ATTEMPTS => return Ok(Err(e)),
                Err(_naming_still_booting) => {
                    attempts += 1;
                    ctx.sleep(REGISTER_BACKOFF)?;
                }
            }
        }
    }

    /// `bind_group_member`, retried with backoff while the naming service
    /// boots, with the same [`REGISTER_MAX_ATTEMPTS`] budget as
    /// [`NamingClient::rebind_retry`]. An `AlreadyBound` reply means a
    /// previous incarnation's registration survived — success as far as
    /// boot is concerned.
    pub fn bind_group_member_retry(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
        ior: &Ior,
    ) -> SimResult<Result<(), Exception>> {
        let mut attempts = 0u32;
        loop {
            match self.bind_group_member(orb, ctx, name, ior)? {
                Ok(()) => return Ok(Ok(())),
                Err(e) if AlreadyBound::matches(&e) => return Ok(Ok(())),
                Err(e) if attempts + 1 >= REGISTER_MAX_ATTEMPTS => return Ok(Err(e)),
                Err(_naming_still_booting) => {
                    attempts += 1;
                    ctx.sleep(REGISTER_BACKOFF)?;
                }
            }
        }
    }

    /// Extension: all replicas of a group.
    pub fn group_members(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
    ) -> SimResult<Result<Vec<Ior>, Exception>> {
        self.obj.call(orb, ctx, ops::GROUP_MEMBERS, &(name,))
    }

    /// Extension: the group's membership revision plus its replicas. The
    /// revision is bumped on every bind/unbind, so a quorum coordinator
    /// can stamp writes with the view it used and replicas can reject a
    /// coordinator still acting on a pre-heal view.
    pub fn group_view(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        name: &Name,
    ) -> SimResult<Result<(u64, Vec<Ior>), Exception>> {
        self.obj.call(orb, ctx, ops::GROUP_VIEW, &(name,))
    }
}

/// What `list` returns: the first page plus an iterator over the rest.
pub type ListReply = (Vec<Binding>, Option<BindingIteratorClient>);

/// Typed client for a `BindingIterator`.
#[derive(Clone, Debug)]
pub struct BindingIteratorClient {
    /// The iterator reference.
    pub obj: ObjectRef,
}

impl BindingIteratorClient {
    /// `boolean next_one(out Binding b)`.
    pub fn next_one(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
    ) -> SimResult<Result<Option<Binding>, Exception>> {
        let r: Result<(bool, Binding), Exception> = self.obj.call(orb, ctx, ops::NEXT_ONE, &())?;
        Ok(r.map(|(more, b)| more.then_some(b)))
    }

    /// `boolean next_n(in unsigned long how_many, out BindingList bl)`.
    pub fn next_n(
        &self,
        orb: &mut Orb,
        ctx: &mut Ctx,
        how_many: u32,
    ) -> SimResult<Result<Vec<Binding>, Exception>> {
        let r: Result<(bool, Vec<Binding>), Exception> =
            self.obj.call(orb, ctx, ops::NEXT_N, &(how_many,))?;
        Ok(r.map(|(_, bl)| bl))
    }

    /// `void destroy()`.
    pub fn destroy(&self, orb: &mut Orb, ctx: &mut Ctx) -> SimResult<Result<(), Exception>> {
        self.obj.call(orb, ctx, ops::DESTROY, &())
    }
}

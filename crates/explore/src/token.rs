//! Replay tokens: a one-line serialization of a deviated schedule, small
//! enough to paste into a bug report and stable enough to commit as a
//! regression corpus (`tests/explore_corpus/*.token`).
//!
//! Format (single line, `;`-separated fields, order fixed):
//!
//! ```text
//! ldft-explore/v1;target=<name>;seed=<u64>;dev=<ord>:<idx>[,<ord>:<idx>]*;fp=<16-hex>
//! ```
//!
//! `dev` lists the deviation plan (choice ordinal → candidate index,
//! ascending ordinals; the literal value `-` means the empty plan, i.e.
//! the default schedule). `fp` is the [`crate::ChoiceLog::fingerprint`]
//! of the deviated ordinals observed when the token was minted: on
//! replay, a mismatch (or any plan misfit) means the code's schedule
//! structure has drifted and the token is stale rather than failing.

use std::collections::BTreeMap;
use std::fmt;

/// Leading magic of every v1 token line.
pub const TOKEN_PREFIX: &str = "ldft-explore/v1";

/// A parsed replay token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayToken {
    /// Target cell name (see [`crate::targets`]).
    pub target: String,
    /// Kernel seed the cell was built with.
    pub seed: u64,
    /// Deviation plan: choice ordinal → candidate index.
    pub plan: BTreeMap<u64, usize>,
    /// Fingerprint of the deviated choice points at mint time.
    pub fp: u64,
}

impl fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{TOKEN_PREFIX};target={};seed={};dev=",
            self.target, self.seed
        )?;
        if self.plan.is_empty() {
            write!(f, "-")?;
        } else {
            let mut first = true;
            for (o, i) in &self.plan {
                if !first {
                    write!(f, ",")?;
                }
                first = false;
                write!(f, "{o}:{i}")?;
            }
        }
        write!(f, ";fp={:016x}", self.fp)
    }
}

/// Why a token line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenError(pub String);

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad replay token: {}", self.0)
    }
}

impl std::error::Error for TokenError {}

impl std::str::FromStr for ReplayToken {
    type Err = TokenError;

    fn from_str(line: &str) -> Result<Self, TokenError> {
        let line = line.trim();
        let mut parts = line.split(';');
        if parts.next() != Some(TOKEN_PREFIX) {
            return Err(TokenError(format!("missing `{TOKEN_PREFIX}` prefix")));
        }
        let mut target = None;
        let mut seed = None;
        let mut plan = None;
        let mut fp = None;
        for part in parts {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| TokenError(format!("field `{part}` has no `=`")))?;
            match key {
                "target" => target = Some(val.to_string()),
                "seed" => {
                    seed = Some(
                        val.parse::<u64>()
                            .map_err(|e| TokenError(format!("seed `{val}`: {e}")))?,
                    );
                }
                "dev" => {
                    let mut map = BTreeMap::new();
                    if val != "-" {
                        for pair in val.split(',') {
                            let (o, i) = pair.split_once(':').ok_or_else(|| {
                                TokenError(format!("deviation `{pair}` has no `:`"))
                            })?;
                            let o = o
                                .parse::<u64>()
                                .map_err(|e| TokenError(format!("ordinal `{o}`: {e}")))?;
                            let i = i
                                .parse::<usize>()
                                .map_err(|e| TokenError(format!("index `{i}`: {e}")))?;
                            if map.insert(o, i).is_some() {
                                return Err(TokenError(format!("duplicate ordinal {o}")));
                            }
                        }
                    }
                    plan = Some(map);
                }
                "fp" => {
                    fp = Some(
                        u64::from_str_radix(val, 16)
                            .map_err(|e| TokenError(format!("fp `{val}`: {e}")))?,
                    );
                }
                other => return Err(TokenError(format!("unknown field `{other}`"))),
            }
        }
        Ok(ReplayToken {
            target: target.ok_or_else(|| TokenError("missing target".into()))?,
            seed: seed.ok_or_else(|| TokenError("missing seed".into()))?,
            plan: plan.ok_or_else(|| TokenError("missing dev".into()))?,
            fp: fp.ok_or_else(|| TokenError("missing fp".into()))?,
        })
    }
}

impl ReplayToken {
    /// The ordinals this token deviates at, ascending.
    pub fn ordinals(&self) -> Vec<u64> {
        self.plan.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trips() {
        let mut plan = BTreeMap::new();
        plan.insert(3u64, 1usize);
        plan.insert(17u64, 2usize);
        let t = ReplayToken {
            target: "quorum_heal".into(),
            seed: 42,
            plan,
            fp: 0x0123_4567_89ab_cdef,
        };
        let line = t.to_string();
        assert_eq!(
            line,
            "ldft-explore/v1;target=quorum_heal;seed=42;dev=3:1,17:2;fp=0123456789abcdef"
        );
        assert_eq!(line.parse::<ReplayToken>(), Ok(t));
    }

    #[test]
    fn empty_plan_round_trips() {
        let t = ReplayToken {
            target: "watermark_flap".into(),
            seed: 7,
            plan: BTreeMap::new(),
            fp: 1,
        };
        let line = t.to_string();
        assert!(line.contains(";dev=-;"));
        assert_eq!(line.parse::<ReplayToken>(), Ok(t));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "nonsense",
            "ldft-explore/v2;target=x;seed=1;dev=-;fp=0",
            "ldft-explore/v1;target=x;dev=-;fp=0",
            "ldft-explore/v1;target=x;seed=1;dev=3;fp=0",
            "ldft-explore/v1;target=x;seed=1;dev=3:1,3:2;fp=0",
            "ldft-explore/v1;target=x;seed=1;dev=-;fp=zz",
        ] {
            assert!(bad.parse::<ReplayToken>().is_err(), "accepted: {bad}");
        }
    }
}

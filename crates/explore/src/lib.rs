//! # ldft-explore — systematic schedule-space exploration
//!
//! Every test in this workspace executes exactly one schedule per seed:
//! the simnet kernel breaks same-virtual-time ties by a monotone
//! insertion counter. The paper's fault-tolerance guarantees, however,
//! are claims about *all* interleavings of failure detection, recovery,
//! and client traffic. This crate enumerates the other schedules.
//!
//! The kernel exposes its nondeterminism points through
//! [`simnet::SchedulePolicy`]: same-timestamp event-queue ties and
//! runnable-queue order. `ldft-explore` drives that hook with a
//! deviation plan (`choice ordinal → candidate index`), records every
//! choice point's candidate footprints, and explores the deviation tree
//! breadth-first under a delay bound, pruning deviations that provably
//! commute with everything they overtake (DPOR-style partial-order
//! reduction — see [`independence`]).
//!
//! Each explored execution runs the target's invariant oracles (doctor
//! invariants, acked-epoch durability, counter continuity, watermark
//! order) plus a *schedule-robustness* oracle: a sample of the pruned
//! (equivalence-claimed) deviations is actually executed and must
//! reproduce the parent schedule's semantic digest byte for byte. On
//! violation the deviation list is ddmin-shrunk ([`shrink`]) and emitted
//! as a serialized replay token ([`token`]) for the committed regression
//! corpus under `tests/explore_corpus/`.
//!
//! See DESIGN.md §15 for the exploration model and EXPERIMENTS.md for
//! the reference counterexample walkthrough.

pub mod explorer;
pub mod independence;
pub mod policy;
pub mod shrink;
pub mod targets;
pub mod token;

pub use explorer::{explore, replay, ExploreConfig, ExploreOutcome, ExploreStats, ViolationReport};
pub use independence::{commutes, commutes_extended, Coupling};
pub use policy::{ChoiceLog, ChoicePoint, Fp, PlanPolicy};
pub use targets::{all_targets, target_by_name, RunOutcome, Target};
pub use token::{ReplayToken, TOKEN_PREFIX};

/// FNV-1a 64-bit hasher: the digest primitive for semantic run state and
/// candidate fingerprints. Deterministic, dependency-free, stable across
/// platforms (unlike `DefaultHasher`, whose algorithm is unspecified).
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Fresh hasher with the FNV offset basis.
    pub fn new() -> Self {
        Fnv::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a string with a length prefix (prevents concatenation
    /// collisions between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Fnv;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv::new();
        a.write_str("hello");
        a.write_u64(7);
        let mut b = Fnv::new();
        b.write_str("hello");
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write_u64(7);
        c.write_str("hello");
        assert_ne!(a.finish(), c.finish());
        // Known FNV-1a vector: empty input is the offset basis.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}

//! The bounded DPOR explorer: breadth-first enumeration of deviation
//! plans over a target's choice sequence.
//!
//! A node in the exploration tree is a deviation plan (choice ordinal →
//! candidate index). Its children extend the plan at ordinals strictly
//! after the parent's last deviation — the kernel guarantees *prefix
//! stability* (deviating at ordinal `o` leaves choice points `0..o`
//! identical), so every child plan applies cleanly to the schedule it
//! was derived from. The number of deviations per plan is capped
//! (`max_deviations`, the classic delay bound), which keeps the tree
//! finite and biases exploration toward the low-deviation schedules
//! where races live.
//!
//! A child deviation that picks candidate `alt` at a tie overtakes
//! candidates `0..alt`. When `alt` commutes with each of them under the
//! independence relation ([`crate::independence`]), the child schedule
//! is Mazurkiewicz-equivalent to its parent and is *pruned* — counted
//! but not run. Because the extended relation is heuristic, the first
//! few pruned children of every parent are *audited*: actually executed
//! and required to reproduce the parent's semantic digest byte for byte
//! (the schedule-robustness oracle). An audit mismatch is a violation
//! like any other: ddmin-shrunk and minted into a replay token.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::independence::{commutes, commutes_extended, Coupling};
use crate::policy::ChoiceLog;
use crate::shrink::ddmin;
use crate::targets::{RunOutcome, Target};
use crate::token::ReplayToken;

/// Exploration bounds. All limits are deterministic counters, never
/// wall-clock, so a given (target, config) pair always explores the
/// same tree.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum distinct live runs, including the root schedule. Audit
    /// runs ride on top (bounded by `audits_per_parent` per expanded
    /// parent), so total live runs stay within a small multiple.
    pub budget: usize,
    /// Delay bound: maximum deviations per plan.
    pub max_deviations: usize,
    /// Alternatives considered per choice point (candidate indices
    /// `1..max_width` — wide ties are truncated to bound branching).
    pub max_width: usize,
    /// Pruned children audited per parent (schedule-robustness oracle).
    pub audits_per_parent: usize,
    /// Maximum ddmin probes per violation (each probe re-runs the cell).
    pub shrink_budget: usize,
    /// Lint-derived coupling facts enabling the extended independence
    /// relation; `None` restricts pruning to the strict relation.
    pub coupling: Option<Coupling>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget: 600,
            max_deviations: 3,
            max_width: 4,
            audits_per_parent: 2,
            shrink_budget: 60,
            coupling: None,
        }
    }
}

/// Counters pinned by the explore selfcheck and printed by the report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Live runs executed (root + non-pruned children + audits; shrink
    /// probes excluded).
    pub explored: usize,
    /// Deviations claimed equivalent and not expanded.
    pub pruned: usize,
    /// Pruned deviations re-executed by the schedule-robustness oracle.
    pub audited: usize,
    /// Distinct semantic digests observed across live runs.
    pub distinct_digests: usize,
    /// Total choice points recorded across live runs.
    pub choice_points_seen: u64,
    /// Child runs discarded because a planned ordinal misfit (an earlier
    /// deviation destroyed the later tie — rare by prefix stability).
    pub misfit_runs: usize,
    /// Runs spent inside ddmin shrinking.
    pub shrink_runs: usize,
}

impl ExploreStats {
    /// Schedules accounted for: every live run plus every deviation
    /// proven (or claimed and spot-checked) equivalent. This is the
    /// number the `explore-gate` budget check counts against.
    pub fn enumerated(&self) -> usize {
        self.explored + self.pruned
    }

    /// Distinct non-equivalent schedules executed: live runs minus the
    /// equivalence audits (which re-execute schedules claimed equal to
    /// an already-counted parent). This is what `--require` floors and
    /// what `budget` caps.
    pub fn distinct_schedules(&self) -> usize {
        self.explored - self.audited
    }
}

/// One minimized counterexample.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// Replay token for the shrunk plan.
    pub token: ReplayToken,
    /// Oracle messages from the violating run.
    pub oracle: Vec<String>,
    /// Deviation count before shrinking.
    pub shrunk_from: usize,
    /// Whether this came from the schedule-robustness (digest) oracle
    /// rather than a target invariant oracle.
    pub robustness: bool,
}

/// Everything one exploration produced.
#[derive(Clone, Debug, Default)]
pub struct ExploreOutcome {
    /// Counters for the report and the selfcheck.
    pub stats: ExploreStats,
    /// Minimized counterexamples, deduplicated by token line.
    pub violations: Vec<ViolationReport>,
    /// Semantic digest of the default (plan-free) schedule.
    pub root_digest: u64,
}

struct Node {
    plan: BTreeMap<u64, usize>,
    log: ChoiceLog,
    digest: u64,
    names: BTreeMap<u32, String>,
    /// First ordinal children may deviate at.
    frontier_from: u64,
}

struct Explorer<'a> {
    target: &'a dyn Target,
    config: &'a ExploreConfig,
    out: ExploreOutcome,
    digests: BTreeSet<u64>,
    seen_tokens: BTreeSet<String>,
}

/// Explore `target`'s schedule space under `config`.
pub fn explore(target: &dyn Target, config: &ExploreConfig) -> ExploreOutcome {
    Explorer {
        target,
        config,
        out: ExploreOutcome::default(),
        digests: BTreeSet::new(),
        seen_tokens: BTreeSet::new(),
    }
    .run()
}

/// Replay a single plan (token support): one live run, invariant oracles
/// only, no tree expansion. Returns the outcome and whether the token's
/// fingerprint still matches the observed choice points.
pub fn replay(target: &dyn Target, token: &ReplayToken) -> (RunOutcome, bool) {
    let run = target.run(&token.plan);
    let fresh = run.log.misfits.is_empty() && run.log.fingerprint(&token.ordinals()) == token.fp;
    (run, fresh)
}

impl Explorer<'_> {
    fn run(mut self) -> ExploreOutcome {
        let root_plan = BTreeMap::new();
        let root = self.live_run(&root_plan);
        self.out.root_digest = root.digest;
        self.check_invariants(&root_plan, &root);

        let mut queue = VecDeque::new();
        queue.push_back(Node {
            plan: root_plan,
            log: root.log,
            digest: root.digest,
            names: root.proc_names,
            frontier_from: 0,
        });

        while let Some(node) = queue.pop_front() {
            if node.plan.len() >= self.config.max_deviations {
                continue;
            }
            self.expand(&node, &mut queue);
        }

        self.out.stats.distinct_digests = self.digests.len();
        self.out
    }

    /// Execute a plan, keeping the exploration counters current.
    fn live_run(&mut self, plan: &BTreeMap<u64, usize>) -> RunOutcome {
        let run = self.target.run(plan);
        self.out.stats.explored += 1;
        self.out.stats.choice_points_seen += run.log.points.len() as u64;
        if run.log.misfits.is_empty() {
            self.digests.insert(run.digest);
        }
        run
    }

    fn expand(&mut self, node: &Node, queue: &mut VecDeque<Node>) {
        let mut audits_left = self.config.audits_per_parent;
        for point in &node.log.points {
            if point.ordinal < node.frontier_from {
                continue;
            }
            let width = point.cands.len().min(self.config.max_width);
            for alt in 1..width {
                // Choosing `alt` overtakes candidates 0..alt. If `alt`
                // commutes with each of them, the schedules are
                // equivalent — prune, optionally audit.
                let equivalent =
                    point.cands[..alt]
                        .iter()
                        .all(|earlier| match &self.config.coupling {
                            Some(cpl) => {
                                commutes_extended(&point.cands[alt], earlier, &node.names, cpl)
                            }
                            None => commutes(&point.cands[alt], earlier),
                        });
                let mut child_plan = node.plan.clone();
                child_plan.insert(point.ordinal, alt);
                if equivalent {
                    self.out.stats.pruned += 1;
                    if audits_left > 0 && self.out.stats.distinct_schedules() < self.config.budget {
                        audits_left -= 1;
                        self.out.stats.audited += 1;
                        let audit = self.live_run(&child_plan);
                        if audit.digest != node.digest && audit.log.misfits.is_empty() {
                            self.report_robustness(node, point.ordinal, alt, &audit);
                        }
                    }
                    continue;
                }
                if self.out.stats.distinct_schedules() >= self.config.budget {
                    continue;
                }
                let child = self.live_run(&child_plan);
                if !child.log.misfits.is_empty() {
                    self.out.stats.misfit_runs += 1;
                    continue;
                }
                self.check_invariants(&child_plan, &child);
                queue.push_back(Node {
                    plan: child_plan,
                    log: child.log,
                    digest: child.digest,
                    names: child.proc_names,
                    frontier_from: point.ordinal + 1,
                });
            }
        }
    }

    /// Shrink and record an invariant-oracle violation.
    fn check_invariants(&mut self, plan: &BTreeMap<u64, usize>, run: &RunOutcome) {
        if run.violations.is_empty() {
            return;
        }
        let shrunk_from = plan.len();
        let (min_plan, spent) = ddmin(plan, self.config.shrink_budget, |p| {
            !self.target.run(p).violations.is_empty()
        });
        self.out.stats.shrink_runs += spent;
        // Re-run the minimal plan to mint the token against its own log.
        let min_run = self.target.run(&min_plan);
        self.out.stats.shrink_runs += 1;
        let (plan_used, oracle, fp_run) = if min_run.violations.is_empty() {
            // The kernel is deterministic, so this cannot regress; guard
            // anyway by falling back to the unshrunk plan.
            (plan.clone(), run.violations.clone(), run)
        } else {
            (min_plan, min_run.violations.clone(), &min_run)
        };
        self.record(plan_used, oracle, fp_run, shrunk_from, false);
    }

    /// A pruned child's digest disagreed with its parent: the
    /// equivalence claim at (`ordinal`, `alt`) is wrong. Shrink the
    /// *parent* plan while keeping the claimed deviation, preserving the
    /// property "adding the deviation changes the digest".
    fn report_robustness(&mut self, node: &Node, ordinal: u64, alt: usize, audit: &RunOutcome) {
        let shrunk_from = node.plan.len() + 1;
        let mut spent = 0usize;
        let (min_parent, _) = ddmin(&node.plan, self.config.shrink_budget, |p| {
            // Each probe costs two runs: with and without the deviation.
            spent += 2;
            let without = self.target.run(p).digest;
            let mut with_plan = p.clone();
            with_plan.insert(ordinal, alt);
            let with = self.target.run(&with_plan);
            with.log.misfits.is_empty() && with.digest != without
        });
        self.out.stats.shrink_runs += spent;
        let mut final_plan = min_parent;
        final_plan.insert(ordinal, alt);
        let min_run = self.target.run(&final_plan);
        self.out.stats.shrink_runs += 1;
        let oracle = vec![format!(
            "schedule-robustness: pruned deviation {ordinal}:{alt} claimed \
             equivalent but digest {:016x} != parent {:016x}",
            audit.digest, node.digest
        )];
        if min_run.log.misfits.is_empty() {
            self.record(final_plan, oracle, &min_run, shrunk_from, true);
        } else {
            let mut full = node.plan.clone();
            full.insert(ordinal, alt);
            self.record(full, oracle, audit, shrunk_from, true);
        }
    }

    fn record(
        &mut self,
        plan: BTreeMap<u64, usize>,
        oracle: Vec<String>,
        fp_run: &RunOutcome,
        shrunk_from: usize,
        robustness: bool,
    ) {
        let ordinals: Vec<u64> = plan.keys().copied().collect();
        let token = ReplayToken {
            target: self.target.name().to_string(),
            seed: self.target.seed(),
            plan,
            fp: fp_run.log.fingerprint(&ordinals),
        };
        if self.seen_tokens.insert(token.to_string()) {
            self.out.violations.push(ViolationReport {
                token,
                oracle,
                shrunk_from,
                robustness,
            });
        }
    }
}

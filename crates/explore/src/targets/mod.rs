//! Exploration targets: small, fast simulation cells whose schedule
//! space the explorer enumerates. Each cell is a miniature of one of the
//! workspace's race-prone scenarios:
//!
//! * [`quorum_heal`] — quorum writes through the replicated checkpoint
//!   store while a partition cuts one replica off and heals mid-stream.
//! * [`watermark_flap`] — the monitoring channel's watermark reorder
//!   under a publisher that flaps behind two partition cycles.
//! * [`recovery_race`] — FT-proxy failure recovery racing the checkpoint
//!   store after a mid-stream host crash.
//! * [`demo_race`] — the reference counterexample (a deliberate
//!   last-writer-wins race), off the gate sweep, used by the
//!   EXPERIMENTS.md walkthrough and the pipeline selfcheck.
//!
//! A cell run is a pure function of `(seed, deviation plan)`: the kernel
//! seed is fixed per target, the plan is the only input that varies, and
//! [`RunOutcome::digest`] hashes the run's *semantic* final state — the
//! values the paper's guarantees speak about (acked epochs, counter
//! sequences, delivered event streams), never incidental internals.

use std::collections::BTreeMap;

use simnet::{Kernel, KernelEvent, Shared, SimTime};

use crate::policy::{ChoiceLog, PlanPolicy};

pub mod demo_race;
pub mod quorum_heal;
pub mod recovery_race;
pub mod watermark_flap;

/// What one instrumented cell run produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// FNV-1a digest of the run's semantic final state.
    pub digest: u64,
    /// Invariant-oracle violations (empty on a clean run).
    pub violations: Vec<String>,
    /// The recorded choice sequence.
    pub log: ChoiceLog,
    /// Pid → process name, for the extended independence relation.
    pub proc_names: BTreeMap<u32, String>,
    /// Virtual end time of the run.
    pub end_ns: u64,
}

/// One explorable cell.
pub trait Target {
    /// Stable cell name (used in replay tokens and reports).
    fn name(&self) -> &'static str;
    /// The fixed kernel seed the cell runs under.
    fn seed(&self) -> u64;
    /// Execute the cell under `plan` and collect the outcome.
    fn run(&self, plan: &BTreeMap<u64, usize>) -> RunOutcome;
}

/// All gate targets, in report order. [`demo_race`] is deliberately not
/// here — its oracle is schedule-fragile by design (the reference
/// counterexample), so the default sweep would always be red.
pub fn all_targets() -> Vec<Box<dyn Target>> {
    vec![
        Box::new(quorum_heal::QuorumHeal),
        Box::new(watermark_flap::WatermarkFlap),
        Box::new(recovery_race::RecoveryRace),
    ]
}

/// Look a target up by its token/CLI name. Unlike [`all_targets`], this
/// also resolves the off-gate [`demo_race`] cell so `--target demo_race`
/// and its replay tokens work.
pub fn target_by_name(name: &str) -> Option<Box<dyn Target>> {
    if name == "demo_race" {
        return Some(Box::new(demo_race::DemoRace));
    }
    all_targets().into_iter().find(|t| t.name() == name)
}

/// Kernel-side instrumentation shared by every cell: the plan-following
/// schedule policy plus an event hook that records process names and
/// forwards every kernel event to the cell's own consumer (typically the
/// monitor's `ingest_kernel`).
pub(crate) struct Instruments {
    /// The choice log the policy records into.
    pub log: Shared<ChoiceLog>,
    /// Pid → name, filled as processes spawn.
    pub names: Shared<BTreeMap<u32, String>>,
}

pub(crate) fn instrument(
    kernel: &mut Kernel,
    plan: &BTreeMap<u64, usize>,
    mut forward: impl FnMut(SimTime, &KernelEvent) + 'static,
) -> Instruments {
    let log = Shared::new(ChoiceLog::default());
    kernel.set_schedule_policy(PlanPolicy::new(plan.clone(), log.clone()));
    let names: Shared<BTreeMap<u32, String>> = Shared::new(BTreeMap::new());
    let sink = names.clone();
    kernel.set_event_hook(move |now, ev| {
        if let KernelEvent::ProcSpawn { pid, name, .. } = ev {
            sink.lock().insert(pid.0, name.clone());
        }
        forward(now, ev);
    });
    Instruments { log, names }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every target's default schedule must be clean (no oracle
    /// violations) and reproducible (same digest twice).
    #[test]
    fn default_schedules_are_clean_and_reproducible() {
        let mut targets = all_targets();
        targets.extend(target_by_name("demo_race"));
        for target in targets {
            let plan = BTreeMap::new();
            let a = target.run(&plan);
            assert_eq!(
                a.violations,
                Vec::<String>::new(),
                "{}: default schedule violates its oracles",
                target.name()
            );
            assert!(a.log.misfits.is_empty(), "{}", target.name());
            assert!(
                !a.log.points.is_empty(),
                "{}: no choice points — nothing to explore",
                target.name()
            );
            let b = target.run(&plan);
            assert_eq!(
                a.digest,
                b.digest,
                "{}: digest not reproducible",
                target.name()
            );
            assert_eq!(a.end_ns, b.end_ns, "{}", target.name());
        }
    }
}

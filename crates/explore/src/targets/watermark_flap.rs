//! Cell: monitor watermark reorder under a flapping publisher.
//!
//! The event channel on host 0, a steady oneway publisher on host 1, and
//! a reliable (buffering) publisher on host 2 that is cut off by *two*
//! partition cycles mid-stream. Each heal flushes the outage buffer; the
//! watermark hold must keep the released stream in publish order both
//! times, and the flushed events must not be counted late.
//!
//! Oracles: the cut-off publisher fully drains its backlog; the released
//! stream is totally ordered under the event key; both publishers'
//! streams arrive complete and per-host ordered; the channel records no
//! watermark violations.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use monitor::{
    ChannelState, EventBody, EventChannel, MonitorConfig, Publisher, EVENT_CHANNEL_TYPE, KERNEL_PID,
};
use orb::{Orb, OrbConfig};
use simnet::{Ctx, Fault, Kernel, Shared, SimDuration, SimResult, SimTime};

use crate::targets::{instrument, RunOutcome, Target};
use crate::Fnv;

const SEED: u64 = 13;
/// Events each publisher emits, one per 4 ms.
const EVENTS: u32 = 24;
/// Backlog pump budget after the publish stream ends.
const PUMP_MAX_ATTEMPTS: u32 = 200;

/// See the module docs.
pub struct WatermarkFlap;

impl Target for WatermarkFlap {
    fn name(&self) -> &'static str {
        "watermark_flap"
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn run(&self, plan: &BTreeMap<u64, usize>) -> RunOutcome {
        run_cell(plan)
    }
}

fn publish_stream(
    publisher: &Publisher,
    orb: &mut Orb,
    ctx: &mut Ctx,
    first_delay_ms: u64,
) -> SimResult<()> {
    ctx.sleep(SimDuration::from_millis(first_delay_ms))?;
    for n in 0..EVENTS {
        publisher.publish(
            orb,
            ctx,
            EventBody::LoadReport {
                runnable: n,
                load_milli: 0,
                cpu_milli: 0,
            },
        )?;
        ctx.sleep(SimDuration::from_millis(4))?;
    }
    Ok(())
}

fn run_cell(plan: &BTreeMap<u64, usize>) -> RunOutcome {
    let mut sim = Kernel::with_seed(SEED);
    let cfg = MonitorConfig {
        reorder_slack: SimDuration::from_millis(10),
        // Covers one publisher retry cycle (10 ms push timeout + 4 ms
        // publish stagger) with room to spare.
        heal_flush_grace: SimDuration::from_millis(60),
        ..MonitorConfig::default()
    };
    let state = Shared::new(ChannelState::new(cfg, None));
    let wide = state.lock().subscribe(512);
    let ins = {
        let state = state.clone();
        instrument(&mut sim, plan, move |now, ev| {
            state.lock().ingest_kernel(now, ev)
        })
    };
    let hosts = sim.add_hosts(3);
    let cell: Shared<Option<String>> = Shared::new(None);

    {
        let state = state.clone();
        let cell = cell.clone();
        sim.spawn(hosts[0], "channel", move |ctx| {
            let mut orb = Orb::init(ctx);
            if orb.listen(ctx).is_err() {
                return;
            }
            let poa = orb::Poa::new();
            let key = poa.activate(
                EVENT_CHANNEL_TYPE,
                Rc::new(RefCell::new(EventChannel::new(state))),
            );
            cell.put(orb.ior(EVENT_CHANNEL_TYPE, key).stringify());
            let _ = orb.serve_forever(ctx, &poa);
        });
    }
    {
        // Host 1: steady oneway publisher, never partitioned — its stream
        // keeps the channel clock moving through both outages.
        let cell = cell.clone();
        sim.spawn(hosts[1], "pub-steady", move |ctx: &mut Ctx| {
            let mut orb = Orb::init(ctx);
            if orb.listen(ctx).is_err() {
                return;
            }
            let publisher = Publisher::new(cell, ctx);
            let _ = publish_stream(&publisher, &mut orb, ctx, 10);
        });
    }
    let backlog_out: Shared<Option<(usize, u64)>> = Shared::new(None);
    {
        // Host 2: reliable publisher behind the flapping cut. The short
        // push timeout makes each failed push re-queue within a period.
        let cell = cell.clone();
        let bout = backlog_out.clone();
        sim.spawn(hosts[2], "pub-cutoff", move |ctx: &mut Ctx| {
            let mut orb = Orb::new(
                ctx,
                OrbConfig {
                    request_timeout: SimDuration::from_millis(10),
                    ..OrbConfig::default()
                },
            );
            if orb.listen(ctx).is_err() {
                return;
            }
            let publisher = Publisher::reliable(cell, ctx);
            // Same phase as pub-steady: both publishers' sleeps expire and
            // both pushes land co-temporally, so every period is a genuine
            // schedule tie for the explorer to pivot on.
            if publish_stream(&publisher, &mut orb, ctx, 10).is_err() {
                return;
            }
            // Drain the outage buffer: the last batch may still be queued.
            let mut attempts = 0u32;
            while attempts < PUMP_MAX_ATTEMPTS {
                attempts += 1;
                if publisher.backlog().0 == 0 {
                    break;
                }
                if publisher.pump(&mut orb, ctx).is_err()
                    || ctx.sleep(SimDuration::from_millis(5)).is_err()
                {
                    return;
                }
            }
            bout.put(publisher.backlog());
        });
    }

    // Two flap cycles across the 107 ms publish stream: cut 20–45 ms and
    // again 60–80 ms.
    for (at_ms, blocked) in [(20u64, true), (45, false), (60, true), (80, false)] {
        sim.schedule_fault(
            SimTime::from_nanos(at_ms * 1_000_000),
            Fault::PartitionGroup {
                side: vec![hosts[2]],
                blocked,
            },
        );
    }

    sim.run_for(SimDuration::from_millis(600));
    let end = sim.now();
    let mut st = state.lock();
    st.finalize(end);
    let delivered = st.pull(wide, 4_096);
    let (received, dropped) = st.stats();
    let channel_violations = st.violation_count();
    let report = st.render_report();
    drop(st);

    let mut violations = Vec::new();
    let drained = backlog_out.get();
    match drained {
        None => violations.push("cut-off publisher never finished draining".to_string()),
        Some((backlog, _retries)) if backlog != 0 => {
            violations.push(format!("outage buffer never fully flushed: {backlog} left"));
        }
        Some(_) => {}
    }
    if !delivered.windows(2).all(|w| w[0].key() < w[1].key()) {
        violations.push("released stream out of publish order".to_string());
    }
    for host in [1u32, 2] {
        let runnables: Vec<u32> = delivered
            .iter()
            .filter(|e| e.host == host && e.pid != KERNEL_PID)
            .filter_map(|e| match &e.body {
                EventBody::LoadReport { runnable, .. } => Some(*runnable),
                _ => None,
            })
            .collect();
        if runnables != (0..EVENTS).collect::<Vec<u32>>() {
            violations.push(format!(
                "host {host} stream incomplete or disordered: {runnables:?}"
            ));
        }
    }
    if channel_violations > 0 {
        violations.push(format!(
            "channel recorded {channel_violations} violation(s):\n{report}"
        ));
    }

    let mut h = Fnv::new();
    h.write_str("watermark_flap");
    h.write_u64(received);
    h.write_u64(dropped);
    h.write_u64(channel_violations);
    h.write_u64(delivered.len() as u64);
    for e in &delivered {
        h.write_str(&format!("{:?}|{:?}", e.key(), e.body));
    }
    if let Some((backlog, retries)) = drained {
        h.write_u64(backlog as u64);
        h.write_u64(retries);
    }

    RunOutcome {
        digest: h.finish(),
        violations,
        log: ins.log.get(),
        proc_names: ins.names.get(),
        end_ns: end.as_nanos(),
    }
}

//! Cell: FT-proxy recovery racing the checkpoint store.
//!
//! Infra host 0 runs naming plus the checkpoint service; hosts 1 and 2
//! run service factories; the driver sits on its own host. The driver
//! increments a checkpointed counter through the FT proxy (per-value
//! checkpointing — every call pushes an epoch to the store) and crashes
//! the host its counter lives on mid-stream. The proxy must detect the
//! failure, re-instantiate the counter from its newest checkpoint on the
//! surviving factory host, and continue — under any interleaving of the
//! crash fault, the in-flight checkpoint push, and the recovery RPCs.
//!
//! Oracles: the increment sequence is continuous (`1..=N` — restored
//! state lost no acked increment and replayed none twice); at least one
//! recovery and one restore happened; the doctor records no invariant
//! violations.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use cosnaming::{LbMode, Name, NamingClient};
use ftproxy::{
    run_factory_obs, CheckpointClient, CheckpointMode, CheckpointService, FtProxy, FtProxyConfig,
    FtProxyStats, ProxyEnv, ServantBuilder, CHECKPOINT_SERVICE_TYPE,
};
use monitor::{MonitorConfig, MonitorHandle};
use orb::{reply, CallCtx, Exception, Orb, OrbConfig, Servant, SystemException};
use simnet::{Ctx, HostConfig, HostId, Kernel, Shared, SimDuration, SimResult};

use crate::targets::{instrument, RunOutcome, Target};
use crate::Fnv;

const SEED: u64 = 17;
/// Increments the driver issues; the crash lands in the middle.
const INCS: i64 = 8;
/// Naming registration retry budget (50 ms sleeps → multi-second window).
const RETRY_MAX_ATTEMPTS: u32 = 200;

const COUNTER_TYPE: &str = "IDL:Explore/Counter:1.0";

/// See the module docs.
pub struct RecoveryRace;

impl Target for RecoveryRace {
    fn name(&self) -> &'static str {
        "recovery_race"
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn run(&self, plan: &BTreeMap<u64, usize>) -> RunOutcome {
        run_cell(plan)
    }
}

/// The stateful service under test: an accumulating counter whose whole
/// state rides in its checkpoint.
#[derive(Default)]
struct Counter {
    value: i64,
}

impl Servant for Counter {
    fn dispatch(
        &mut self,
        _call: &mut CallCtx<'_>,
        op: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, Exception> {
        match op {
            "inc" => {
                let (delta,): (i64,) = cdr::from_bytes(args).map_err(SystemException::marshal)?;
                self.value += delta;
                reply(&self.value)
            }
            "get" => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                reply(&self.value)
            }
            "get_checkpoint" => {
                cdr::from_bytes::<()>(args).map_err(SystemException::marshal)?;
                reply(&cdr::to_bytes(&(self.value,)))
            }
            "restore_checkpoint" => {
                let (state,): (Vec<u8>,) =
                    cdr::from_bytes(args).map_err(SystemException::marshal)?;
                let (value,): (i64,) = cdr::from_bytes(&state).map_err(SystemException::marshal)?;
                self.value = value;
                reply(&())
            }
            other => Err(SystemException::bad_operation(other).into()),
        }
    }
}

/// What the driver observed.
#[derive(Clone, Debug, Default)]
struct DriverOut {
    /// Counter values returned by the increments, in call order.
    values: Vec<i64>,
    /// Host the crash was injected on.
    victim: Option<u32>,
    /// Proxy statistics after the stream.
    stats: Option<FtProxyStats>,
    /// The driver ran its whole script.
    completed: bool,
}

fn spawn_ckpt_service(sim: &mut Kernel, host: HostId) {
    sim.spawn(host, "ckpt-svc", move |ctx| {
        let _ = serve_ckpt(ctx, host);
    });
}

fn serve_ckpt(ctx: &mut Ctx, naming_host: HostId) -> SimResult<()> {
    let mut orb = Orb::init(ctx);
    orb.listen(ctx)?;
    let poa = orb::Poa::new();
    let key = poa.activate(
        CHECKPOINT_SERVICE_TYPE,
        Rc::new(RefCell::new(CheckpointService::in_memory())),
    );
    let ior = orb.ior(CHECKPOINT_SERVICE_TYPE, key);
    let ns = NamingClient::root(naming_host);
    let mut attempts = 0u32;
    while attempts < RETRY_MAX_ATTEMPTS {
        attempts += 1;
        match ns.rebind(&mut orb, ctx, &Name::simple("CheckpointService"), &ior)? {
            Ok(()) => break,
            Err(_) => ctx.sleep(SimDuration::from_millis(50))?,
        }
    }
    orb.serve_forever(ctx, &poa)
}

fn spawn_factory(sim: &mut Kernel, host: HostId, naming_host: HostId) {
    sim.spawn(host, format!("factory-{host}"), move |ctx| {
        let builder: ServantBuilder = Box::new(|_call, ty| {
            (ty == "Counter").then(|| {
                (
                    Rc::new(RefCell::new(Counter::default())) as Rc<RefCell<dyn Servant>>,
                    COUNTER_TYPE.to_string(),
                )
            })
        });
        let _ = run_factory_obs(ctx, naming_host, builder, None);
    });
}

fn resolve_ckpt(
    orb: &mut Orb,
    ctx: &mut Ctx,
    naming_host: HostId,
) -> SimResult<Option<CheckpointClient>> {
    let ns = NamingClient::root(naming_host);
    let mut attempts = 0u32;
    while attempts < RETRY_MAX_ATTEMPTS {
        attempts += 1;
        match ns.resolve(orb, ctx, &Name::simple("CheckpointService"))? {
            Ok(obj) => return Ok(Some(CheckpointClient::new(obj))),
            Err(_) => ctx.sleep(SimDuration::from_millis(50))?,
        }
    }
    Ok(None)
}

fn drive(
    ctx: &mut Ctx,
    naming_host: HostId,
    infra: HostId,
    out: Shared<DriverOut>,
) -> SimResult<()> {
    ctx.sleep(SimDuration::from_millis(500))?; // services boot
                                               // The reply deadline dominating every remote call below.
    let mut orb = Orb::new(
        ctx,
        OrbConfig {
            request_timeout: SimDuration::from_secs(2),
            ..OrbConfig::default()
        },
    );
    let Some(ckpt) = resolve_ckpt(&mut orb, ctx, naming_host)? else {
        return Ok(());
    };
    let mut cfg = FtProxyConfig::new(Name::simple("Counters"), "Counter", "counter-1");
    cfg.mode = CheckpointMode::PerValue;
    let mut proxy = FtProxy::new(cfg, NamingClient::root(naming_host), ckpt);
    let mut s = DriverOut::default();
    let mut env = ProxyEnv { orb: &mut orb, ctx };
    for i in 1..=INCS {
        match proxy.call::<_, i64>(&mut env, "inc", &(1i64,))? {
            Ok(v) => s.values.push(v),
            Err(_) => break,
        }
        if i == INCS / 2 {
            // Crash the host the counter lives on — never the infra host
            // (factories only run on the worker hosts).
            let Some(target) = proxy.current_target() else {
                break;
            };
            let victim = target.ior.host;
            if victim == infra {
                break;
            }
            s.victim = Some(victim.0);
            env.ctx.crash_host(victim)?;
        }
    }
    s.completed = s.values.len() == INCS as usize;
    s.stats = Some(proxy.stats);
    out.replace(s);
    Ok(())
}

fn run_cell(plan: &BTreeMap<u64, usize>) -> RunOutcome {
    let mut sim = Kernel::with_seed(SEED);
    let flight = MonitorHandle::new(MonitorConfig::default(), None);
    let ins = {
        let state = flight.state.clone();
        instrument(&mut sim, plan, move |now, ev| {
            state.with(|s| s.ingest_kernel(now, ev))
        })
    };

    let infra = sim.add_host(HostConfig::new("infra"));
    let workers: Vec<HostId> = (0..3)
        .map(|i| sim.add_host(HostConfig::new(format!("ws{i}"))))
        .collect();
    let driver_host = sim.add_host(HostConfig::new("client"));

    sim.spawn(infra, "naming", move |ctx| {
        let _ = cosnaming::run_naming_service_obs(ctx, LbMode::Plain, None);
    });
    spawn_ckpt_service(&mut sim, infra);
    for &w in &workers {
        spawn_factory(&mut sim, w, infra);
    }

    let out: Shared<DriverOut> = Shared::new(DriverOut::default());
    let driver = {
        let out = out.clone();
        sim.spawn(driver_host, "driver", move |ctx| {
            let _ = drive(ctx, infra, infra, out);
        })
    };
    let end = sim.run_until_exit(driver);
    flight.finalize(end);

    let s = out.get();
    let mut violations = Vec::new();
    let expected: Vec<i64> = (1..=INCS).collect();
    if s.values != expected {
        violations.push(format!(
            "counter continuity broken: got {:?}, want {expected:?}",
            s.values
        ));
    }
    if s.victim.is_none() {
        violations.push("crash was never injected (no proxy target)".to_string());
    }
    match &s.stats {
        Some(st) => {
            if st.recoveries < 1 {
                violations.push(format!("no recovery despite the crash: {st:?}"));
            }
        }
        None => violations.push("driver never reported stats".to_string()),
    }
    if flight.violations() > 0 {
        violations.push(format!(
            "doctor recorded {} invariant violation(s):\n{}",
            flight.violations(),
            flight.report()
        ));
    }

    let mut h = Fnv::new();
    h.write_str("recovery_race");
    h.write_u64(s.values.len() as u64);
    for v in &s.values {
        h.write_u64(*v as u64);
    }
    h.write_u64(s.victim.map_or(0, |v| 1 + v as u64));
    if let Some(st) = &s.stats {
        for c in [
            st.calls,
            st.checkpoints,
            st.checkpoint_failures,
            st.recoveries,
        ] {
            h.write_u64(c);
        }
    }
    h.write_u64(flight.violations());
    h.write_u64(end.as_nanos());

    RunOutcome {
        digest: h.finish(),
        violations,
        log: ins.log.get(),
        proc_names: ins.names.get(),
        end_ns: end.as_nanos(),
    }
}

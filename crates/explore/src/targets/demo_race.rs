//! Cell: the reference counterexample — a deliberate last-writer-wins
//! race kept *out* of the CI gate sweep.
//!
//! Two writer processes sleep to the same virtual instant and then store
//! their own value into a shared register; a third value arrives a tick
//! later. Under the default schedule (insertion order) `writer-b` writes
//! last before the tick and the register reads back `2`. The cell's
//! oracle bakes that default outcome in — exactly the mistake a test
//! suite makes when it asserts the outcome of one arbitrary interleaving
//! of a genuine race. Deviating either co-temporal tie swaps the write
//! order and the oracle fires.
//!
//! The explorer finds this with a single deviation, ddmin keeps the plan
//! at one entry, and the minted token replays the violation on demand —
//! the walkthrough in EXPERIMENTS.md runs this cell end to end. It is
//! reachable via `--target demo_race` and replay tokens, but excluded
//! from [`super::all_targets`] so the `explore-gate` stays green.

use std::collections::BTreeMap;

use simnet::{Kernel, Shared, SimDuration, SimResult};

use crate::targets::{instrument, RunOutcome, Target};
use crate::Fnv;

const SEED: u64 = 23;

/// See the module docs.
pub struct DemoRace;

impl Target for DemoRace {
    fn name(&self) -> &'static str {
        "demo_race"
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn run(&self, plan: &BTreeMap<u64, usize>) -> RunOutcome {
        run_cell(plan)
    }
}

fn run_cell(plan: &BTreeMap<u64, usize>) -> RunOutcome {
    let mut sim = Kernel::with_seed(SEED);
    let ins = instrument(&mut sim, plan, |_, _| {});
    let host = sim.add_hosts(1)[0];

    // Write order and final register value, observed by the oracle.
    let writes: Shared<Vec<u64>> = Shared::new(Vec::new());
    let mut spawn_writer = |name: &str, value: u64, delay_ms: u64| {
        let writes = writes.clone();
        sim.spawn(host, name, move |ctx| {
            let _ = write_after(ctx, writes, value, delay_ms);
        });
    };
    spawn_writer("writer-a", 1, 10);
    spawn_writer("writer-b", 2, 10);
    spawn_writer("writer-c", 3, 20);

    sim.run_for(SimDuration::from_millis(30));
    let end = sim.now();

    let history = writes.get();
    let register = history.last().copied();
    let mut violations = Vec::new();
    // The intentionally schedule-fragile oracle: asserts the default
    // interleaving of the t=10ms tie (a before b).
    if history.first().copied() != Some(1) || register != Some(3) {
        violations.push(format!(
            "register history {history:?} diverged from the default \
             schedule [1, 2, 3] — co-temporal writes do not commute"
        ));
    }

    let mut h = Fnv::new();
    h.write_str("demo_race");
    h.write_u64(history.len() as u64);
    for v in &history {
        h.write_u64(*v);
    }
    h.write_u64(end.as_nanos());

    RunOutcome {
        digest: h.finish(),
        violations,
        log: ins.log.get(),
        proc_names: ins.names.get(),
        end_ns: end.as_nanos(),
    }
}

fn write_after(
    ctx: &mut simnet::Ctx,
    writes: Shared<Vec<u64>>,
    value: u64,
    delay_ms: u64,
) -> SimResult<()> {
    ctx.sleep(SimDuration::from_millis(delay_ms))?;
    writes.lock().push(value);
    Ok(())
}
